#!/usr/bin/env python3
"""Learn the (undocumented) L2 replacement policy of a simulated Skylake CPU.

This is the Section 7 workflow end to end: CacheQuery targets one L2 cache
set of the simulated i5-6500, Polca turns the hit/miss interface into a
policy oracle, the learner produces a Mealy machine, and the result is
checked against the known policy zoo — re-discovering the paper's **New1**
policy.

By default the L2 associativity is reduced to 2 so the example finishes in a
couple of seconds; pass ``--ways 4`` to learn the full 160-state machine the
paper reports (this takes a long while, exactly as learning from real
hardware did).

Run with::

    python examples/learn_intel_l2_policy.py [--ways 2|4] [--set-index 17]
"""

from __future__ import annotations

import argparse

from repro.cachequery import BackendConfig, CacheQuery, CacheQueryConfig, CacheQuerySetInterface
from repro.hardware import SKYLAKE_I5_6500, SimulatedCPU
from repro.hardware.timing import NoiseModel
from repro.polca.pipeline import learn_policy_from_cache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ways", type=int, default=2, choices=(2, 4),
                        help="L2 associativity to learn (4 = the real Skylake geometry)")
    parser.add_argument("--set-index", type=int, default=17, help="L2 set to target")
    parser.add_argument("--noise", type=float, default=2.0,
                        help="timing noise standard deviation in cycles")
    arguments = parser.parse_args()

    profile = SKYLAKE_I5_6500
    if arguments.ways != profile.level("L2").associativity:
        profile = profile.with_level("L2", associativity=arguments.ways)
    cpu = SimulatedCPU(profile, noise=NoiseModel(std=arguments.noise))

    repetitions = 3 if arguments.noise > 0 else 1
    frontend = CacheQuery(
        cpu,
        CacheQueryConfig(
            level="L2",
            set_index=arguments.set_index,
            backend=BackendConfig(repetitions=repetitions),
        ),
    )
    print(f"targeting {profile.name} L2 set {arguments.set_index} "
          f"({frontend.associativity} ways, noise std {arguments.noise} cycles, "
          f"{repetitions} repetitions per query)")

    interface = CacheQuerySetInterface(frontend)
    report = learn_policy_from_cache(interface)

    print()
    print(f"learned machine states : {report.num_states}")
    print(f"identified policy      : {report.identified_policy}")
    print(f"wall-clock time        : {report.wall_clock_seconds:.1f} s")
    print(f"MBL queries executed   : {frontend.backend.executed_queries}")
    print(f"memory loads executed  : {frontend.backend.executed_loads}")
    print(f"response-cache entries : {len(frontend.cache)}")
    if arguments.ways == 4:
        print()
        print("The paper reports 160 states for this policy (New1) — compare "
              "with the number above.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Drive CacheQuery directly with MemBlockLang queries.

Three short scenarios on the simulated Skylake CPU:

1. *Eviction probing* (Example 4.1): fill an L1 set, access a fresh block and
   probe every original block to see which one the PLRU policy evicted.
2. *Reset sequences*: the same probe prefixed with a Flush+Refill reset is
   reproducible, which is what makes the learning pipeline possible.
3. *Leader-set detection* (Appendix B): a thrashing pattern distinguishes the
   L3 leader sets (fixed, thrash-vulnerable New2 policy) from follower sets.

Run with::

    python examples/mbl_queries_and_leader_sets.py
"""

from __future__ import annotations

from repro.cachequery import BackendConfig, CacheQuery, CacheQueryConfig
from repro.experiments.leader_sets import detect_leader_sets
from repro.hardware import SKYLAKE_I5_6500, SimulatedCPU
from repro.hardware.timing import NoiseModel


def eviction_probing() -> None:
    print("=== 1. Eviction probing on an L1 set (PLRU) ===")
    cpu = SimulatedCPU(SKYLAKE_I5_6500, noise=NoiseModel(std=0.0))
    session = CacheQuery(
        cpu, CacheQueryConfig(level="L1", set_index=3, backend=BackendConfig(repetitions=1))
    )
    expression = "@ M _?"
    print(f"MBL query          : {expression}")
    print(f"expands to         : {session.associativity} concrete queries")
    results = session.query(expression)
    for block, outcome in zip(session.blocks, results):
        print(f"  probe {block}: {outcome[0]}")
    evicted = [block for block, outcome in zip(session.blocks, results) if outcome[0] == "Miss"]
    print(f"=> the PLRU victim for the fresh block M was line holding {evicted}")
    print()


def reproducible_resets() -> None:
    print("=== 2. Reset sequences make measurements reproducible ===")
    cpu = SimulatedCPU(SKYLAKE_I5_6500, noise=NoiseModel(std=0.0))
    session = CacheQuery(
        cpu,
        CacheQueryConfig(
            level="L2", set_index=40, use_cache=False, backend=BackendConfig(repetitions=1)
        ),
    )
    flushes = " ".join(f"{block}!" for block in session.blocks)
    query = f"{flushes} @ E A? B? C? D?"
    first = session.query(query)[0]
    second = session.query(query)[0]
    print(f"query   : F+R reset, miss on E, probe A-D")
    print(f"1st run : {first}")
    print(f"2nd run : {second}")
    print(f"=> identical traces: {first == second}")
    print()


def leader_sets() -> None:
    print("=== 3. Leader-set detection on the L3 (Appendix B) ===")
    detection = detect_leader_sets(set_indexes=range(0, 72), repetitions=4)
    print(f"scanned L3 sets 0-71 with a thrashing pattern")
    print(f"thrash-vulnerable sets found : {list(detection.detected_leaders)}")
    print(f"paper's index formula gives  : {list(detection.formula_leaders)}")
    print(f"agreement                    : {detection.formula_agreement * 100:.1f}%")


def main() -> None:
    eviction_probing()
    reproducible_resets()
    leader_sets()


if __name__ == "__main__":
    main()

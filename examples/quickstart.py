#!/usr/bin/env python3
"""Quickstart: the end-to-end pipeline of Figure 1 on a toy 2-way cache.

The example learns the replacement policy of a software-simulated 2-way LRU
cache (the toy example used throughout Section 2 of the paper), prints the
learned Mealy machine, and then synthesizes a human-readable explanation of
it.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.policies import LRUPolicy
from repro.polca.pipeline import learn_simulated_policy
from repro.synthesis import SynthesisConfig, explain_policy


def main() -> None:
    policy = LRUPolicy(2)

    print("=== Step 1: learn the policy from a simulated cache (Polca + L*) ===")
    report = learn_simulated_policy(policy)
    machine = report.machine
    print(f"learned a Mealy machine with {machine.size} states "
          f"(identified as {report.identified_policy})")
    print(f"membership queries : {report.learning_result.statistics.membership_queries}")
    print(f"cache probes       : {report.polca_statistics.cache_probes}")
    print()
    print("transition table (state, input) -> output / successor:")
    for state, symbol, output, successor in machine.transition_table():
        print(f"  ({state}, {symbol!s:6}) -> {output!s:3} / {successor}")
    print()
    print("Graphviz DOT (paste into `dot -Tpng`):")
    print(machine.to_dot())
    print()

    print("=== Step 2: synthesize a human-readable explanation ===")
    result = explain_policy(policy, config=SynthesisConfig(max_seconds=60))
    print(result.pretty())


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Synthesize human-readable explanations for the undocumented Intel policies.

Section 8 of the paper turns the learned automata for **New1** (Skylake /
Kaby Lake L2) and **New2** (their L3 leader sets) into short rule-based
programs.  This example reproduces that step: it synthesizes an explanation
for New1 (and, with ``--all``, for New2 and the SRRIP variants too) and
prints it side by side with the paper's Appendix C description.

Run with::

    python examples/explain_undocumented_policies.py [--all]
"""

from __future__ import annotations

import argparse

from repro.policies.registry import make_policy
from repro.synthesis import SynthesisConfig, explain_policy, reference_explanation


def explain(name: str, budget: float) -> None:
    policy = make_policy(name, 4)
    print(f"--- {name} (associativity 4, {policy.state_count()} states) ---")
    result = explain_policy(policy, config=SynthesisConfig(max_seconds=budget))
    print(result.pretty())
    print()
    print("paper's description (Appendix C):")
    print(reference_explanation(name, 4).pretty())
    synthesized = result.program.as_policy().to_mealy(max_states=5000).minimize()
    reference = reference_explanation(name, 4).as_policy().to_mealy(max_states=5000).minimize()
    print()
    print(f"synthesized program equivalent to the paper's description: "
          f"{synthesized.equivalent(reference)}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true",
                        help="also synthesize New2 and the SRRIP variants (a few minutes)")
    parser.add_argument("--budget", type=float, default=600.0,
                        help="synthesis budget per policy in seconds")
    arguments = parser.parse_args()

    names = ["NEW1"]
    if arguments.all:
        names += ["NEW2", "SRRIP-HP", "SRRIP-FP"]
    for name in names:
        explain(name, arguments.budget)


if __name__ == "__main__":
    main()

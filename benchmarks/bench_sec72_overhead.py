"""Section 7.2 — the cost of learning from hardware.

Two benchmarks:

* ``test_overhead_simulated_vs_cachequery`` learns the same PLRU policy from
  a software-simulated cache and through the full CacheQuery stack and
  reports the slowdown factor (the paper reports ~1500x for PLRU-8 against a
  fully cached backend; the exact factor is environment-specific, what must
  hold is the orders-of-magnitude gap).
* ``test_mbl_query_latency_per_level`` measures the mean latency of the
  eviction-probing query ``@ X _?`` on L1, L2 and L3 (the paper reports
  16 ms / 11 ms / 20 ms on the Skylake part).
"""

import pytest

from conftest import run_once

from repro.experiments.overhead import mbl_query_latency, simulated_vs_cachequery_overhead


def test_overhead_simulated_vs_cachequery(benchmark):
    result = run_once(benchmark, simulated_vs_cachequery_overhead, "PLRU", 4)
    assert result.simulated_states == result.cachequery_states == 8
    assert result.overhead_factor > 1
    benchmark.extra_info["simulated_seconds"] = round(result.simulated_seconds, 4)
    benchmark.extra_info["cachequery_seconds"] = round(result.cachequery_seconds, 4)
    benchmark.extra_info["overhead_factor"] = round(result.overhead_factor, 1)


@pytest.mark.parametrize("executions", [10])
def test_mbl_query_latency_per_level(benchmark, executions):
    latencies = run_once(benchmark, mbl_query_latency, executions=executions, repetitions=3)
    assert set(latencies) == {"L1", "L2", "L3"}
    for level, seconds in latencies.items():
        benchmark.extra_info[f"{level}_query_ms"] = round(seconds * 1000, 3)

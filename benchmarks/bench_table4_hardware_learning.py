"""Table 4 — learning policies from (simulated) hardware through CacheQuery.

Each benchmark runs the complete hardware pipeline — CacheQuery backend on a
simulated CPU, MBL queries, Polca, learner — for one (CPU, cache level)
target and checks that the identified policy matches the one the paper
reports (PLRU on the L1s and Haswell's L2, New1 on Skylake/Kaby Lake L2,
New2 on the L3 leader sets).  The fast profile shrinks the associativity to
2 (via CAT for the L3s and a reduced profile for L1/L2); the policies, set
selection, reset sequences and the whole measurement stack are identical to
the paper-sized run (``repro-experiments table4 --mode standard|full``).

Haswell's L3 is reported as not learnable (no CAT support), as in the paper.
"""

import pytest

from conftest import run_once

from repro.experiments.table4 import (
    Table4Configuration,
    run_table4_configuration,
    table4_configurations,
)

FAST_CONFIGURATIONS = [c for c in table4_configurations("fast") if c.learnable]
UNLEARNABLE = [c for c in table4_configurations("fast") if not c.learnable]


@pytest.mark.parametrize(
    "configuration",
    FAST_CONFIGURATIONS,
    ids=[f"{c.cpu}-{c.level}" for c in FAST_CONFIGURATIONS],
)
def test_table4_hardware_learning(benchmark, configuration):
    row = run_once(benchmark, run_table4_configuration, configuration)
    assert row.identified_policy == row.paper_policy
    assert row.learned_states is not None and row.learned_states >= 2
    benchmark.extra_info["cpu"] = row.cpu
    benchmark.extra_info["level"] = row.level
    benchmark.extra_info["identified_policy"] = row.identified_policy
    benchmark.extra_info["learned_states"] = row.learned_states
    benchmark.extra_info["paper_states_at_full_associativity"] = row.paper_states
    benchmark.extra_info["reset"] = row.reset
    benchmark.extra_info["note"] = row.note


@pytest.mark.parametrize(
    "configuration", UNLEARNABLE, ids=[f"{c.cpu}-{c.level}" for c in UNLEARNABLE]
)
def test_table4_unlearnable_targets_are_reported(benchmark, configuration):
    """Haswell's L3 cannot be learned (no CAT), matching the paper's '–' entries."""
    row = run_once(benchmark, run_table4_configuration, configuration)
    assert row.learned_states is None
    assert row.identified_policy is None
    benchmark.extra_info["skip_reason"] = row.note

"""Table 2 — learning replacement policies from software-simulated caches.

Each benchmark learns one (policy, associativity) configuration through the
full Polca + L* + Wp-method pipeline and checks the learned state count
against the paper's Table 2.  The fast profile stops at associativity 4
(associativity 2 for the SRRIP variants); the growth trend — FIFO flat,
everything else roughly exponential — is already visible there, and the
``repro-experiments table2 --mode standard|full`` command runs the larger
sweeps.
"""

import pytest

from conftest import run_once

from repro.experiments.table2 import PAPER_TABLE2_STATES
from repro.policies.registry import make_policy
from repro.polca.pipeline import learn_simulated_policy

FAST_CONFIGURATIONS = [
    ("FIFO", 2),
    ("FIFO", 4),
    ("LRU", 2),
    ("LRU", 4),
    ("PLRU", 2),
    ("PLRU", 4),
    ("MRU", 2),
    ("MRU", 4),
    ("LIP", 2),
    ("LIP", 4),
    ("SRRIP-HP", 2),
    ("SRRIP-FP", 2),
]


@pytest.mark.parametrize(
    "policy_name,associativity",
    FAST_CONFIGURATIONS,
    ids=[f"{name}-assoc{assoc}" for name, assoc in FAST_CONFIGURATIONS],
)
def test_table2_learning(benchmark, policy_name, associativity):
    policy = make_policy(policy_name, associativity)
    report = run_once(benchmark, learn_simulated_policy, policy)
    expected = PAPER_TABLE2_STATES.get((policy_name, associativity))
    if expected is not None:
        assert report.num_states == expected
    # The learned machine must be exactly the simulated policy.  (The
    # identification *name* can differ at associativity 2, where e.g. PLRU,
    # LRU and MRU coincide.)
    assert policy.to_mealy().minimize().equivalent(report.machine)
    benchmark.extra_info["learned_states"] = report.num_states
    benchmark.extra_info["paper_states"] = expected
    benchmark.extra_info["membership_queries"] = (
        report.learning_result.statistics.membership_queries
    )
    benchmark.extra_info["cache_probes"] = report.polca_statistics.cache_probes

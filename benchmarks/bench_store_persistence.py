"""On-disk size and reload time: trie-backed prefix store vs. legacy JSON.

The acceptance experiment of the unified-store PR: persist the response
cache of a PLRU-8 conformance sweep twice —

* **legacy format** — the pre-PR-5 ``QueryCache`` JSON: one object per
  concrete query carrying the *full* query text (reset sequence included),
  so bytes grow with ``suite words x average query length``;
* **store codec** — the shared :class:`~repro.store.PrefixStore` trie:
  queries sharing an operation prefix (every probe behind one reset
  sequence, every extension of one access chain) store it once —

and compare file sizes and cold-reload wall clock.  The probe texts are
derived *symbolically* from the PLRU reference machine (Polca's block
mapping replayed against the machine's own outputs), so the benchmark
measures storage, not simulation.

The default profile uses the depth-1 suite of the 128-state PLRU-8 machine;
``--full`` (or the slow-marked test) runs the paper-scale depth-2 sweep
(~342k suite words).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_store_persistence.py [--full]

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_store_persistence.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import time
from itertools import islice
from pathlib import Path

import pytest

from repro.cachequery.querycache import QueryCache
from repro.core.alphabet import MISS_OUTPUT, Line
from repro.learning.wpmethod import iter_wp_method_suite
from repro.polca.interfaces import default_block_names
from repro.polca.reset import FlushRefillReset
from repro.policies.registry import make_policy
from repro.store import PrefixStore

#: Cap on suite words for the default (fast) profile.
DEFAULT_WORD_CAP = 20_000


def polca_access_chain(word, outputs, universe, associativity):
    """The block sequence Polca would access for ``word`` (derived, not run)."""
    content = list(universe[:associativity])
    accesses = []
    for symbol, output in zip(word, outputs):
        if isinstance(symbol, Line):
            block = content[symbol.index]
        else:
            block = next(b for b in universe if b not in content)
        accesses.append(block)
        if output != MISS_OUTPUT:
            content[output] = block
    return accesses


def sweep_entries(associativity: int, depth: int, cap=None):
    """Yield ``(query_text, outcomes)`` for a PLRU conformance sweep."""
    machine = make_policy("PLRU", associativity).to_mealy(max_states=200_000).minimize()
    universe = default_block_names(associativity + 2)
    reset = FlushRefillReset().mbl_prefix(associativity, universe)
    suite = iter_wp_method_suite(machine, depth)
    if cap is not None:
        suite = islice(suite, cap)
    for word in suite:
        outputs = machine.run(word)
        chain = polca_access_chain(word, outputs, universe, associativity)
        text = f"{reset} " + " ".join(f"{block}?" for block in chain)
        outcomes = tuple(
            "Hit" if output == MISS_OUTPUT else "Miss" for output in outputs
        )
        yield text, outcomes


def measure(associativity: int, depth: int, cap=None):
    with tempfile.TemporaryDirectory() as tmp:
        legacy_path = Path(tmp) / "legacy.json"
        store_path = Path(tmp) / "store.json"

        entries = list(sweep_entries(associativity, depth, cap))

        legacy = [
            {"level": "L2", "slice": 0, "set": 0, "query": text, "outcomes": list(out)}
            for text, out in entries
        ]
        legacy_path.write_text(json.dumps(legacy))

        cache = QueryCache(str(store_path))
        for text, outcomes in entries:
            cache.put("L2", 0, 0, text, outcomes)
        cache.save()

        start = time.perf_counter()
        json.loads(legacy_path.read_text())
        legacy_reload = time.perf_counter() - start

        start = time.perf_counter()
        reloaded = PrefixStore(str(store_path))
        store_reload = time.perf_counter() - start

        return {
            "associativity": associativity,
            "depth": depth,
            "entries": len(entries),
            "legacy_bytes": legacy_path.stat().st_size,
            "store_bytes": store_path.stat().st_size,
            "ratio": legacy_path.stat().st_size / store_path.stat().st_size,
            "legacy_reload_seconds": legacy_reload,
            "store_reload_seconds": store_reload,
            "store_nodes": reloaded.node_count,
        }


def report(metrics):
    print(
        f"PLRU-{metrics['associativity']} depth {metrics['depth']}: "
        f"{metrics['entries']} queries -> legacy {metrics['legacy_bytes'] / 1024:.0f} KiB, "
        f"store {metrics['store_bytes'] / 1024:.0f} KiB "
        f"(x{metrics['ratio']:.1f} smaller, {metrics['store_nodes']} nodes); "
        f"reload {metrics['legacy_reload_seconds'] * 1000:.0f} ms legacy vs "
        f"{metrics['store_reload_seconds'] * 1000:.0f} ms store"
    )


def assert_store_wins(metrics):
    """The acceptance claim: the trie codec is measurably smaller on disk."""
    assert metrics["store_bytes"] < metrics["legacy_bytes"] / 2, (
        f"store {metrics['store_bytes']} B is not measurably smaller than "
        f"legacy {metrics['legacy_bytes']} B"
    )
    # Round-trip sanity: the reloaded store answers a probe it stored.
    assert metrics["store_nodes"] > 0


# --------------------------------------------------------------------- pytest


def test_store_persistence_smoke_plru8_depth1():
    """Fast profile: PLRU-8 depth-1 sweep (capped) — store at least 2x smaller."""
    metrics = measure(8, 1, cap=DEFAULT_WORD_CAP)
    assert metrics["entries"] > 1000
    assert_store_wins(metrics)


@pytest.mark.slow
def test_store_persistence_plru8_depth2_full():
    """The acceptance configuration: the full PLRU-8 depth-2 sweep (~342k words)."""
    metrics = measure(8, 2)
    assert metrics["entries"] > 100_000
    assert_store_wins(metrics)
    report(metrics)


# ----------------------------------------------------------------- standalone


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    print("== Prefix-store persistence vs. legacy QueryCache JSON ==")
    configurations = [(4, 2, None), (8, 1, DEFAULT_WORD_CAP)]
    if "--full" in argv:
        configurations.append((8, 2, None))
    for associativity, depth, cap in configurations:
        metrics = measure(associativity, depth, cap)
        assert_store_wins(metrics)
        report(metrics)
    print("\nTrie-backed store measurably smaller than legacy JSON. OK")


if __name__ == "__main__":
    main()

"""On-disk size, reload time, per-row save cost and multi-writer throughput.

Three claims about the measurement store, each pinned by a benchmark:

* **size** (PR 5): the trie codec stores a PLRU conformance sweep in a
  fraction of the legacy per-query JSON — queries sharing an operation
  prefix store it once;
* **per-row save cost** (this PR): the v2 append-log codec makes
  ``store.save()`` after one learned row cost O(delta records), not
  O(store) — measured by byte counting through
  :func:`~repro.store.codec.track_store_io`, so the old rewrite-the-world
  behaviour cannot silently return;
* **concurrency** (this PR): N writer processes appending disjoint and
  overlapping namespaces into one sharded corpus lose zero records and
  corrupt zero shards across repeated seeded runs
  (``--json BENCH_store_concurrency.json`` records the sweep).

The probe texts are derived *symbolically* from the PLRU reference machine
(Polca's block mapping replayed against the machine's own outputs), so the
benchmarks measure storage, not simulation.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_store_persistence.py [--full]
    PYTHONPATH=src python benchmarks/bench_store_persistence.py \\
        --json BENCH_store_concurrency.json

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_store_persistence.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from itertools import islice
from pathlib import Path

import pytest

from repro.cachequery.querycache import QueryCache
from repro.core.alphabet import MISS_OUTPUT, Line
from repro.learning.wpmethod import iter_wp_method_suite
from repro.polca.interfaces import default_block_names
from repro.polca.reset import FlushRefillReset
from repro.policies.registry import make_policy
from repro.store import PrefixStore, ShardedStore, track_store_io

#: Cap on suite words for the default (fast) profile.
DEFAULT_WORD_CAP = 20_000


def polca_access_chain(word, outputs, universe, associativity):
    """The block sequence Polca would access for ``word`` (derived, not run)."""
    content = list(universe[:associativity])
    accesses = []
    for symbol, output in zip(word, outputs):
        if isinstance(symbol, Line):
            block = content[symbol.index]
        else:
            block = next(b for b in universe if b not in content)
        accesses.append(block)
        if output != MISS_OUTPUT:
            content[output] = block
    return accesses


def sweep_entries(associativity: int, depth: int, cap=None):
    """Yield ``(query_text, outcomes)`` for a PLRU conformance sweep."""
    machine = make_policy("PLRU", associativity).to_mealy(max_states=200_000).minimize()
    universe = default_block_names(associativity + 2)
    reset = FlushRefillReset().mbl_prefix(associativity, universe)
    suite = iter_wp_method_suite(machine, depth)
    if cap is not None:
        suite = islice(suite, cap)
    for word in suite:
        outputs = machine.run(word)
        chain = polca_access_chain(word, outputs, universe, associativity)
        text = f"{reset} " + " ".join(f"{block}?" for block in chain)
        outcomes = tuple(
            "Hit" if output == MISS_OUTPUT else "Miss" for output in outputs
        )
        yield text, outcomes


def measure(associativity: int, depth: int, cap=None):
    with tempfile.TemporaryDirectory() as tmp:
        legacy_path = Path(tmp) / "legacy.json"
        store_path = Path(tmp) / "store.json"

        entries = list(sweep_entries(associativity, depth, cap))

        legacy = [
            {"level": "L2", "slice": 0, "set": 0, "query": text, "outcomes": list(out)}
            for text, out in entries
        ]
        legacy_path.write_text(json.dumps(legacy))

        cache = QueryCache(str(store_path))
        for text, outcomes in entries:
            cache.put("L2", 0, 0, text, outcomes)
        cache.save()

        start = time.perf_counter()
        json.loads(legacy_path.read_text())
        legacy_reload = time.perf_counter() - start

        start = time.perf_counter()
        reloaded = PrefixStore(str(store_path))
        store_reload = time.perf_counter() - start

        return {
            "associativity": associativity,
            "depth": depth,
            "entries": len(entries),
            "legacy_bytes": legacy_path.stat().st_size,
            "store_bytes": store_path.stat().st_size,
            "ratio": legacy_path.stat().st_size / store_path.stat().st_size,
            "legacy_reload_seconds": legacy_reload,
            "store_reload_seconds": store_reload,
            "store_nodes": reloaded.node_count,
        }


def report(metrics):
    print(
        f"PLRU-{metrics['associativity']} depth {metrics['depth']}: "
        f"{metrics['entries']} queries -> legacy {metrics['legacy_bytes'] / 1024:.0f} KiB, "
        f"store {metrics['store_bytes'] / 1024:.0f} KiB "
        f"(x{metrics['ratio']:.1f} smaller, {metrics['store_nodes']} nodes); "
        f"reload {metrics['legacy_reload_seconds'] * 1000:.0f} ms legacy vs "
        f"{metrics['store_reload_seconds'] * 1000:.0f} ms store"
    )


def assert_store_wins(metrics):
    """The acceptance claim: the trie codec is measurably smaller on disk."""
    assert metrics["store_bytes"] < metrics["legacy_bytes"] / 2, (
        f"store {metrics['store_bytes']} B is not measurably smaller than "
        f"legacy {metrics['legacy_bytes']} B"
    )
    # Round-trip sanity: the reloaded store answers a probe it stored.
    assert metrics["store_nodes"] > 0


# --------------------------------------------------------- per-row save cost


def measure_delta_saves(rows: int = 200, entries_per_row: int = 40):
    """Per-row save cost as the store grows: bytes written per ``save()``.

    Simulates the run_table2/run_table4 discipline — record one row's worth
    of measurements, save, repeat — and byte-counts every save.  With the
    v1 whole-file codec the cost of save ``k`` grew linearly in ``k``; the
    v2 append log keeps it flat.
    """
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "store.json"
        store = PrefixStore(str(path))
        namespace = store.namespace(("bench", "delta"))
        per_save_written = []
        for row in range(rows):
            for i in range(entries_per_row):
                namespace.record(
                    (f"row{row}", f"blk{i}", "probe"), (None, None, "Hit")
                )
            with track_store_io() as io:
                store.save()
            per_save_written.append(io.bytes_written)
        final_size = path.stat().st_size
    window = max(1, rows // 10)
    early = sum(per_save_written[:window]) / window
    late = sum(per_save_written[-window:]) / window
    return {
        "rows": rows,
        "entries_per_row": entries_per_row,
        "early_save_bytes": early,
        "late_save_bytes": late,
        "late_over_early": late / early if early else None,
        "final_store_bytes": final_size,
        "total_bytes_written": sum(per_save_written),
        # What the v1 codec would have written: the final image, per row.
        "o_store_bytes_written_estimate": final_size * rows,
    }


def assert_delta_saves_flat(metrics):
    """The acceptance claim: save cost is O(delta), not O(store)."""
    assert metrics["late_over_early"] < 3, (
        f"late saves write {metrics['late_over_early']:.1f}x the bytes of "
        "early saves: per-row cost is growing with the store again"
    )
    assert metrics["total_bytes_written"] < metrics["o_store_bytes_written_estimate"] / 10, (
        "total bytes written is within 10x of the O(store) rewrite cost"
    )


# --------------------------------------------------------------- concurrency

#: One benchmark writer: appends its own namespace plus a shared one,
#: saving per record and timing every save.  The target is either a
#: sharded-corpus path (direct-file writer, fcntl lock per save) or a
#: ``unix://``/``tcp://`` address (writes routed through the store
#: server).  Per-save latencies go to stdout as one JSON list.
_WRITER = """
import json, sys, time
from repro.store import open_store

target, writer_id, records = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = open_store(target, sharded=True)
own = store.namespace(("bench", "writer", writer_id))
shared = store.namespace(("bench", "shared"))
latencies = []
for i in range(records):
    own.record((f"w{writer_id}", f"b{i}"), (None, "Hit"))
    start = time.perf_counter()
    store.save()
    latencies.append(time.perf_counter() - start)
    shared.record((f"s{i % 7}", f"x{i}"), (None, "Miss"))
    start = time.perf_counter()
    store.save()
    latencies.append(time.perf_counter() - start)
print(json.dumps(latencies))
"""


def percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def start_store_server(corpus, address):
    """Spawn ``python -m repro.store.server``; return (process, bound address)."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.store.server",
            "--path",
            str(corpus),
            "--listen",
            address,
        ],
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    assert line.startswith("LISTENING "), f"store server did not start: {line!r}"
    return process, line.split(None, 1)[1].strip()


def measure_concurrency(
    n_writers: int = 4, records: int = 25, runs: int = 20, *, via_server: bool = False
):
    """N concurrent writer processes into one sharded corpus, ``runs`` times.

    ``via_server=False`` is the direct-file baseline: every writer takes
    the advisory ``fcntl`` lock (and replays the others' appends) per
    save.  ``via_server=True`` routes the same workload through one
    ``repro.store.server`` subprocess owning the corpus.  Each run
    verifies zero lost records and zero corrupted shards before counting;
    any violation raises.
    """
    import signal

    wall_times = []
    save_latencies = []
    for run in range(runs):
        with tempfile.TemporaryDirectory() as tmp:
            corpus = Path(tmp) / "corpus.shards"
            server = None
            target = str(corpus)
            if via_server:
                server, target = start_store_server(
                    corpus, f"unix://{tmp}/bench.sock"
                )
            try:
                start = time.perf_counter()
                processes = [
                    subprocess.Popen(
                        [sys.executable, "-c", _WRITER, target, str(w), str(records)],
                        env={**os.environ, "PYTHONPATH": "src"},
                        stdout=subprocess.PIPE,
                        text=True,
                    )
                    for w in range(n_writers)
                ]
                for process in processes:
                    stdout, _ = process.communicate(timeout=300)
                    assert process.returncode == 0, (
                        f"writer failed in run {run} (exit {process.returncode})"
                    )
                    save_latencies.extend(json.loads(stdout))
                wall_times.append(time.perf_counter() - start)
            finally:
                if server is not None:
                    server.send_signal(signal.SIGTERM)
                    assert server.wait(timeout=30) == 0

            merged = ShardedStore(corpus)  # raises on any corrupted shard
            for w in range(n_writers):
                own = merged.namespace(("bench", "writer", w))
                words = {word for word, _ in own.iter_entries()}
                expected = {(f"w{w}", f"b{i}") for i in range(records)}
                assert words == expected, f"run {run}: writer {w} lost records"
            shared = merged.namespace(("bench", "shared"))
            shared_words = {word for word, _ in shared.iter_entries()}
            assert shared_words == {(f"s{i % 7}", f"x{i}") for i in range(records)}
    total_records = n_writers * records * 2
    return {
        "scenario": "via-server" if via_server else "direct-file",
        "writers": n_writers,
        "records_per_writer": records * 2,
        "runs": runs,
        "lost_records": 0,
        "corrupted_shards": 0,
        "mean_run_seconds": sum(wall_times) / len(wall_times),
        "records_per_second": total_records / (sum(wall_times) / len(wall_times)),
        "mean_save_seconds": sum(save_latencies) / len(save_latencies),
        "p99_save_seconds": percentile(save_latencies, 0.99),
    }


def measure_warm_start_via_server():
    """Learn LRU-2 through a server, then re-learn warm: 0 queries re-executed."""
    import signal

    from repro.experiments.table2 import run_table2
    from repro.store import open_store

    configurations = [("LRU", 2)]
    with tempfile.TemporaryDirectory() as tmp:
        corpus = Path(tmp) / "corpus.shards"
        server, address = start_store_server(corpus, f"unix://{tmp}/warm.sock")
        try:
            cold = open_store(address)
            cold_rows = run_table2(configurations=configurations, store=cold)
            cold.save()
            warm = open_store(address)
            warm_rows = run_table2(configurations=configurations, store=warm)
        finally:
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=30) == 0
    return {
        "configurations": ["-".join(map(str, c)) for c in configurations],
        "cold_queries": sum(row.membership_queries for row in cold_rows),
        "queries_reexecuted": sum(row.membership_queries for row in warm_rows),
        "identified": all(row.identified for row in warm_rows),
    }


# --------------------------------------------------------------------- pytest


def test_store_persistence_smoke_plru8_depth1():
    """Fast profile: PLRU-8 depth-1 sweep (capped) — store at least 2x smaller."""
    metrics = measure(8, 1, cap=DEFAULT_WORD_CAP)
    assert metrics["entries"] > 1000
    assert_store_wins(metrics)


def test_per_row_save_is_o_delta_smoke():
    """Fast profile: per-row save cost stays flat as the store grows."""
    metrics = measure_delta_saves(rows=60, entries_per_row=20)
    assert_delta_saves_flat(metrics)


def test_concurrent_writers_smoke():
    """Fast profile: two runs of 4 concurrent writers, nothing lost."""
    metrics = measure_concurrency(n_writers=4, records=10, runs=2)
    assert metrics["lost_records"] == 0
    assert metrics["corrupted_shards"] == 0
    assert metrics["p99_save_seconds"] > 0


def test_concurrent_writers_via_server_smoke():
    """Fast profile: the same writers through a store server, nothing lost."""
    metrics = measure_concurrency(n_writers=4, records=10, runs=1, via_server=True)
    assert metrics["lost_records"] == 0
    assert metrics["corrupted_shards"] == 0


@pytest.mark.slow
def test_store_persistence_plru8_depth2_full():
    """The acceptance configuration: the full PLRU-8 depth-2 sweep (~342k words)."""
    metrics = measure(8, 2)
    assert metrics["entries"] > 100_000
    assert_store_wins(metrics)
    report(metrics)


@pytest.mark.slow
def test_concurrent_writers_twenty_seeded_runs():
    """The acceptance configuration: 20 runs of N=4 writers, zero losses."""
    metrics = measure_concurrency(n_writers=4, records=25, runs=20)
    assert metrics["lost_records"] == 0
    assert metrics["corrupted_shards"] == 0


# ----------------------------------------------------------------- standalone


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    print("== Prefix-store persistence vs. legacy QueryCache JSON ==")
    configurations = [(4, 2, None), (8, 1, DEFAULT_WORD_CAP)]
    if "--full" in argv:
        configurations.append((8, 2, None))
    for associativity, depth, cap in configurations:
        metrics = measure(associativity, depth, cap)
        assert_store_wins(metrics)
        report(metrics)
    print("\nTrie-backed store measurably smaller than legacy JSON. OK")

    print("\n== Per-row save cost (v2 append log) ==")
    delta = measure_delta_saves()
    assert_delta_saves_flat(delta)
    print(
        f"{delta['rows']} rows x {delta['entries_per_row']} entries: "
        f"early saves {delta['early_save_bytes']:.0f} B, late saves "
        f"{delta['late_save_bytes']:.0f} B (x{delta['late_over_early']:.2f}); "
        f"total written {delta['total_bytes_written'] / 1024:.0f} KiB vs "
        f"{delta['o_store_bytes_written_estimate'] / 1024 / 1024:.1f} MiB "
        "for the O(store) rewrite"
    )

    print("\n== Concurrent writers into one sharded corpus ==")
    runs = 20 if "--full" in argv or "--json" in argv else 3
    scenarios = {}
    for via_server in (False, True):
        metrics = measure_concurrency(runs=runs, via_server=via_server)
        scenarios[metrics["scenario"]] = metrics
        print(
            f"{metrics['scenario']:>12}: {metrics['writers']} writers x "
            f"{metrics['records_per_writer']} records x {metrics['runs']} runs: "
            f"{metrics['lost_records']} lost records, "
            f"{metrics['corrupted_shards']} corrupted shards, "
            f"{metrics['mean_run_seconds'] * 1000:.0f} ms/run "
            f"({metrics['records_per_second']:.0f} records/s, "
            f"p99 save {metrics['p99_save_seconds'] * 1000:.1f} ms)"
        )
    speedup = (
        scenarios["via-server"]["records_per_second"]
        / scenarios["direct-file"]["records_per_second"]
    )
    print(f"via-server throughput: x{speedup:.2f} the direct-file baseline")

    print("\n== Warm start through the server ==")
    warm = measure_warm_start_via_server()
    print(
        f"cold learn: {warm['cold_queries']} membership queries; warm relearn "
        f"over the served corpus: {warm['queries_reexecuted']} re-executed "
        f"(identified: {warm['identified']})"
    )
    assert warm["queries_reexecuted"] == 0, "warm start over the server re-executed queries"

    if "--json" in argv:
        out = Path(argv[argv.index("--json") + 1])
        out.write_text(
            json.dumps(
                {
                    "benchmark": "bench_store_concurrency",
                    "per_row_save": delta,
                    "concurrency": scenarios["direct-file"],
                    "concurrency_via_server": scenarios["via-server"],
                    "warm_start_via_server": warm,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"\nwrote {out}")


if __name__ == "__main__":
    main()

"""End-to-end parallel learning vs. the serial path (fill + streamed suites).

The acceptance experiment of the parallel-fill PR: learn policies from
their software-simulated caches through the full Polca + L* + Wp-method
pipeline twice — serially and with ``workers=2``, where **both** the
observation-table fill and the (now lazily streamed) conformance suite run
on one shared process pool — and compare:

* the **learned machines**, which must be bit-identical (the pool changes
  where words execute, never what is learned);
* the **wall clock** of the two runs;
* the **streaming bound**: ``peak_inflight_words`` (the most suite words
  the parent ever queued, capped at ``max_inflight × batch_size`` = 256
  with the defaults) against the size of the final hypothesis' Wp-suite —
  at depth 2 on PLRU-8 the suite is ~350k words the parent used to
  materialise before the first chunk shipped; and
* the **per-worker executed-query counts**, covering fill and suite work
  alike (one accounting for the whole run).

On a single-core host the parallel run cannot be faster — the benchmark
still verifies machine identity, the streaming bound and the worker
accounting, and reports the observed ratio either way.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_fill.py [--full]

or through pytest (the PLRU-8 run takes minutes and is marked slow)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_fill.py -m slow
"""

import os
import sys
import time

import pytest

from repro.learning.wpmethod import iter_wp_method_suite
from repro.polca.pipeline import learn_simulated_policy
from repro.policies.registry import make_policy

#: (policy, associativity, conformance depth) exercised by the benchmark.
CONFIGURATIONS = [
    ("SRRIP-HP", 2, 2),
    ("PLRU", 8, 2),
]

#: Added by --full: the 178-state SRRIP machine (tens of minutes serially).
FULL_CONFIGURATIONS = [
    ("SRRIP-HP", 4, 2),
]

WORKERS = 2

#: The defaults of ConformanceEquivalenceOracle: the parent's queued-word
#: bound is max_inflight * batch_size.
INFLIGHT_BOUND = 4 * 64


def run_configuration(policy_name, associativity, depth, workers=None):
    """Learn one configuration; return the report plus its wall clock."""
    policy = make_policy(policy_name, associativity)
    start = time.perf_counter()
    report = learn_simulated_policy(
        policy, depth=depth, identify=False, workers=workers
    )
    seconds = time.perf_counter() - start
    return report, seconds


def compare_paths(policy_name, associativity, depth):
    """Run serial and parallel; assert identical machines; return metrics."""
    serial, serial_seconds = run_configuration(policy_name, associativity, depth)
    parallel, parallel_seconds = run_configuration(
        policy_name, associativity, depth, workers=WORKERS
    )
    assert parallel.machine == serial.machine, (
        f"{policy_name}-{associativity}: parallel run learned a different machine!"
    )
    # Size of the *final* round's suite: what the parent used to materialise
    # up front and now only ever streams through the in-flight window.
    final_suite_words = sum(1 for _ in iter_wp_method_suite(serial.machine, depth))
    return {
        "policy": f"{policy_name}-{associativity}",
        "depth": depth,
        "states": serial.num_states,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / max(1e-9, parallel_seconds),
        "final_suite_words": final_suite_words,
        "peak_inflight_words": parallel.extra["peak_inflight_words"],
        "parallel_words": parallel.extra["parallel_words"],
        "parallel_chunks": parallel.extra["parallel_chunks"],
        "worker_query_counts": parallel.extra["worker_query_counts"],
        "worker_symbol_counts": parallel.extra["worker_symbol_counts"],
    }


def report_metrics(metrics):
    workers = ", ".join(
        f"pid {pid}: {queries} queries"
        for pid, queries in sorted(metrics["worker_query_counts"].items())
    )
    print(
        f"{metrics['policy']:>12} depth {metrics['depth']}: "
        f"{metrics['states']} states, "
        f"serial {metrics['serial_seconds']:.1f} s, "
        f"parallel({WORKERS}) {metrics['parallel_seconds']:.1f} s "
        f"(x{metrics['speedup']:.2f}), "
        f"peak queued {metrics['peak_inflight_words']} of "
        f"{metrics['final_suite_words']}-word final suite, "
        f"{metrics['parallel_words']} words in {metrics['parallel_chunks']} chunks "
        f"[{workers}]"
    )


def assert_streaming_bound(metrics):
    """The parent must never have queued more than the in-flight window."""
    assert 0 < metrics["peak_inflight_words"] <= INFLIGHT_BOUND
    assert metrics["peak_inflight_words"] < metrics["final_suite_words"]


# --------------------------------------------------------------------- pytest


def test_parallel_fill_smoke_identical_machines():
    """Cheap configuration: identical machines, streaming bound, worker traffic."""
    metrics = compare_paths("SRRIP-HP", 2, 2)
    assert metrics["parallel_words"] > 0
    assert sum(metrics["worker_query_counts"].values()) > 0
    assert_streaming_bound(metrics)


@pytest.mark.slow
def test_parallel_fill_plru8_depth2():
    """The acceptance configuration: PLRU-8 at depth 2 (minutes of compute).

    The final suite is ~350k words; the parent must bound its queue by the
    in-flight window instead of materialising it.
    """
    metrics = compare_paths("PLRU", 8, 2)
    assert metrics["states"] == 128
    assert metrics["final_suite_words"] > 100_000
    assert metrics["parallel_words"] > 0
    assert sum(metrics["worker_query_counts"].values()) > 0
    assert_streaming_bound(metrics)
    if (os.cpu_count() or 1) > 1:
        # With real cores available the query-dominated run must win.
        assert metrics["speedup"] > 1.0, (
            f"no speedup on a {os.cpu_count()}-core host: "
            f"{metrics['serial_seconds']:.1f}s serial vs "
            f"{metrics['parallel_seconds']:.1f}s parallel"
        )


# ----------------------------------------------------------------- standalone


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    configurations = list(CONFIGURATIONS)
    if "--full" in argv:
        configurations += FULL_CONFIGURATIONS
    print(
        f"== Process-parallel table fill + streamed Wp-suites ({WORKERS} workers, "
        f"{os.cpu_count()} cores) =="
    )
    for policy_name, associativity, depth in configurations:
        metrics = compare_paths(policy_name, associativity, depth)
        assert_streaming_bound(metrics)
        report_metrics(metrics)
    print(
        "\nAll learned machines bit-identical across serial and parallel runs; "
        "parent queue bounded by the in-flight window. OK"
    )


if __name__ == "__main__":
    main()

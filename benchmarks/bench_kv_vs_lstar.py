"""L* vs Kearns–Vazirani vs TTT: cost per discovered state across the registry.

The acceptance experiment of the tree-learner PRs, in three parts:

* **Curve** — every registry policy at associativity 2, conformance depth
  1, learned by all three learners.  For each policy the benchmark records
  the learner-attributed executed membership queries *and symbols* (engine
  totals minus conformance-suite executions — the apples-to-apples cost of
  the learning algorithm, see ``LearningResult.learner_queries`` /
  ``learner_symbols``), wall-clock seconds, and — for the tree learners —
  the longest discriminator of the final classification tree.  All three
  learners must produce bit-identical minimal machines.
* **Head-to-head** — the configurations the PRs' acceptance criteria name:
  PLRU at associativity 8 (the paper's 128-state machine) and SRRIP-HP at
  conformance depth 2.  KV must issue strictly fewer learner-attributed
  queries than L*; TTT must additionally keep PLRU-8 wall clock within
  1.5x of L* (KV is ~2-4x) while executing the fewest learner symbols.
* **Budgeted attempt** — PLRU-16 (32768 states) and SRRIP-HP-4 at depth 3
  under a hard executed-query budget that no learner can finish within
  (L* cannot finish these in any practical budget; PLRU-16 alone is days of
  compute).  The benchmark records how many states each learner discovered
  when the budget cut it off, read live from ``ActiveLearner
  .states_discovered``.

Run standalone (``--json OUT`` writes a machine-readable result so the
perf trajectory accumulates ``BENCH_*.json`` points)::

    PYTHONPATH=src python benchmarks/bench_kv_vs_lstar.py --json BENCH_kv_vs_lstar.json

or through pytest (the PLRU-8 head-to-head takes ~30 s and is marked slow)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kv_vs_lstar.py -m "not slow"
"""

import argparse
import json
import sys
import time

import pytest

from repro.errors import BudgetExceeded
from repro.learning import CachedMembershipOracle, ConformanceEquivalenceOracle
from repro.learning.learner import make_learner
from repro.policies.registry import available_policies, make_policy
from repro.polca.algorithm import PolcaMembershipOracle
from repro.polca.interfaces import SimulatedCacheInterface
from repro.polca.pipeline import learn_simulated_policy

#: Every learner the benchmark compares, in report order.
LEARNERS = ("lstar", "kv", "ttt")

#: The acceptance head-to-heads: (policy, associativity, conformance depth).
HEAD_TO_HEAD = [
    ("PLRU", 8, 1),
    ("SRRIP-HP", 2, 2),
]

#: Registry policies with at least 7 minimal states at associativity 2 —
#: the rows where the TTT acceptance criterion demands strictly fewer
#: learner-attributed executed symbols than KV (on tiny machines the two
#: trees coincide and the probe sets are too small to separate).
LARGE_CURVE_POLICIES = ("BIP", "BRRIP-FP", "CLOCK", "NEW2", "SRRIP-FP", "SRRIP-HP")

#: Configurations L* cannot finish: (policy, associativity, depth, budget).
#: PLRU-16 is the paper's 32768-state machine; SRRIP-HP-4 at depth 3 pairs a
#: 178-state machine with a depth-3 Wp suite.  The budget counts *executed*
#: membership queries through the shared engine.
BUDGETED_ATTEMPTS = [
    ("PLRU", 16, 1, 8_000),
    ("SRRIP-HP", 4, 3, 8_000),
]


class QueryBudgetOracle:
    """Wrap an oracle with a hard cap on executed queries.

    Sits *below* the caching engine, so cache hits are free and only words
    that really execute spend budget — the same accounting as the engine's
    ``membership_queries`` statistic.  Exceeding the cap raises
    :class:`~repro.errors.BudgetExceeded` out of the learning loop, leaving
    the learner inspectable mid-run (``states_discovered``).
    """

    def __init__(self, inner, budget):
        self.inner = inner
        self.budget = budget
        self.executed = 0

    def output_query(self, word):
        if self.executed >= self.budget:
            raise BudgetExceeded(
                "query budget exhausted", spent=self.executed, budget=self.budget
            )
        self.executed += 1
        return self.inner.output_query(word)


def run_trio(policy_name, associativity, depth, learners=LEARNERS):
    """Learn one configuration with every learner; assert identical machines."""
    entry = {
        "policy": policy_name,
        "associativity": associativity,
        "depth": depth,
    }
    machines = {}
    for learner_name in learners:
        start = time.perf_counter()
        report = learn_simulated_policy(
            make_policy(policy_name, associativity),
            depth=depth,
            identify=False,
            learner=learner_name,
        )
        seconds = time.perf_counter() - start
        machines[learner_name] = report.machine
        result = report.learning_result
        record = {
            "states": report.num_states,
            "learner_queries": result.learner_queries,
            "learner_symbols": result.learner_symbols,
            "total_queries": result.statistics.membership_queries,
            "rounds": result.rounds,
            "seconds": round(seconds, 3),
        }
        # Tree learners carry their final classification tree's longest
        # discriminator; the observation table has no analogue.
        if "max_discriminator_length" in report.extra:
            record["max_discriminator_length"] = report.extra["max_discriminator_length"]
        if "ttt_finalized_discriminators" in report.extra:
            record["finalized_discriminators"] = report.extra[
                "ttt_finalized_discriminators"
            ]
        entry[learner_name] = record
    baseline = learners[0]
    for learner_name in learners[1:]:
        assert machines[learner_name] == machines[baseline], (
            f"{policy_name}-{associativity}: {learner_name} learned a different "
            f"machine than {baseline}!"
        )
    entry["identical_machines"] = True
    states = entry[baseline]["states"]
    for learner_name in learners:
        entry[f"{learner_name}_queries_per_state"] = round(
            entry[learner_name]["learner_queries"] / states, 2
        )
    return entry


def run_pair(policy_name, associativity, depth):
    """Back-compat wrapper: the original two-learner comparison."""
    return run_trio(policy_name, associativity, depth, learners=("lstar", "kv"))


def run_budgeted(policy_name, associativity, depth, budget, learner_name):
    """Learn under a hard executed-query budget; record where it cut off."""
    cache = SimulatedCacheInterface(make_policy(policy_name, associativity))
    polca = PolcaMembershipOracle(cache, kernel="auto")
    limited = QueryBudgetOracle(polca, budget)
    engine = CachedMembershipOracle(limited)
    equivalence = ConformanceEquivalenceOracle(engine, depth=depth)
    learner = make_learner(learner_name, polca.alphabet(), engine, equivalence)
    start = time.perf_counter()
    try:
        result = learner.learn()
        finished, states = True, result.num_states
    except BudgetExceeded:
        finished, states = False, learner.states_discovered
    finally:
        close = getattr(equivalence, "close", None)
        if close is not None:
            close()
    return {
        "finished": finished,
        "states_discovered": states,
        "executed_queries": limited.executed,
        "seconds": round(time.perf_counter() - start, 3),
    }


def run_benchmark(policies=None):
    """Produce the full BENCH payload (curve + head-to-heads + budgeted)."""
    payload = {
        "benchmark": "bench_kv_vs_lstar",
        "learners": list(LEARNERS),
        "curve": [],
        "head_to_head": [],
        "budgeted_attempts": [],
    }
    for policy_name in policies if policies is not None else available_policies():
        payload["curve"].append(run_trio(policy_name, 2, 1))
    for policy_name, associativity, depth in HEAD_TO_HEAD:
        entry = run_trio(policy_name, associativity, depth)
        entry["kv_strictly_fewer"] = (
            entry["kv"]["learner_queries"] < entry["lstar"]["learner_queries"]
        )
        entry["ttt_fewest_symbols"] = entry["ttt"]["learner_symbols"] == min(
            entry[name]["learner_symbols"] for name in LEARNERS
        )
        entry["ttt_wall_vs_lstar"] = round(
            entry["ttt"]["seconds"] / entry["lstar"]["seconds"], 2
        )
        entry["kv_wall_vs_lstar"] = round(
            entry["kv"]["seconds"] / entry["lstar"]["seconds"], 2
        )
        payload["head_to_head"].append(entry)
    for policy_name, associativity, depth, budget in BUDGETED_ATTEMPTS:
        entry = {
            "policy": policy_name,
            "associativity": associativity,
            "depth": depth,
            "budget": budget,
        }
        for learner_name in LEARNERS:
            entry[learner_name] = run_budgeted(
                policy_name, associativity, depth, budget, learner_name
            )
        payload["budgeted_attempts"].append(entry)
    return payload


def report_payload(payload):
    print(
        f"{'policy':>10} {'states':>6} "
        f"{'L* lq':>7} {'KV lq':>7} {'TTT lq':>7} "
        f"{'L* sym':>8} {'KV sym':>8} {'TTT sym':>8} "
        f"{'KV disc':>7} {'TTT disc':>8}"
    )
    for entry in payload["curve"]:
        print(
            f"{entry['policy']:>10} {entry['lstar']['states']:>6} "
            f"{entry['lstar']['learner_queries']:>7} "
            f"{entry['kv']['learner_queries']:>7} "
            f"{entry['ttt']['learner_queries']:>7} "
            f"{entry['lstar']['learner_symbols']:>8} "
            f"{entry['kv']['learner_symbols']:>8} "
            f"{entry['ttt']['learner_symbols']:>8} "
            f"{entry['kv']['max_discriminator_length']:>7} "
            f"{entry['ttt']['max_discriminator_length']:>8}"
        )
    for entry in payload["head_to_head"]:
        print(
            f"head-to-head {entry['policy']}-{entry['associativity']} depth "
            f"{entry['depth']}: learner queries L* {entry['lstar']['learner_queries']} "
            f"/ KV {entry['kv']['learner_queries']} / TTT "
            f"{entry['ttt']['learner_queries']}; symbols "
            f"{entry['lstar']['learner_symbols']} / {entry['kv']['learner_symbols']} "
            f"/ {entry['ttt']['learner_symbols']}; wall "
            f"{entry['lstar']['seconds']}s / {entry['kv']['seconds']}s / "
            f"{entry['ttt']['seconds']}s (TTT/L* = {entry['ttt_wall_vs_lstar']})"
        )
    for entry in payload["budgeted_attempts"]:
        cutoffs = ", ".join(
            f"{name} finished={entry[name]['finished']} at "
            f"{entry[name]['states_discovered']} states"
            for name in LEARNERS
        )
        print(
            f"budgeted {entry['policy']}-{entry['associativity']} depth "
            f"{entry['depth']} (budget {entry['budget']}): {cutoffs}"
        )


def check_acceptance(payload):
    """Assert the acceptance criteria on a full payload; return the findings."""
    findings = []
    for entry in payload["head_to_head"]:
        label = f"{entry['policy']}-{entry['associativity']}"
        assert entry["kv_strictly_fewer"], (
            f"{label}: KV did not issue strictly fewer learner-attributed "
            "queries than L*"
        )
        assert entry["ttt_fewest_symbols"], (
            f"{label}: TTT did not execute the fewest learner-attributed symbols"
        )
        if entry["policy"] == "PLRU" and entry["associativity"] == 8:
            assert entry["ttt_wall_vs_lstar"] <= 1.5, (
                f"PLRU-8: TTT wall clock {entry['ttt_wall_vs_lstar']}x L* "
                "exceeds the 1.5x acceptance bound"
            )
            findings.append(
                f"PLRU-8 wall: TTT {entry['ttt']['seconds']}s vs L* "
                f"{entry['lstar']['seconds']}s ({entry['ttt_wall_vs_lstar']}x)"
            )
    by_policy = {entry["policy"]: entry for entry in payload["curve"]}
    for policy_name in LARGE_CURVE_POLICIES:
        entry = by_policy.get(policy_name)
        if entry is None:
            continue
        assert entry["ttt"]["learner_symbols"] < entry["kv"]["learner_symbols"], (
            f"{policy_name}: TTT learner symbols "
            f"{entry['ttt']['learner_symbols']} not strictly below KV's "
            f"{entry['kv']['learner_symbols']}"
        )
        assert (
            entry["ttt"]["max_discriminator_length"]
            <= entry["kv"]["max_discriminator_length"]
        ), (
            f"{policy_name}: TTT max discriminator length "
            f"{entry['ttt']['max_discriminator_length']} exceeds KV's "
            f"{entry['kv']['max_discriminator_length']}"
        )
        findings.append(
            f"{policy_name}: TTT {entry['ttt']['learner_symbols']} symbols "
            f"< KV {entry['kv']['learner_symbols']}"
        )
    return findings


# --------------------------------------------------------------------- pytest


def test_curve_smoke_identical_and_no_worse():
    """Cheap registry slice: identical machines, tree learners no worse."""
    for policy_name in ("LRU", "CLOCK", "SRRIP-FP"):
        entry = run_trio(policy_name, 2, 1)
        assert entry["identical_machines"]
        assert entry["kv"]["learner_queries"] <= entry["lstar"]["learner_queries"]
        assert entry["ttt"]["learner_queries"] <= entry["kv"]["learner_queries"]


def test_curve_ttt_fewest_symbols_on_large_policies():
    """On >= 7-state registry policies TTT pays the fewest learner symbols."""
    for policy_name in ("CLOCK", "NEW2"):
        entry = run_trio(policy_name, 2, 1)
        assert entry["ttt"]["learner_symbols"] < entry["kv"]["learner_symbols"]
        assert (
            entry["ttt"]["max_discriminator_length"]
            <= entry["kv"]["max_discriminator_length"]
        )


def test_head_to_head_srrip_depth2():
    """SRRIP-HP at depth 2: KV strictly fewer queries, TTT fewest symbols."""
    entry = run_trio("SRRIP-HP", 2, 2)
    assert entry["identical_machines"]
    assert entry["kv"]["learner_queries"] < entry["lstar"]["learner_queries"]
    assert entry["ttt"]["learner_symbols"] <= entry["kv"]["learner_symbols"]


@pytest.mark.slow
def test_head_to_head_plru8():
    """PLRU-8 (128 states): tree learners cheaper; TTT wall within 1.5x L*."""
    entry = run_trio("PLRU", 8, 1)
    assert entry["lstar"]["states"] == 128
    assert entry["identical_machines"]
    assert entry["kv"]["learner_queries"] < entry["lstar"]["learner_queries"]
    assert entry["ttt"]["learner_symbols"] < entry["kv"]["learner_symbols"]
    assert entry["ttt"]["seconds"] <= 1.5 * entry["lstar"]["seconds"]


def test_budgeted_attempt_cuts_off_lstar():
    """PLRU-16 under a query budget: L* cannot finish; mid-run states are live."""
    outcome = run_budgeted("PLRU", 16, 1, 2_000, "lstar")
    assert not outcome["finished"]
    assert 0 < outcome["states_discovered"] < 32768
    assert outcome["executed_queries"] == 2_000


# ----------------------------------------------------------------- standalone


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="write the machine-readable result to this path "
        "(the BENCH_*.json perf-trajectory format)",
    )
    arguments = parser.parse_args(sys.argv[1:] if argv is None else argv)
    payload = run_benchmark()
    report_payload(payload)
    for line in check_acceptance(payload):
        print(f"acceptance: {line}")
    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {arguments.json}")


if __name__ == "__main__":
    main()

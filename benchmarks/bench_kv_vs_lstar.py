"""L* vs Kearns–Vazirani: queries per discovered state across the registry.

The acceptance experiment of the KV-learner PR, in three parts:

* **Curve** — every registry policy at associativity 2, conformance depth
  1, learned by both learners.  For each policy the benchmark records the
  learner-attributed executed membership queries (engine total minus
  conformance-suite executions — the apples-to-apples cost of the learning
  algorithm, see ``LearningResult.learner_queries``), the engine totals,
  and the queries-per-state ratio.  Both learners must produce bit-identical
  minimal machines.
* **Head-to-head** — the two configurations the PR's acceptance criteria
  name: PLRU at associativity 8 (the paper's 128-state machine) and SRRIP-HP
  at conformance depth 2.  KV must issue *strictly fewer* learner-attributed
  queries than L* on both.
* **Budgeted attempt** — PLRU-16 (32768 states) and SRRIP-HP-4 at depth 3
  under a hard executed-query budget that neither learner can finish within
  (L* cannot finish these in any practical budget; PLRU-16 alone is days of
  compute).  The benchmark records how many states each learner discovered
  when the budget cut it off, read live from ``ActiveLearner
  .states_discovered``.

Run standalone (``--json OUT`` writes a machine-readable result so the
perf trajectory accumulates ``BENCH_*.json`` points)::

    PYTHONPATH=src python benchmarks/bench_kv_vs_lstar.py --json BENCH_kv_vs_lstar.json

or through pytest (the PLRU-8 head-to-head takes ~30 s and is marked slow)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kv_vs_lstar.py -m "not slow"
"""

import argparse
import json
import sys
import time

import pytest

from repro.errors import BudgetExceeded
from repro.learning import CachedMembershipOracle, ConformanceEquivalenceOracle
from repro.learning.learner import make_learner
from repro.policies.registry import available_policies, make_policy
from repro.polca.algorithm import PolcaMembershipOracle
from repro.polca.interfaces import SimulatedCacheInterface
from repro.polca.pipeline import learn_simulated_policy

#: The acceptance head-to-heads: (policy, associativity, conformance depth).
HEAD_TO_HEAD = [
    ("PLRU", 8, 1),
    ("SRRIP-HP", 2, 2),
]

#: Configurations L* cannot finish: (policy, associativity, depth, budget).
#: PLRU-16 is the paper's 32768-state machine; SRRIP-HP-4 at depth 3 pairs a
#: 178-state machine with a depth-3 Wp suite.  The budget counts *executed*
#: membership queries through the shared engine.
BUDGETED_ATTEMPTS = [
    ("PLRU", 16, 1, 8_000),
    ("SRRIP-HP", 4, 3, 8_000),
]


class QueryBudgetOracle:
    """Wrap an oracle with a hard cap on executed queries.

    Sits *below* the caching engine, so cache hits are free and only words
    that really execute spend budget — the same accounting as the engine's
    ``membership_queries`` statistic.  Exceeding the cap raises
    :class:`~repro.errors.BudgetExceeded` out of the learning loop, leaving
    the learner inspectable mid-run (``states_discovered``).
    """

    def __init__(self, inner, budget):
        self.inner = inner
        self.budget = budget
        self.executed = 0

    def output_query(self, word):
        if self.executed >= self.budget:
            raise BudgetExceeded(
                "query budget exhausted", spent=self.executed, budget=self.budget
            )
        self.executed += 1
        return self.inner.output_query(word)


def run_pair(policy_name, associativity, depth):
    """Learn one configuration with both learners; assert identical machines."""
    entry = {
        "policy": policy_name,
        "associativity": associativity,
        "depth": depth,
    }
    machines = {}
    for learner_name in ("lstar", "kv"):
        start = time.perf_counter()
        report = learn_simulated_policy(
            make_policy(policy_name, associativity),
            depth=depth,
            identify=False,
            learner=learner_name,
        )
        seconds = time.perf_counter() - start
        machines[learner_name] = report.machine
        result = report.learning_result
        entry[learner_name] = {
            "states": report.num_states,
            "learner_queries": result.learner_queries,
            "total_queries": result.statistics.membership_queries,
            "rounds": result.rounds,
            "seconds": round(seconds, 3),
        }
    assert machines["kv"] == machines["lstar"], (
        f"{policy_name}-{associativity}: KV learned a different machine than L*!"
    )
    entry["identical_machines"] = True
    states = entry["lstar"]["states"]
    entry["lstar_queries_per_state"] = round(entry["lstar"]["learner_queries"] / states, 2)
    entry["kv_queries_per_state"] = round(entry["kv"]["learner_queries"] / states, 2)
    return entry


def run_budgeted(policy_name, associativity, depth, budget, learner_name):
    """Learn under a hard executed-query budget; record where it cut off."""
    cache = SimulatedCacheInterface(make_policy(policy_name, associativity))
    polca = PolcaMembershipOracle(cache, kernel="auto")
    limited = QueryBudgetOracle(polca, budget)
    engine = CachedMembershipOracle(limited)
    equivalence = ConformanceEquivalenceOracle(engine, depth=depth)
    learner = make_learner(learner_name, polca.alphabet(), engine, equivalence)
    start = time.perf_counter()
    try:
        result = learner.learn()
        finished, states = True, result.num_states
    except BudgetExceeded:
        finished, states = False, learner.states_discovered
    finally:
        close = getattr(equivalence, "close", None)
        if close is not None:
            close()
    return {
        "finished": finished,
        "states_discovered": states,
        "executed_queries": limited.executed,
        "seconds": round(time.perf_counter() - start, 3),
    }


def run_benchmark(policies=None):
    """Produce the full BENCH payload (curve + head-to-heads + budgeted)."""
    payload = {
        "benchmark": "bench_kv_vs_lstar",
        "curve": [],
        "head_to_head": [],
        "budgeted_attempts": [],
    }
    for policy_name in policies if policies is not None else available_policies():
        payload["curve"].append(run_pair(policy_name, 2, 1))
    for policy_name, associativity, depth in HEAD_TO_HEAD:
        entry = run_pair(policy_name, associativity, depth)
        entry["kv_strictly_fewer"] = (
            entry["kv"]["learner_queries"] < entry["lstar"]["learner_queries"]
        )
        payload["head_to_head"].append(entry)
    for policy_name, associativity, depth, budget in BUDGETED_ATTEMPTS:
        entry = {
            "policy": policy_name,
            "associativity": associativity,
            "depth": depth,
            "budget": budget,
        }
        for learner_name in ("lstar", "kv"):
            entry[learner_name] = run_budgeted(
                policy_name, associativity, depth, budget, learner_name
            )
        payload["budgeted_attempts"].append(entry)
    return payload


def report_payload(payload):
    print(f"{'policy':>10} {'states':>6} {'L* lq':>7} {'KV lq':>7} {'L* q/st':>8} {'KV q/st':>8}")
    for entry in payload["curve"]:
        print(
            f"{entry['policy']:>10} {entry['lstar']['states']:>6} "
            f"{entry['lstar']['learner_queries']:>7} {entry['kv']['learner_queries']:>7} "
            f"{entry['lstar_queries_per_state']:>8} {entry['kv_queries_per_state']:>8}"
        )
    for entry in payload["head_to_head"]:
        print(
            f"head-to-head {entry['policy']}-{entry['associativity']} depth "
            f"{entry['depth']}: L* {entry['lstar']['learner_queries']} vs KV "
            f"{entry['kv']['learner_queries']} learner-attributed executed queries "
            f"(KV strictly fewer: {entry['kv_strictly_fewer']})"
        )
    for entry in payload["budgeted_attempts"]:
        print(
            f"budgeted {entry['policy']}-{entry['associativity']} depth "
            f"{entry['depth']} (budget {entry['budget']}): "
            f"L* finished={entry['lstar']['finished']} at "
            f"{entry['lstar']['states_discovered']} states, KV "
            f"finished={entry['kv']['finished']} at "
            f"{entry['kv']['states_discovered']} states"
        )


# --------------------------------------------------------------------- pytest


def test_curve_smoke_identical_and_no_worse():
    """Cheap registry slice: identical machines, KV learner-side no worse."""
    for policy_name in ("LRU", "CLOCK", "SRRIP-FP"):
        entry = run_pair(policy_name, 2, 1)
        assert entry["identical_machines"]
        assert entry["kv"]["learner_queries"] <= entry["lstar"]["learner_queries"]


def test_head_to_head_srrip_depth2():
    """SRRIP-HP at depth 2: KV strictly fewer learner-attributed queries."""
    entry = run_pair("SRRIP-HP", 2, 2)
    assert entry["identical_machines"]
    assert entry["kv"]["learner_queries"] < entry["lstar"]["learner_queries"]


@pytest.mark.slow
def test_head_to_head_plru8():
    """PLRU-8 (128 states): KV strictly fewer learner-attributed queries."""
    entry = run_pair("PLRU", 8, 1)
    assert entry["lstar"]["states"] == 128
    assert entry["identical_machines"]
    assert entry["kv"]["learner_queries"] < entry["lstar"]["learner_queries"]


def test_budgeted_attempt_cuts_off_lstar():
    """PLRU-16 under a query budget: L* cannot finish; mid-run states are live."""
    outcome = run_budgeted("PLRU", 16, 1, 2_000, "lstar")
    assert not outcome["finished"]
    assert 0 < outcome["states_discovered"] < 32768
    assert outcome["executed_queries"] == 2_000


# ----------------------------------------------------------------- standalone


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="write the machine-readable result to this path "
        "(the BENCH_*.json perf-trajectory format)",
    )
    arguments = parser.parse_args(sys.argv[1:] if argv is None else argv)
    payload = run_benchmark()
    report_payload(payload)
    for entry in payload["head_to_head"]:
        assert entry["kv_strictly_fewer"], (
            f"{entry['policy']}-{entry['associativity']}: KV did not issue "
            "strictly fewer learner-attributed queries than L*"
        )
    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {arguments.json}")


if __name__ == "__main__":
    main()

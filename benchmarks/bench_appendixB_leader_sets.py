"""Appendix B — leader-set detection and adaptive (set-dueling) behaviour.

* ``test_leader_set_detection`` scans a window of L3 set indexes with a
  thrashing query and checks that the detected thrash-vulnerable sets agree
  with the paper's index formula for Skylake / Kaby Lake.
* ``test_follower_adaptivity`` shows that thrashing the leader sets flips the
  follower sets to the thrash-resistant policy — the cross-set adaptivity
  the paper describes.
"""

from conftest import run_once

from repro.experiments.leader_sets import detect_leader_sets, follower_adaptivity


def test_leader_set_detection(benchmark):
    detection = run_once(benchmark, detect_leader_sets, set_indexes=range(0, 72), repetitions=4)
    assert 0 in detection.detected_leaders
    assert 33 in detection.detected_leaders
    assert detection.formula_agreement >= 0.9
    benchmark.extra_info["detected_leaders"] = list(detection.detected_leaders)
    benchmark.extra_info["formula_leaders"] = list(detection.formula_leaders)
    benchmark.extra_info["agreement"] = round(detection.formula_agreement, 3)


def test_follower_adaptivity(benchmark):
    result = run_once(benchmark, follower_adaptivity, leader_pressure_rounds=200)
    assert result.became_resistant
    benchmark.extra_info["follower_set"] = result.follower_set
    benchmark.extra_info["miss_rate_before"] = result.miss_rate_before
    benchmark.extra_info["miss_rate_after"] = result.miss_rate_after

"""Shared configuration for the benchmark suite.

Every benchmark exercises one of the paper's tables/figures in its ``fast``
profile (see DESIGN.md §4 and EXPERIMENTS.md).  The heavyweight runs are
executed exactly once per benchmark (``pedantic`` mode) because a single
learning or synthesis run already takes seconds and is fully deterministic.
"""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with a single round/iteration and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

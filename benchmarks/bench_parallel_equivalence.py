"""Process-parallel conformance testing vs. the serial batched path.

The acceptance experiment of the parallel-equivalence PR: learn policies
from their software-simulated caches through the full Polca + L* +
Wp-method pipeline twice — serially and with a process pool (``workers=2``)
— at conformance depth 2, and compare:

* the **learned machines**, which must be bit-identical (the pool changes
  where suite words execute, never what is learned);
* the **wall clock** of the two runs (the suite dominates at depth ≥ 2, so
  with more than one physical core the parallel path wins); and
* the **per-worker executed-query counts**, showing the suite really was
  spread across worker processes.

On a single-core host the parallel run cannot be faster — the benchmark
still verifies machine identity and worker accounting, and reports the
observed ratio either way.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_equivalence.py [--full]

or through pytest (the PLRU-8 run takes minutes and is marked slow)::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_equivalence.py -m slow
"""

import os
import sys
import time

import pytest

from repro.polca.pipeline import learn_simulated_policy
from repro.policies.registry import make_policy

#: (policy, associativity, conformance depth) exercised by the benchmark.
#: PLRU-8 is the paper's 128-state Table 2 machine; SRRIP-HP at
#: associativity 2 keeps a cheap smoke configuration.
CONFIGURATIONS = [
    ("SRRIP-HP", 2, 2),
    ("PLRU", 8, 2),
]

#: Added by --full: the 178-state SRRIP machine (tens of minutes serially).
FULL_CONFIGURATIONS = [
    ("SRRIP-HP", 4, 2),
]

WORKERS = 2


def run_configuration(policy_name, associativity, depth, workers=None):
    """Learn one configuration; return the report plus its wall clock."""
    policy = make_policy(policy_name, associativity)
    start = time.perf_counter()
    report = learn_simulated_policy(
        policy, depth=depth, identify=False, workers=workers
    )
    seconds = time.perf_counter() - start
    return report, seconds


def compare_paths(policy_name, associativity, depth):
    """Run serial and parallel; assert identical machines; return metrics."""
    serial, serial_seconds = run_configuration(policy_name, associativity, depth)
    parallel, parallel_seconds = run_configuration(
        policy_name, associativity, depth, workers=WORKERS
    )
    assert parallel.machine == serial.machine, (
        f"{policy_name}-{associativity}: parallel run learned a different machine!"
    )
    return {
        "policy": f"{policy_name}-{associativity}",
        "depth": depth,
        "states": serial.num_states,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / max(1e-9, parallel_seconds),
        "parallel_words": parallel.extra["parallel_words"],
        "parallel_chunks": parallel.extra["parallel_chunks"],
        "worker_query_counts": parallel.extra["worker_query_counts"],
        "worker_symbol_counts": parallel.extra["worker_symbol_counts"],
    }


def report_metrics(metrics):
    workers = ", ".join(
        f"pid {pid}: {queries} queries"
        for pid, queries in sorted(metrics["worker_query_counts"].items())
    )
    print(
        f"{metrics['policy']:>12} depth {metrics['depth']}: "
        f"{metrics['states']} states, "
        f"serial {metrics['serial_seconds']:.1f} s, "
        f"parallel({WORKERS}) {metrics['parallel_seconds']:.1f} s "
        f"(x{metrics['speedup']:.2f}), "
        f"{metrics['parallel_words']} words in {metrics['parallel_chunks']} chunks "
        f"[{workers}]"
    )


# --------------------------------------------------------------------- pytest


def test_parallel_smoke_identical_machines():
    """Cheap configuration: identical machines and real worker traffic."""
    metrics = compare_paths("SRRIP-HP", 2, 2)
    assert metrics["parallel_words"] > 0
    assert sum(metrics["worker_query_counts"].values()) > 0


@pytest.mark.slow
def test_parallel_plru8_depth2():
    """The acceptance configuration: PLRU-8 at depth 2 (minutes of compute)."""
    metrics = compare_paths("PLRU", 8, 2)
    assert metrics["states"] == 128
    assert metrics["parallel_words"] > 0
    # The suite must actually have been distributed over the pool.
    assert sum(metrics["worker_query_counts"].values()) > 0
    if (os.cpu_count() or 1) > 1:
        # With real cores available the conformance-heavy run must win.
        assert metrics["speedup"] > 1.0, (
            f"no speedup on a {os.cpu_count()}-core host: "
            f"{metrics['serial_seconds']:.1f}s serial vs "
            f"{metrics['parallel_seconds']:.1f}s parallel"
        )


# ----------------------------------------------------------------- standalone


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    configurations = list(CONFIGURATIONS)
    if "--full" in argv:
        configurations += FULL_CONFIGURATIONS
    print(
        f"== Process-parallel conformance testing ({WORKERS} workers, "
        f"{os.cpu_count()} cores) =="
    )
    for policy_name, associativity, depth in configurations:
        metrics = compare_paths(policy_name, associativity, depth)
        report_metrics(metrics)
    print("\nAll learned machines bit-identical across serial and parallel runs. OK")


if __name__ == "__main__":
    main()

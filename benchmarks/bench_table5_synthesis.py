"""Table 5 — synthesizing policy explanations at associativity 4.

Each benchmark synthesizes an explanation for one policy and checks that the
template class (Simple vs Extended, or failure for PLRU) matches the paper.
The three slowest searches (SRRIP-HP, SRRIP-FP, New2 — roughly a minute
each here, days for the paper's Sketch runs) are excluded from the fast
profile and covered by ``repro-experiments table5 --mode full``.
"""

import pytest

from conftest import run_once

from repro.errors import SynthesisError
from repro.experiments.table5 import PAPER_TABLE5_TEMPLATE
from repro.policies.registry import make_policy
from repro.synthesis.synthesizer import SynthesisConfig, explain_policy

FAST_POLICIES = ["FIFO", "LRU", "LIP", "MRU", "NEW1"]


@pytest.mark.parametrize("policy_name", FAST_POLICIES)
def test_table5_synthesis(benchmark, policy_name):
    policy = make_policy(policy_name, 4)
    result = run_once(
        benchmark, explain_policy, policy, config=SynthesisConfig(max_seconds=600)
    )
    assert result.template == PAPER_TABLE5_TEMPLATE[policy_name]
    synthesized = result.program.as_policy().to_mealy(max_states=5000).minimize()
    assert synthesized.equivalent(policy.to_mealy().minimize())
    benchmark.extra_info["template"] = result.template
    benchmark.extra_info["machine_states"] = result.machine_states
    benchmark.extra_info["candidates"] = result.miss_candidates + result.promotion_candidates


def test_table5_plru_is_not_explainable(benchmark):
    """PLRU's global tree state is outside the template, as in the paper."""

    def attempt():
        try:
            explain_policy(make_policy("PLRU", 4), config=SynthesisConfig(max_seconds=120))
        except SynthesisError as error:
            return str(error)
        raise AssertionError("PLRU unexpectedly synthesized")

    message = run_once(benchmark, attempt)
    assert "template" in message

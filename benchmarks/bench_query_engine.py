"""Query-engine and simulator-kernel benchmarks, with machine-readable output.

Three sections, each an acceptance experiment of one PR:

* **engine vs. seed** (query-engine PR) — learn the 8-way PLRU policy (the
  128-state machine of Table 2) from its white-box Mealy model through the
  full L* + Wp-method loop with the per-word dictionary cache
  (:class:`~repro.learning.oracles.DictCachedMembershipOracle`) and with the
  trie-backed :class:`~repro.learning.oracles.CachedMembershipOracle`; the
  engine must cut executed symbols by at least 2x on the same machine.

* **kernel throughput** (simkernel PR) — answer one seeded random workload
  of PLRU-8 policy words through
  :class:`~repro.polca.algorithm.PolcaMembershipOracle` under every
  execution kernel (legacy scalar stepper, tabulated pure-Python, tabulated
  numpy) and compare policy symbols/second.  Acceptance: the numpy kernel
  answers >= 10x the symbols/sec of the scalar stepper.

* **kernel learning identity** (simkernel PR) — learn PLRU-8 end-to-end
  under kernel in {scalar, python, numpy} x workers in {0, 2} and require
  every learned machine to be bit-identical (``==``) to the scalar serial
  one.

Run standalone (``--json OUT`` writes a machine-readable result so the
perf trajectory accumulates ``BENCH_*.json`` points)::

    PYTHONPATH=src python benchmarks/bench_query_engine.py --json BENCH_query_engine.json

or through pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_query_engine.py
"""

import argparse
import json
import random
import time

import pytest

try:  # pytest inserts benchmarks/ into sys.path; standalone runs don't need it
    from conftest import run_once
except ImportError:  # pragma: no cover - standalone execution
    run_once = None

from repro.core.alphabet import policy_input_alphabet
from repro.learning import (
    CachedMembershipOracle,
    ConformanceEquivalenceOracle,
    DictCachedMembershipOracle,
    MealyMachineOracle,
    PerfectEquivalenceOracle,
    learn_mealy_machine,
)
from repro.policies.registry import available_policies, make_policy
from repro.polca.algorithm import PolcaMembershipOracle
from repro.polca.interfaces import SimulatedCacheInterface
from repro.polca.pipeline import learn_simulated_policy
from repro.simkernel import numpy_available

#: The acceptance target: the paper's 8-way tree PLRU (128 states).
TENTPOLE_POLICY = ("PLRU", 8)
CACHE_BACKENDS = {
    "seed-dict": DictCachedMembershipOracle,
    "trie-engine": CachedMembershipOracle,
}


def learn_with_backend(policy_name, associativity, backend):
    """Learn a policy white-box with the given cache backend; return metrics."""
    reference = make_policy(policy_name, associativity).to_mealy(max_states=200_000).minimize()
    sul = MealyMachineOracle(reference)
    engine = CACHE_BACKENDS[backend](sul)
    equivalence = ConformanceEquivalenceOracle(engine, depth=1)
    start = time.perf_counter()
    result = learn_mealy_machine(reference.inputs, engine, equivalence)
    seconds = time.perf_counter() - start
    assert reference.equivalent(result.machine), "learned machine changed!"
    return {
        "backend": backend,
        "states": result.machine.size,
        "seconds": seconds,
        "executed_queries": sul.statistics.membership_queries,
        "executed_symbols": sul.statistics.membership_symbols,
        "cache_hits": engine.statistics.cache_hits,
        "resumed_symbols": engine.statistics.resumed_symbols,
        "machine": result.machine,
    }


def compare_backends(policy_name, associativity):
    """Run both paths and return (seed_metrics, engine_metrics, ratios)."""
    seed = learn_with_backend(policy_name, associativity, "seed-dict")
    engine = learn_with_backend(policy_name, associativity, "trie-engine")
    assert seed["machine"].equivalent(engine["machine"])
    ratios = {
        "symbols": seed["executed_symbols"] / max(1, engine["executed_symbols"]),
        "queries": seed["executed_queries"] / max(1, engine["executed_queries"]),
        "seconds": seed["seconds"] / max(1e-9, engine["seconds"]),
    }
    return seed, engine, ratios


# ------------------------------------------------------- simulator kernels

#: The kernel acceptance target (the 10x bar of the simkernel PR).
KERNEL_SPEEDUP_TARGET = 10.0


def kernel_workload(associativity, *, words=2000, min_length=16, max_length=48, seed=20200615):
    """One seeded, kernel-independent workload of random policy words.

    Word lengths follow the deep conformance-suite words that dominate the
    targets this kernel unlocks (16-way PLRU / deeper SRRIP sweeps): the
    scalar path replays the whole access chain per symbol, so its
    per-symbol cost grows with word length while the tabulated kernels
    stay O(1) per symbol.
    """
    alphabet = policy_input_alphabet(associativity)
    rng = random.Random(seed)
    return [
        tuple(rng.choice(alphabet) for _ in range(rng.randint(min_length, max_length)))
        for _ in range(words)
    ]


def kernel_throughput(policy_name, associativity, *, batch_size=1024, **workload_kwargs):
    """Answer the same workload under every kernel; return per-kernel metrics.

    Throughput is policy symbols per second as counted by Polca itself
    (``statistics.policy_symbols``), so every kernel is measured over the
    exact same executed work — dedupe and prefix subsumption included.
    """
    workload = kernel_workload(associativity, **workload_kwargs)
    kernels = ["scalar", "python"] + (["numpy"] if numpy_available() else [])
    results = {}
    for kernel in kernels:
        interface = SimulatedCacheInterface(make_policy(policy_name, associativity))
        oracle = PolcaMembershipOracle(interface, kernel=kernel)
        assert oracle.kernel_in_use == kernel
        start = time.perf_counter()
        for begin in range(0, len(workload), batch_size):
            oracle.output_query_batch(workload[begin : begin + batch_size])
        seconds = time.perf_counter() - start
        results[kernel] = {
            "seconds": seconds,
            "policy_symbols": oracle.statistics.policy_symbols,
            "cache_probes": oracle.statistics.cache_probes,
            "block_accesses": oracle.statistics.block_accesses,
            "symbols_per_sec": oracle.statistics.policy_symbols / max(1e-9, seconds),
        }
    for kernel in kernels[1:]:
        # Same workload, same accounting: only wall-clock may differ.
        for counter in ("policy_symbols", "cache_probes", "block_accesses"):
            assert results[kernel][counter] == results["scalar"][counter], counter
    return results


def kernel_learning_identity(policy_name, associativity, *, workers_settings=(0, 2)):
    """Learn the policy under every kernel x workers combination.

    Returns ``(runs, identical)`` where ``identical`` is True iff every
    learned machine is bit-identical (``==``) to the scalar serial one.
    """
    kernels = ["scalar", "python"] + (["numpy"] if numpy_available() else [])
    runs = []
    baseline = None
    identical = True
    for kernel in kernels:
        for workers in workers_settings:
            report = learn_simulated_policy(
                make_policy(policy_name, associativity),
                kernel=kernel,
                workers=workers if workers else None,
            )
            if baseline is None:
                baseline = report.machine
            identical = identical and report.machine == baseline
            runs.append(
                {
                    "kernel": kernel,
                    "kernel_in_use": report.extra["kernel"],
                    "workers": workers,
                    "states": report.num_states,
                    "seconds": report.wall_clock_seconds,
                    "policy_symbols": report.polca_statistics.policy_symbols,
                    "cache_probes": report.polca_statistics.cache_probes,
                    "machine_identical": report.machine == baseline,
                }
            )
    return runs, identical


# --------------------------------------------------------------------- pytest


def test_query_engine_speedup(benchmark):
    """The engine path must execute at least 2x fewer symbols for PLRU-8."""
    policy_name, associativity = TENTPOLE_POLICY
    seed = learn_with_backend(policy_name, associativity, "seed-dict")
    engine = run_once(benchmark, learn_with_backend, policy_name, associativity, "trie-engine")
    assert seed["machine"].equivalent(engine["machine"])
    assert engine["states"] == seed["states"] == 128
    ratio = seed["executed_symbols"] / max(1, engine["executed_symbols"])
    assert ratio >= 2.0, f"symbol reduction only {ratio:.2f}x"
    benchmark.extra_info["seed_symbols"] = seed["executed_symbols"]
    benchmark.extra_info["engine_symbols"] = engine["executed_symbols"]
    benchmark.extra_info["symbol_reduction"] = round(ratio, 2)
    benchmark.extra_info["seed_seconds"] = round(seed["seconds"], 3)


@pytest.mark.parametrize("policy_name", available_policies())
def test_registry_machines_unchanged(policy_name):
    """Both paths learn the same machine for every policy in the registry."""
    try:
        make_policy(policy_name, 2)
    except Exception:
        pytest.skip(f"{policy_name} undefined at associativity 2")
    reference = make_policy(policy_name, 2).to_mealy().minimize()
    machines = {}
    for backend, cache_cls in CACHE_BACKENDS.items():
        engine = cache_cls(MealyMachineOracle(reference))
        result = learn_mealy_machine(
            reference.inputs, engine, PerfectEquivalenceOracle(reference)
        )
        machines[backend] = result.machine
    assert machines["seed-dict"].equivalent(machines["trie-engine"])
    assert machines["seed-dict"].size == machines["trie-engine"].size == reference.size


# ----------------------------------------------------------------- standalone


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        metavar="OUT",
        default=None,
        help="write the full machine-readable results to this file "
        "(the BENCH_*.json perf-trajectory format)",
    )
    parser.add_argument(
        "--skip-engine",
        action="store_true",
        help="skip the engine-vs-seed and registry-sweep sections",
    )
    parser.add_argument(
        "--skip-learning",
        action="store_true",
        help="skip the end-to-end kernel learning-identity section (slow)",
    )
    arguments = parser.parse_args(argv)
    policy_name, associativity = TENTPOLE_POLICY
    payload = {
        "benchmark": "bench_query_engine",
        "policy": policy_name,
        "associativity": associativity,
        "numpy_available": numpy_available(),
    }

    print(f"== Simulator kernel throughput: {policy_name}-{associativity} ==")
    throughput = kernel_throughput(policy_name, associativity)
    print(f"{'kernel':>8} {'symbols':>9} {'seconds':>9} {'symbols/sec':>12}")
    for kernel, metrics in throughput.items():
        print(
            f"{kernel:>8} {metrics['policy_symbols']:>9} {metrics['seconds']:>9.3f} "
            f"{metrics['symbols_per_sec']:>12.0f}"
        )
    payload["kernel_throughput"] = throughput
    speedups = {
        kernel: metrics["symbols_per_sec"] / throughput["scalar"]["symbols_per_sec"]
        for kernel, metrics in throughput.items()
        if kernel != "scalar"
    }
    payload["kernel_speedup_over_scalar"] = speedups
    for kernel, speedup in speedups.items():
        print(f"{kernel} kernel speedup over scalar: {speedup:.1f}x")
    if "numpy" in throughput:
        assert speedups["numpy"] >= KERNEL_SPEEDUP_TARGET, (
            f"acceptance criterion: numpy kernel >= {KERNEL_SPEEDUP_TARGET:.0f}x "
            f"scalar symbols/sec, got {speedups['numpy']:.1f}x"
        )

    if not arguments.skip_learning:
        print(f"\n== Kernel learning identity: {policy_name}-{associativity} ==")
        runs, identical = kernel_learning_identity(policy_name, associativity)
        print(f"{'kernel':>8} {'workers':>8} {'states':>7} {'seconds':>9} {'identical':>10}")
        for run in runs:
            print(
                f"{run['kernel']:>8} {run['workers']:>8} {run['states']:>7} "
                f"{run['seconds']:>9.2f} {str(run['machine_identical']):>10}"
            )
        payload["kernel_learning"] = runs
        payload["kernel_learning_identical"] = identical
        assert identical, "acceptance criterion: machines bit-identical across kernels"

    if not arguments.skip_engine:
        run_engine_sections(policy_name, associativity, payload)

    if arguments.json:
        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {arguments.json}")
    print("\nOK")


def run_engine_sections(policy_name, associativity, payload):
    print(f"\n== Batched query engine vs. seed path: {policy_name}-{associativity} ==")
    seed, engine, ratios = compare_backends(policy_name, associativity)
    header = f"{'path':>12} {'states':>7} {'queries':>9} {'symbols':>10} {'seconds':>9}"
    print(header)
    for metrics in (seed, engine):
        print(
            f"{metrics['backend']:>12} {metrics['states']:>7} "
            f"{metrics['executed_queries']:>9} {metrics['executed_symbols']:>10} "
            f"{metrics['seconds']:>9.2f}"
        )
    print(
        f"reduction: {ratios['symbols']:.2f}x symbols, "
        f"{ratios['queries']:.2f}x queries, {ratios['seconds']:.2f}x wall time"
    )
    assert ratios["symbols"] >= 2.0, "acceptance criterion: >= 2x fewer executed symbols"
    payload["engine_vs_seed"] = {
        "seed": {key: value for key, value in seed.items() if key != "machine"},
        "engine": {key: value for key, value in engine.items() if key != "machine"},
        "ratios": ratios,
    }

    print("\n== Registry sweep: learned machines unchanged (associativity 2) ==")
    sweep = {}
    for name in available_policies():
        try:
            reference = make_policy(name, 2).to_mealy().minimize()
        except Exception:
            print(f"{name:>12}: skipped (undefined at associativity 2)")
            continue
        machines = {}
        for backend, cache_cls in CACHE_BACKENDS.items():
            engine_oracle = cache_cls(MealyMachineOracle(reference))
            machines[backend] = learn_mealy_machine(
                reference.inputs, engine_oracle, PerfectEquivalenceOracle(reference)
            ).machine
        unchanged = machines["seed-dict"].equivalent(machines["trie-engine"])
        assert unchanged, f"{name}: engines learned different machines"
        print(f"{name:>12}: {machines['trie-engine'].size} states, unchanged")
        sweep[name] = machines["trie-engine"].size
    payload["registry_sweep_states"] = sweep


if __name__ == "__main__":
    main()

"""The batched trie-backed query engine vs. the seed query path.

The acceptance experiment of the query-engine PR: learn the 8-way PLRU
policy (the 128-state machine of Table 2) from its white-box Mealy model
through the full L* + Wp-method loop twice —

* **seed path** — the per-word dictionary cache
  (:class:`~repro.learning.oracles.DictCachedMembershipOracle`) with the
  equivalence oracle querying the system word by word; and
* **engine path** — the trie-backed
  :class:`~repro.learning.oracles.CachedMembershipOracle` shared between
  the observation table and the conformance tester, with batching,
  prefix-subsumption and resume-from-state —

and compare executed queries, executed symbols and wall-clock time.  The
engine must cut executed symbols by at least 2x while learning the *same*
machine; a registry-wide sweep checks that every learnable policy still
yields an unchanged (trace-equivalent, same-size) automaton.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_query_engine.py

or through pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_query_engine.py
"""

import time

import pytest

try:  # pytest inserts benchmarks/ into sys.path; standalone runs don't need it
    from conftest import run_once
except ImportError:  # pragma: no cover - standalone execution
    run_once = None

from repro.learning import (
    CachedMembershipOracle,
    ConformanceEquivalenceOracle,
    DictCachedMembershipOracle,
    MealyMachineOracle,
    PerfectEquivalenceOracle,
    learn_mealy_machine,
)
from repro.policies.registry import available_policies, make_policy

#: The acceptance target: the paper's 8-way tree PLRU (128 states).
TENTPOLE_POLICY = ("PLRU", 8)
CACHE_BACKENDS = {
    "seed-dict": DictCachedMembershipOracle,
    "trie-engine": CachedMembershipOracle,
}


def learn_with_backend(policy_name, associativity, backend):
    """Learn a policy white-box with the given cache backend; return metrics."""
    reference = make_policy(policy_name, associativity).to_mealy(max_states=200_000).minimize()
    sul = MealyMachineOracle(reference)
    engine = CACHE_BACKENDS[backend](sul)
    equivalence = ConformanceEquivalenceOracle(engine, depth=1)
    start = time.perf_counter()
    result = learn_mealy_machine(reference.inputs, engine, equivalence)
    seconds = time.perf_counter() - start
    assert reference.equivalent(result.machine), "learned machine changed!"
    return {
        "backend": backend,
        "states": result.machine.size,
        "seconds": seconds,
        "executed_queries": sul.statistics.membership_queries,
        "executed_symbols": sul.statistics.membership_symbols,
        "cache_hits": engine.statistics.cache_hits,
        "resumed_symbols": engine.statistics.resumed_symbols,
        "machine": result.machine,
    }


def compare_backends(policy_name, associativity):
    """Run both paths and return (seed_metrics, engine_metrics, ratios)."""
    seed = learn_with_backend(policy_name, associativity, "seed-dict")
    engine = learn_with_backend(policy_name, associativity, "trie-engine")
    assert seed["machine"].equivalent(engine["machine"])
    ratios = {
        "symbols": seed["executed_symbols"] / max(1, engine["executed_symbols"]),
        "queries": seed["executed_queries"] / max(1, engine["executed_queries"]),
        "seconds": seed["seconds"] / max(1e-9, engine["seconds"]),
    }
    return seed, engine, ratios


# --------------------------------------------------------------------- pytest


def test_query_engine_speedup(benchmark):
    """The engine path must execute at least 2x fewer symbols for PLRU-8."""
    policy_name, associativity = TENTPOLE_POLICY
    seed = learn_with_backend(policy_name, associativity, "seed-dict")
    engine = run_once(benchmark, learn_with_backend, policy_name, associativity, "trie-engine")
    assert seed["machine"].equivalent(engine["machine"])
    assert engine["states"] == seed["states"] == 128
    ratio = seed["executed_symbols"] / max(1, engine["executed_symbols"])
    assert ratio >= 2.0, f"symbol reduction only {ratio:.2f}x"
    benchmark.extra_info["seed_symbols"] = seed["executed_symbols"]
    benchmark.extra_info["engine_symbols"] = engine["executed_symbols"]
    benchmark.extra_info["symbol_reduction"] = round(ratio, 2)
    benchmark.extra_info["seed_seconds"] = round(seed["seconds"], 3)


@pytest.mark.parametrize("policy_name", available_policies())
def test_registry_machines_unchanged(policy_name):
    """Both paths learn the same machine for every policy in the registry."""
    try:
        make_policy(policy_name, 2)
    except Exception:
        pytest.skip(f"{policy_name} undefined at associativity 2")
    reference = make_policy(policy_name, 2).to_mealy().minimize()
    machines = {}
    for backend, cache_cls in CACHE_BACKENDS.items():
        engine = cache_cls(MealyMachineOracle(reference))
        result = learn_mealy_machine(
            reference.inputs, engine, PerfectEquivalenceOracle(reference)
        )
        machines[backend] = result.machine
    assert machines["seed-dict"].equivalent(machines["trie-engine"])
    assert machines["seed-dict"].size == machines["trie-engine"].size == reference.size


# ----------------------------------------------------------------- standalone


def main():
    policy_name, associativity = TENTPOLE_POLICY
    print(f"== Batched query engine vs. seed path: {policy_name}-{associativity} ==")
    seed, engine, ratios = compare_backends(policy_name, associativity)
    header = f"{'path':>12} {'states':>7} {'queries':>9} {'symbols':>10} {'seconds':>9}"
    print(header)
    for metrics in (seed, engine):
        print(
            f"{metrics['backend']:>12} {metrics['states']:>7} "
            f"{metrics['executed_queries']:>9} {metrics['executed_symbols']:>10} "
            f"{metrics['seconds']:>9.2f}"
        )
    print(
        f"reduction: {ratios['symbols']:.2f}x symbols, "
        f"{ratios['queries']:.2f}x queries, {ratios['seconds']:.2f}x wall time"
    )
    assert ratios["symbols"] >= 2.0, "acceptance criterion: >= 2x fewer executed symbols"

    print("\n== Registry sweep: learned machines unchanged (associativity 2) ==")
    for name in available_policies():
        try:
            reference = make_policy(name, 2).to_mealy().minimize()
        except Exception:
            print(f"{name:>12}: skipped (undefined at associativity 2)")
            continue
        machines = {}
        for backend, cache_cls in CACHE_BACKENDS.items():
            engine_oracle = cache_cls(MealyMachineOracle(reference))
            machines[backend] = learn_mealy_machine(
                reference.inputs, engine_oracle, PerfectEquivalenceOracle(reference)
            ).machine
        unchanged = machines["seed-dict"].equivalent(machines["trie-engine"])
        assert unchanged, f"{name}: engines learned different machines"
        print(f"{name:>12}: {machines['trie-engine'].size} states, unchanged")
    print("\nOK")


if __name__ == "__main__":
    main()

"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` keeps working on minimal offline environments that ship
setuptools without the ``wheel`` package (where PEP 660 editable builds fail
with ``invalid command 'bdist_wheel'``).
"""

from setuptools import setup

setup()

"""Section 7.2: the cost of learning from hardware.

Two measurements are reproduced:

1. **Pipeline overhead** — the paper compares learning PLRU-8 from a
   software-simulated cache (1.46 s) with learning it through CacheQuery
   where every MBL query is already cached (2247 s, a ~1500x overhead caused
   by the orchestration around the measurements).  Here the comparison is
   between the software-simulated path and the full CacheQuery-on-simulated-
   hardware path for the same policy and associativity; the point is the
   orders-of-magnitude gap, not its exact value.

2. **MBL query latency** — the mean execution time of the eviction-probing
   query ``@ <fresh block> _?`` on L1, L2 and L3 (the paper reports 16 ms,
   11 ms and 20 ms per query on the Skylake part).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cachequery.backend import BackendConfig
from repro.cachequery.frontend import CacheQuery, CacheQueryConfig, CacheQuerySetInterface
from repro.hardware.cpu import SimulatedCPU
from repro.hardware.profiles import SKYLAKE_I5_6500, CPUProfile
from repro.hardware.timing import NoiseModel
from repro.polca.pipeline import learn_policy_from_cache, learn_simulated_policy
from repro.policies.registry import make_policy


@dataclass
class OverheadResult:
    """Comparison of the software-simulated and CacheQuery learning paths."""

    policy: str
    associativity: int
    simulated_seconds: float
    cachequery_seconds: float
    simulated_states: int
    cachequery_states: int
    #: Query-engine counters of each path (cache hits, batches, symbols...),
    #: so overhead reports can attribute the gap to orchestration rather
    #: than to redundant queries.
    simulated_cache_hits: int = 0
    cachequery_cache_hits: int = 0
    simulated_batches: int = 0
    cachequery_batches: int = 0
    cachequery_response_cache: Optional[Dict[str, int]] = None

    @property
    def overhead_factor(self) -> float:
        """How much slower the CacheQuery path is."""
        if self.simulated_seconds == 0:
            return float("inf")
        return self.cachequery_seconds / self.simulated_seconds


def simulated_vs_cachequery_overhead(
    policy_name: str = "PLRU",
    associativity: int = 4,
    *,
    profile: Optional[CPUProfile] = None,
    level: str = "L1",
    set_index: int = 0,
) -> OverheadResult:
    """Learn the same policy through both paths and compare wall-clock time.

    The default compares PLRU at associativity 4; the paper uses
    associativity 8, which the ``standard``/``full`` experiment modes enable
    (it takes tens of minutes through the simulated-hardware path, just as
    the real run took 2247 s against a fully cached backend).
    """
    policy = make_policy(policy_name, associativity)
    start = time.perf_counter()
    simulated_report = learn_simulated_policy(policy)
    simulated_seconds = time.perf_counter() - start

    base_profile = profile if profile is not None else SKYLAKE_I5_6500
    spec = base_profile.level(level)
    if spec.associativity != associativity:
        base_profile = base_profile.with_level(level, associativity=associativity)
    if spec.policy.upper() != policy_name.upper():
        base_profile = base_profile.with_level(level, policy=policy_name.upper())
    cpu = SimulatedCPU(base_profile, noise=NoiseModel(std=0.0))
    frontend = CacheQuery(
        cpu,
        CacheQueryConfig(
            level=level, set_index=set_index, backend=BackendConfig(repetitions=1)
        ),
    )
    start = time.perf_counter()
    hardware_report = learn_policy_from_cache(CacheQuerySetInterface(frontend))
    cachequery_seconds = time.perf_counter() - start
    return OverheadResult(
        policy=policy_name,
        associativity=associativity,
        simulated_seconds=simulated_seconds,
        cachequery_seconds=cachequery_seconds,
        simulated_states=simulated_report.num_states,
        cachequery_states=hardware_report.num_states,
        simulated_cache_hits=simulated_report.learning_result.statistics.cache_hits,
        cachequery_cache_hits=hardware_report.learning_result.statistics.cache_hits,
        simulated_batches=simulated_report.learning_result.statistics.batches,
        cachequery_batches=hardware_report.learning_result.statistics.batches,
        cachequery_response_cache=frontend.cache_statistics(),
    )


def mbl_query_latency(
    *,
    profile: Optional[CPUProfile] = None,
    executions: int = 25,
    repetitions: int = 3,
) -> Dict[str, float]:
    """Mean execution time (seconds) of the ``@ <block> _?`` query per cache level.

    The query is executed with the response cache disabled so every
    execution reaches the backend, matching the paper's per-query cost
    measurement.
    """
    base_profile = profile if profile is not None else SKYLAKE_I5_6500
    results: Dict[str, float] = {}
    for level_spec in base_profile.levels:
        cpu = SimulatedCPU(base_profile, noise=NoiseModel(std=base_profile.noise_std))
        if level_spec.name == "L3" and level_spec.supports_cat:
            cpu.configure_cat("L3", min(4, level_spec.associativity))
        frontend = CacheQuery(
            cpu,
            CacheQueryConfig(
                level=level_spec.name,
                set_index=0,
                use_cache=False,
                backend=BackendConfig(repetitions=repetitions),
            ),
        )
        probe_block = frontend.blocks[frontend.associativity]
        expression = f"@ {probe_block} _?"
        timings: List[float] = []
        for _ in range(executions):
            start = time.perf_counter()
            frontend.query(expression)
            timings.append(time.perf_counter() - start)
        results[level_spec.name] = sum(timings) / len(timings)
    return results

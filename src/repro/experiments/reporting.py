"""Small helpers to render experiment results as aligned text tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_seconds(seconds: float) -> str:
    """Render a duration the way the paper's tables do (``0 h 0 m 0.22 s``)."""
    hours, remainder = divmod(seconds, 3600)
    minutes, secs = divmod(remainder, 60)
    return f"{int(hours)} h {int(minutes)} m {secs:.2f} s"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` with aligned, space-padded columns."""
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    header_line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def rows_as_dicts(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> List[dict]:
    """Zip rows with headers (JSON-friendly output for the CLI)."""
    return [dict(zip(headers, row)) for row in rows]


def format_bytes(count: int) -> str:
    """Render a byte count human-readably (``1.4 KiB``, ``3.2 MiB``)."""
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(count)} B"  # pragma: no cover - unreachable


def format_store_statistics(stats: dict, hit_ratio: float = None) -> str:
    """One-line summary of a shared prefix store (size + optional hit ratio).

    ``stats`` is :meth:`repro.store.PrefixStore.statistics`; ``hit_ratio``
    is the fraction of membership lookups the run served from the cache.
    """
    location = stats.get("path") or "in-memory"
    line = (
        f"prefix store {location}: {stats.get('namespaces', 0)} namespaces, "
        f"{stats.get('entries', 0)} entries in {stats.get('nodes', 0)} shared "
        f"prefix nodes, {format_bytes(stats.get('bytes_on_disk', 0))} on disk"
    )
    if hit_ratio is not None:
        line += f"; cache hit ratio {hit_ratio * 100:.1f}%"
    return line

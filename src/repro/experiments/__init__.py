"""The experiment harness: one module per table/figure of the paper.

Every experiment comes in (at least) two sizes:

* ``fast`` — the profile used by the pytest benchmarks: the same pipelines
  and the same comparisons, but with associativities / set counts scaled
  down so a full run finishes in minutes on a laptop;
* ``standard`` / ``full`` — progressively closer to the paper's exact
  parameters (the paper's own runs took up to 36 hours per policy and
  ~4.5 days per synthesis job, so "full" is not something a benchmark suite
  should run by default).

The :mod:`repro.experiments.cli` module exposes all of them as
``repro-experiments <table> --mode fast|standard|full``.
"""

from repro.experiments.reporting import format_table
from repro.experiments.table2 import Table2Row, run_table2, table2_configurations
from repro.experiments.table3 import table3_rows
from repro.experiments.table4 import Table4Row, run_table4, table4_configurations
from repro.experiments.table5 import Table5Row, run_table5, table5_policies
from repro.experiments.overhead import (
    mbl_query_latency,
    simulated_vs_cachequery_overhead,
)
from repro.experiments.leader_sets import detect_leader_sets, leader_set_formula_check

__all__ = [
    "format_table",
    "Table2Row",
    "run_table2",
    "table2_configurations",
    "table3_rows",
    "Table4Row",
    "run_table4",
    "table4_configurations",
    "Table5Row",
    "run_table5",
    "table5_policies",
    "mbl_query_latency",
    "simulated_vs_cachequery_overhead",
    "detect_leader_sets",
    "leader_set_formula_check",
]

"""Table 5: synthesizing explanations for policies of associativity 4.

For each of the nine policies the experiment asks the synthesizer for an
explanation program that is trace-equivalent to the policy's canonical Mealy
machine (the same machine the learner recovers), first with the Simple
template and then with the Extended one — the same search order as the
paper.  PLRU is expected to fail: its control state is a global tree, not a
per-line age vector, so the template cannot express it.

The paper's absolute synthesis times (up to 4.5 days with Sketch) are not
expected to be reproduced; what must hold is the qualitative outcome
(which template explains which policy, PLRU unexplained) and the rough
ordering (Simple policies in seconds, SRRIP/New policies the slowest).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import SynthesisError
from repro.experiments.reporting import format_seconds, format_table
from repro.policies.registry import TABLE5_POLICIES, make_policy
from repro.synthesis.synthesizer import SynthesisConfig, explain_policy
from repro.synthesis.template import ExplanationProgram

#: Template the paper reports per policy (None = synthesis fails).
PAPER_TABLE5_TEMPLATE = {
    "FIFO": "Simple",
    "LRU": "Simple",
    "PLRU": None,
    "LIP": "Simple",
    "MRU": "Extended",
    "SRRIP-HP": "Extended",
    "SRRIP-FP": "Extended",
    "NEW1": "Extended",
    "NEW2": "Extended",
}

#: Policies whose synthesis takes noticeably longer (skipped in fast mode).
SLOW_POLICIES = ("SRRIP-HP", "SRRIP-FP", "NEW2")


@dataclass
class Table5Row:
    """One row of the reproduced Table 5."""

    policy: str
    states: int
    template: Optional[str]
    paper_template: Optional[str]
    seconds: float
    explanation: Optional[ExplanationProgram]
    note: str = ""

    @property
    def matches_paper(self) -> bool:
        """True when the synthesized template class agrees with the paper."""
        return self.template == self.paper_template


def table5_policies(mode: str = "fast") -> List[str]:
    """Return the policies synthesized in the given mode.

    ``fast`` skips the three slowest searches (SRRIP-HP, SRRIP-FP and New2,
    roughly a minute each); ``standard`` and ``full`` run all nine.
    """
    if mode.lower() == "fast":
        return [name for name in TABLE5_POLICIES if name not in SLOW_POLICIES]
    return list(TABLE5_POLICIES)


def run_table5(
    mode: str = "fast",
    policies: Optional[Sequence[str]] = None,
    *,
    associativity: int = 4,
    max_seconds_per_policy: Optional[float] = 900.0,
) -> List[Table5Row]:
    """Synthesize explanations for the configured policies."""
    if policies is None:
        policies = table5_policies(mode)
    rows: List[Table5Row] = []
    for name in policies:
        policy = make_policy(name, associativity)
        states = policy.to_mealy().minimize().size
        start = time.perf_counter()
        try:
            result = explain_policy(
                policy, config=SynthesisConfig(max_seconds=max_seconds_per_policy)
            )
            rows.append(
                Table5Row(
                    policy=name,
                    states=states,
                    template=result.template,
                    paper_template=PAPER_TABLE5_TEMPLATE.get(name),
                    seconds=result.seconds,
                    explanation=result.program,
                )
            )
        except SynthesisError as error:
            rows.append(
                Table5Row(
                    policy=name,
                    states=states,
                    template=None,
                    paper_template=PAPER_TABLE5_TEMPLATE.get(name),
                    seconds=time.perf_counter() - start,
                    explanation=None,
                    note=str(error),
                )
            )
    return rows


def format_table5(rows: Sequence[Table5Row]) -> str:
    """Render the reproduced Table 5."""
    headers = ("Policy", "States", "Template", "Paper", "Match", "Time", "Note")
    body = [
        (
            row.policy,
            row.states,
            row.template or "-",
            row.paper_template or "-",
            "yes" if row.matches_paper else "NO",
            format_seconds(row.seconds),
            row.note[:60],
        )
        for row in rows
    ]
    return format_table(headers, body)

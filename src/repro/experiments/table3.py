"""Table 3: the processors' cache specifications.

This table is configuration rather than measurement; the harness emits it
from the CPU profiles so the other experiments and the documentation always
agree on the geometries used.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.reporting import format_table
from repro.hardware.profiles import known_profiles


def table3_rows() -> List[Tuple[str, str, str, int, int, int]]:
    """Return (CPU, microarchitecture, level, associativity, slices, sets/slice) rows."""
    rows: List[Tuple[str, str, str, int, int, int]] = []
    for profile in known_profiles():
        for level in profile.levels:
            rows.append(
                (
                    profile.name,
                    profile.microarchitecture,
                    level.name,
                    level.associativity,
                    level.slices,
                    level.sets_per_slice,
                )
            )
    return rows


def format_table3() -> str:
    """Render the reproduced Table 3."""
    headers = ("CPU", "Microarch.", "Cache level", "Assoc.", "Slices", "Sets per slice")
    return format_table(headers, table3_rows())

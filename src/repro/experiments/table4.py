"""Table 4: learning policies from (simulated) hardware through CacheQuery.

For every CPU and cache level the experiment targets one cache set (a
leader set for the adaptive L3s), optionally reduces the L3 associativity
with CAT, and runs the full pipeline: CacheQuery backend → MBL → Polca →
learner.  It reports the effective associativity, the learned state count,
the identified policy and the reset sequence used.

The expected outcomes mirror the paper:

* every L1 (and Haswell's L2) learns **PLRU**;
* Skylake's and Kaby Lake's L2 learn **New1**;
* Skylake's and Kaby Lake's L3 leader sets learn **New2** (with CAT);
* Haswell's L3 cannot be learned (no CAT support, associativity 16).

Because the simulated-hardware path is orders of magnitude slower than the
software-simulated one (exactly as on real hardware, Section 7.2), the
``fast`` mode shrinks associativities (the policies and the pipeline stay
identical); ``standard`` uses associativity 4 everywhere CAT or the
geometry allows it; ``full`` is the paper's exact setup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cache.adaptive import AdaptiveSetSelector
from repro.cachequery.backend import BackendConfig
from repro.cachequery.frontend import CacheQuery, CacheQueryConfig, CacheQuerySetInterface
from repro.errors import ReproError
from repro.experiments.reporting import format_seconds, format_table
from repro.hardware.cpu import SimulatedCPU
from repro.hardware.profiles import CPUProfile, cpu_profile
from repro.hardware.timing import NoiseModel
from repro.polca.pipeline import learn_policy_from_cache
from repro.polca.reset import FlushRefillReset

#: Policies the paper reports per (CPU, level) — used to annotate the output.
PAPER_TABLE4_POLICY = {
    ("i7-4790", "L1"): "PLRU",
    ("i7-4790", "L2"): "PLRU",
    ("i7-4790", "L3"): None,
    ("i5-6500", "L1"): "PLRU",
    ("i5-6500", "L2"): "NEW1",
    ("i5-6500", "L3"): "NEW2",
    ("i7-8550U", "L1"): "PLRU",
    ("i7-8550U", "L2"): "NEW1",
    ("i7-8550U", "L3"): "NEW2",
}

#: Learned state counts the paper reports per (CPU, level).
PAPER_TABLE4_STATES = {
    ("i7-4790", "L1"): 128,
    ("i7-4790", "L2"): 128,
    ("i5-6500", "L1"): 128,
    ("i5-6500", "L2"): 160,
    ("i5-6500", "L3"): 175,
    ("i7-8550U", "L1"): 128,
    ("i7-8550U", "L2"): 160,
    ("i7-8550U", "L3"): 175,
}


@dataclass
class Table4Configuration:
    """One (CPU, level) learning target."""

    cpu: str
    level: str
    set_index: int
    slice_index: int = 0
    cat_ways: Optional[int] = None
    reduce_associativity: Optional[int] = None
    learnable: bool = True
    skip_reason: str = ""


@dataclass
class Table4Row:
    """One row of the reproduced Table 4."""

    cpu: str
    level: str
    effective_associativity: Optional[int]
    set_index: Optional[int]
    learned_states: Optional[int]
    identified_policy: Optional[str]
    paper_policy: Optional[str]
    paper_states: Optional[int]
    reset: str
    seconds: float
    note: str = ""
    cache_hits: int = 0
    tests_skipped: int = 0
    #: Executed membership queries of the shared query engine (like Table 2's
    #: column; worker-count-invariant since worker deltas merge on collect).
    membership_queries: int = 0
    #: Which student produced the row (``"lstar"`` / ``"kv"``).
    learner: str = "lstar"
    #: Executed membership queries per equivalence round, in round order.
    per_round_queries: tuple = ()
    #: Executed queries attributed to the learner's own probes (engine total
    #: minus conformance-suite executions).
    learner_queries: int = 0
    #: Executed symbols attributed to the learner (same attribution) — the
    #: column that exposes a shorter-discriminator win queries cannot show.
    learner_symbols: int = 0

    @property
    def matches_paper_policy(self) -> Optional[bool]:
        if self.paper_policy is None or self.identified_policy is None:
            return None
        return self.paper_policy == self.identified_policy


def _leader_set(profile: CPUProfile) -> int:
    """Return the lowest group-A leader set index of the profile's L3."""
    spec = profile.level("L3")
    if spec.adaptive is None:
        return 0
    selector: AdaptiveSetSelector = spec.adaptive.selector()
    for set_index in range(spec.sets_per_slice):
        if selector.role(set_index) == "leader_a":
            return set_index
    raise ReproError("no leader set found for the L3 adaptive policy")


def table4_configurations(mode: str = "fast") -> List[Table4Configuration]:
    """Return the learning targets for the given mode.

    ``fast`` shrinks every level to associativity 2 (CAT for the L3s,
    profile reduction for L1/L2); ``standard`` uses associativity 4;
    ``full`` uses the paper's exact geometries (hours to days of compute).
    """
    mode = mode.lower()
    if mode not in ("fast", "standard", "full"):
        raise ReproError(f"unknown Table 4 mode {mode!r}")
    reduced = {"fast": 2, "standard": 4, "full": None}[mode]
    configurations: List[Table4Configuration] = []
    for cpu_name in ("i7-4790", "i5-6500", "i7-8550U"):
        profile = cpu_profile(cpu_name)
        for level in ("L1", "L2", "L3"):
            spec = profile.level(level)
            if level == "L3":
                if not spec.supports_cat and mode != "fast":
                    # Haswell: no CAT, associativity 16, non-deterministic
                    # leader-B sets — the paper could not learn it either.
                    configurations.append(
                        Table4Configuration(
                            cpu=cpu_name,
                            level=level,
                            set_index=_leader_set(profile),
                            learnable=False,
                            skip_reason="no CAT support; associativity 16 out of reach",
                        )
                    )
                    continue
                cat_ways = reduced if reduced is not None else 4
                if not spec.supports_cat:
                    # In fast mode we still exercise the Haswell L3 pipeline by
                    # reducing the profile rather than using CAT, but flag it.
                    configurations.append(
                        Table4Configuration(
                            cpu=cpu_name,
                            level=level,
                            set_index=_leader_set(profile),
                            reduce_associativity=reduced,
                            learnable=False,
                            skip_reason="no CAT support on this part (paper: not learned)",
                        )
                    )
                    continue
                configurations.append(
                    Table4Configuration(
                        cpu=cpu_name,
                        level=level,
                        set_index=_leader_set(profile),
                        cat_ways=cat_ways,
                    )
                )
            else:
                target_assoc = (
                    None if reduced is None else min(reduced, spec.associativity)
                )
                configurations.append(
                    Table4Configuration(
                        cpu=cpu_name,
                        level=level,
                        set_index=0,
                        reduce_associativity=target_assoc,
                    )
                )
    return configurations


def run_table4_configuration(
    configuration: Table4Configuration,
    *,
    repetitions: int = 1,
    noise_std: float = 0.0,
    depth: int = 1,
    workers: Optional[int] = None,
    resume: bool = False,
    store=None,
    kernel: Optional[str] = "auto",
    learner: str = "lstar",
) -> Table4Row:
    """Run the hardware-learning pipeline for one (CPU, level) target.

    One :class:`~repro.store.PrefixStore` instance backs *both* caching
    stacks of the run — the frontend's response cache and the learning
    engine's trie — in separate namespaces; pass ``store`` (possibly
    path-backed) to share it across configurations or persist it.
    ``resume=True`` (serial only) opens measurement sessions on the
    CacheQuery frontend so only un-cached suffixes execute.
    """
    paper_policy = PAPER_TABLE4_POLICY.get((configuration.cpu, configuration.level))
    paper_states = PAPER_TABLE4_STATES.get((configuration.cpu, configuration.level))
    if not configuration.learnable:
        return Table4Row(
            cpu=configuration.cpu,
            level=configuration.level,
            effective_associativity=None,
            set_index=configuration.set_index,
            learned_states=None,
            identified_policy=None,
            paper_policy=paper_policy,
            paper_states=paper_states,
            reset="-",
            seconds=0.0,
            note=configuration.skip_reason,
        )
    profile = cpu_profile(configuration.cpu)
    note = ""
    if configuration.reduce_associativity is not None:
        spec = profile.level(configuration.level)
        if configuration.reduce_associativity < spec.associativity:
            profile = profile.with_level(
                configuration.level, associativity=configuration.reduce_associativity
            )
            note = (
                f"associativity reduced {spec.associativity} -> "
                f"{configuration.reduce_associativity} for the fast profile"
            )
    cpu = SimulatedCPU(profile, noise=NoiseModel(std=noise_std))
    if configuration.cat_ways is not None:
        spec = profile.level(configuration.level)
        if configuration.cat_ways < spec.associativity:
            cpu.configure_cat(configuration.level, configuration.cat_ways)
            note = f"CAT reduces associativity {spec.associativity} -> {configuration.cat_ways}"
    if store is None:
        from repro.store import PrefixStore

        store = PrefixStore()
    frontend = CacheQuery(
        cpu,
        CacheQueryConfig(
            level=configuration.level,
            set_index=configuration.set_index,
            slice_index=configuration.slice_index,
            backend=BackendConfig(repetitions=repetitions),
        ),
        store=store,
    )
    reset = FlushRefillReset()
    interface = CacheQuerySetInterface(frontend, reset=reset)
    # At reduced associativities several policies coincide (e.g. PLRU and LRU
    # are trace-equivalent for 2 ways), so the paper's policy is checked
    # first; the remaining registry is still consulted when it does not match.
    candidates = None
    if paper_policy is not None:
        from repro.policies.registry import available_policies

        candidates = [paper_policy] + [
            name for name in available_policies() if name != paper_policy
        ]
    start = time.perf_counter()
    # The CacheQuery interface wraps a whole (picklable) simulated CPU, so
    # pool workers receive a snapshot and replay table-fill batches and
    # suite chunks against their own copy — the hardware-path analogue of
    # rebuilding a simulator.
    # The CacheQuery interface has no policy-exact kernel hook, so
    # kernel="auto" degrades to the scalar path here; forcing a kernel is
    # rejected by Polca with a clean error.
    report = learn_policy_from_cache(
        interface,
        depth=depth,
        identification_candidates=candidates,
        workers=workers,
        resume=resume,
        store=store,
        kernel=kernel,
        learner=learner,
    )
    elapsed = time.perf_counter() - start
    store.save()  # no-op for in-memory stores
    return Table4Row(
        cpu=configuration.cpu,
        level=configuration.level,
        effective_associativity=interface.associativity,
        set_index=configuration.set_index,
        learned_states=report.num_states,
        identified_policy=report.identified_policy,
        paper_policy=paper_policy,
        paper_states=paper_states,
        reset=reset.describe(),
        seconds=elapsed,
        note=note,
        cache_hits=report.learning_result.statistics.cache_hits,
        tests_skipped=report.learning_result.statistics.tests_skipped,
        membership_queries=report.learning_result.statistics.membership_queries,
        learner=report.learning_result.learner,
        per_round_queries=tuple(report.learning_result.per_round_queries),
        learner_queries=report.learning_result.learner_queries,
        learner_symbols=report.learning_result.learner_symbols,
    )


def run_table4(
    mode: str = "fast",
    configurations: Optional[Sequence[Table4Configuration]] = None,
    *,
    repetitions: int = 1,
    noise_std: float = 0.0,
    workers: Optional[int] = None,
    resume: bool = False,
    store=None,
    cache_path: Optional[str] = None,
    kernel: Optional[str] = "auto",
    learner: str = "lstar",
) -> List[Table4Row]:
    """Run the hardware-learning experiment for every configured target.

    ``store``/``cache_path`` share one persistent
    :class:`~repro.store.PrefixStore` across every (CPU, level) target —
    frontend response caches and learning tries alike, one namespace per
    target — saved after every configuration.
    """
    if configurations is None:
        configurations = table4_configurations(mode)
    if store is None and cache_path is not None:
        from repro.store import open_store

        store = open_store(cache_path)
    return [
        run_table4_configuration(
            configuration,
            repetitions=repetitions,
            noise_std=noise_std,
            workers=workers,
            resume=resume,
            store=store,
            kernel=kernel,
            learner=learner,
        )
        for configuration in configurations
    ]


def format_table4(rows: Sequence[Table4Row]) -> str:
    """Render the reproduced Table 4."""
    headers = (
        "CPU",
        "Level",
        "Assoc.",
        "Set",
        "Learner",
        "States",
        "Policy",
        "Paper policy",
        "Reset",
        "Time",
        "Memb. queries",
        "Lrn. symbols",
        "Cache hits",
        "Note",
    )
    body = [
        (
            row.cpu,
            row.level,
            row.effective_associativity if row.effective_associativity is not None else "-",
            row.set_index if row.set_index is not None else "-",
            row.learner,
            row.learned_states if row.learned_states is not None else "-",
            row.identified_policy or "-",
            row.paper_policy or "-",
            row.reset,
            format_seconds(row.seconds),
            row.membership_queries,
            row.learner_symbols,
            row.cache_hits,
            row.note,
        )
        for row in rows
    ]
    return format_table(headers, body)

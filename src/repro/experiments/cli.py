"""Command-line entry point: regenerate any table or figure of the paper.

Examples
--------

.. code-block:: console

   repro-experiments table2 --mode fast
   repro-experiments table4 --mode standard
   repro-experiments table5 --mode full
   repro-experiments overhead
   repro-experiments leader-sets --sets 256
   repro-experiments all --mode fast
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.experiments.leader_sets import detect_leader_sets, follower_adaptivity
from repro.experiments.overhead import mbl_query_latency, simulated_vs_cachequery_overhead
from repro.experiments.reporting import format_store_statistics, format_table
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.table5 import format_table5, run_table5


def _make_store(cache_path: Optional[str], store_server: Optional[str] = None):
    if cache_path is None and store_server is None:
        return None
    from repro.store import open_store

    # A unix://*/tcp://* address connects to a running store server; a
    # directory (or trailing-separator / .shards path) opens a sharded
    # corpus — one append-log file per namespace — a plain file the classic
    # single-file store.
    return open_store(store_server if store_server is not None else cache_path)


def _print_store(store, rows) -> None:
    if store is None:
        return
    hits = sum(getattr(row, "cache_hits", 0) for row in rows)
    queries = sum(getattr(row, "membership_queries", 0) for row in rows)
    ratio = hits / (hits + queries) if hits + queries else None
    print(format_store_statistics(store.statistics(), hit_ratio=ratio))


def _print_table2(mode: str, workers: Optional[int], **kwargs) -> None:
    print("== Table 2: learning from software-simulated caches ==")
    rows = run_table2(mode, workers=workers, **kwargs)
    print(format_table2(rows))
    _print_store(kwargs.get("store"), rows)


def _print_table3() -> None:
    print("== Table 3: processors' specifications ==")
    print(format_table3())


def _print_table4(mode: str, workers: Optional[int], **kwargs) -> None:
    print("== Table 4: learning from (simulated) hardware via CacheQuery ==")
    rows = run_table4(mode, workers=workers, **kwargs)
    print(format_table4(rows))
    _print_store(kwargs.get("store"), rows)


def _print_table5(mode: str) -> None:
    print("== Table 5: synthesizing explanations (associativity 4) ==")
    rows = run_table5(mode)
    print(format_table5(rows))
    for row in rows:
        if row.explanation is not None:
            print()
            print(row.explanation.pretty())


def _print_overhead(mode: str) -> None:
    print("== Section 7.2: cost of learning from hardware ==")
    associativity = 4 if mode == "fast" else 8
    result = simulated_vs_cachequery_overhead("PLRU", associativity)
    print(
        f"PLRU assoc {associativity}: software-simulated {result.simulated_seconds:.2f} s, "
        f"CacheQuery-on-simulated-hardware {result.cachequery_seconds:.2f} s "
        f"(overhead x{result.overhead_factor:.0f})"
    )
    latencies = mbl_query_latency()
    rows = [(level, f"{seconds * 1000:.2f} ms") for level, seconds in latencies.items()]
    print(format_table(("Level", "Mean '@ X _?' query time"), rows))


def _print_leader_sets(num_sets: int) -> None:
    print("== Appendix B: leader sets and adaptive policies ==")
    detection = detect_leader_sets(set_indexes=range(num_sets))
    print(f"scanned sets      : 0..{num_sets - 1}")
    print(f"detected leaders  : {list(detection.detected_leaders)}")
    print(f"formula leaders   : {list(detection.formula_leaders)}")
    print(f"agreement         : {detection.formula_agreement * 100:.1f}%")
    adaptivity = follower_adaptivity()
    print(
        f"follower set {adaptivity.follower_set}: thrash miss rate "
        f"{adaptivity.miss_rate_before:.2f} -> {adaptivity.miss_rate_after:.2f} after "
        f"thrashing the leader sets (became resistant: {adaptivity.became_resistant})"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse arguments and run the requested experiment(s)."""
    parser = argparse.ArgumentParser(description="Regenerate the paper's tables and figures")
    parser.add_argument(
        "experiment",
        choices=["table2", "table3", "table4", "table5", "overhead", "leader-sets", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--mode",
        choices=["fast", "standard", "full"],
        default="fast",
        help="experiment size (fast: minutes; full: the paper's exact sweeps)",
    )
    parser.add_argument(
        "--sets", type=int, default=128, help="number of L3 sets scanned by leader-sets"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run the whole learning loop (table fill + conformance testing) "
        "on a pool of N worker processes "
        "(table2/table4; learned machines are identical to serial runs); "
        "0 or 1 mean explicitly serial — 0 is the convention the pipeline, "
        "tests and benchmarks use",
    )
    parser.add_argument(
        "--cache-path",
        default=None,
        metavar="FILE",
        help="persistent prefix-store file shared by the run's response caches "
        "and learning tries (table2/table4); saved after every row, so an "
        "interrupted sweep resumes from what it already measured",
    )
    parser.add_argument(
        "--store-server",
        default=None,
        metavar="ADDR",
        help="share one measurement corpus through a running store server "
        "(see python -m repro.store.server): unix:///path/to.sock or "
        "tcp://host:port; lookups are mirrored locally, saves ship deltas "
        "to the server, which owns the corpus files and their locks — N "
        "workers or remote sweeps stop serialising on per-save fcntl "
        "round-trips (incompatible with --cache-path and --store-compact)",
    )
    parser.add_argument(
        "--store-compact",
        action="store_true",
        help="after the run, fold the --cache-path store's append log back "
        "into a compact snapshot (every shard, for sharded directory "
        "corpora); saves happen incrementally either way",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="answer each query by executing only its un-cached suffix through "
        "stateful measurement sessions (table2/table4; serial runs only — "
        "resume changes which measurements execute, so it is incompatible "
        "with --workers > 1)",
    )
    parser.add_argument(
        "--kernel",
        choices=["auto", "python", "numpy", "scalar"],
        default="auto",
        help="simulator execution kernel for table2/table4: auto picks the "
        "tabulated numpy kernel when numpy is importable and the policy "
        "tabulates (falling back to the pure-Python tabulated stepper, then "
        "to the scalar path); python/numpy force a tabulated kernel; scalar "
        "forces the legacy per-symbol stepper — results are identical "
        "either way",
    )
    parser.add_argument(
        "--learner",
        choices=["lstar", "kv", "ttt"],
        default="lstar",
        help="learning algorithm for table2/table4: lstar (observation table, "
        "the paper's configuration), kv (Kearns–Vazirani classification "
        "tree — far fewer membership queries per discovered state on large "
        "policies), or ttt (TTT-refined tree: discriminator finalization + "
        "incremental sifting — fewest executed symbols and the best wall "
        "clock of the three); all learn identical minimal machines",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit raw results as JSON instead of tables"
    )
    arguments = parser.parse_args(argv)
    # 0 is the explicit-serial convention used by the pipeline, tests and
    # benchmarks everywhere else; only negative counts are nonsense.  All
    # flag validation happens here, before any store/experiment work starts.
    if arguments.workers is not None and arguments.workers < 0:
        parser.error("--workers must be >= 0 (0 means serial)")
    if arguments.resume and arguments.workers is not None and arguments.workers > 1:
        parser.error("--resume is serial-only; drop it or use --workers 0")
    if arguments.store_server is not None and arguments.cache_path is not None:
        parser.error(
            "--store-server and --cache-path are mutually exclusive: with a "
            "server the corpus lives behind the socket"
        )
    if arguments.store_compact and arguments.store_server is not None:
        parser.error(
            "--store-compact works on a local --cache-path corpus; "
            "compaction is the server's job when a corpus is served"
        )
    if arguments.store_compact and arguments.cache_path is None:
        parser.error("--store-compact needs --cache-path")
    store = _make_store(arguments.cache_path, arguments.store_server)
    learning_kwargs = {
        "store": store,
        "resume": arguments.resume,
        "kernel": arguments.kernel,
        "learner": arguments.learner,
    }

    if arguments.json:
        payload = {}
        if arguments.experiment in ("table2", "all"):
            payload["table2"] = [
                row.__dict__
                for row in run_table2(
                    arguments.mode, workers=arguments.workers, **learning_kwargs
                )
            ]
        if arguments.experiment in ("table4", "all"):
            payload["table4"] = [
                row.__dict__
                for row in run_table4(
                    arguments.mode, workers=arguments.workers, **learning_kwargs
                )
            ]
        if arguments.experiment in ("table5", "all"):
            payload["table5"] = [
                {**row.__dict__, "explanation": row.explanation.pretty() if row.explanation else None}
                for row in run_table5(arguments.mode)
            ]
        json.dump(payload, sys.stdout, indent=2, default=str)
        print()
        if store is not None and arguments.store_compact:
            store.compact()
        return 0

    if arguments.experiment in ("table2", "all"):
        _print_table2(arguments.mode, arguments.workers, **learning_kwargs)
    if arguments.experiment in ("table3", "all"):
        _print_table3()
    if arguments.experiment in ("table4", "all"):
        _print_table4(arguments.mode, arguments.workers, **learning_kwargs)
    if arguments.experiment in ("table5", "all"):
        _print_table5(arguments.mode)
    if arguments.experiment in ("overhead", "all"):
        _print_overhead(arguments.mode)
    if arguments.experiment in ("leader-sets", "all"):
        _print_leader_sets(arguments.sets)
    if store is not None and arguments.store_compact:
        store.compact()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

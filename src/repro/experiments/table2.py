"""Table 2: learning policies from software-simulated caches (Section 6).

For every (policy, associativity) pair the experiment learns the policy with
Polca from a software-simulated cache and reports the number of states of
the learned automaton plus the learning time and query counts.  The state
counts are properties of the policies and must match the paper exactly; the
times only need to show the same growth (roughly exponential in the
associativity, with FIFO as the flat exception).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.reporting import format_seconds, format_table
from repro.policies.registry import TABLE2_POLICIES, make_policy
from repro.polca.pipeline import learn_simulated_policy

#: State counts reported in the paper's Table 2, keyed by (policy, associativity).
PAPER_TABLE2_STATES: Dict[Tuple[str, int], int] = {
    ("FIFO", 2): 2,
    ("FIFO", 16): 16,
    ("LRU", 2): 2,
    ("LRU", 4): 24,
    ("LRU", 6): 720,
    ("PLRU", 2): 2,
    ("PLRU", 4): 8,
    ("PLRU", 8): 128,
    ("PLRU", 16): 32768,
    ("MRU", 2): 2,
    ("MRU", 4): 14,
    ("MRU", 6): 62,
    ("MRU", 8): 254,
    ("MRU", 10): 1022,
    ("MRU", 12): 4094,
    ("LIP", 2): 2,
    ("LIP", 4): 24,
    ("LIP", 6): 720,
    ("SRRIP-HP", 2): 12,
    ("SRRIP-HP", 4): 178,
    ("SRRIP-HP", 6): 2762,
    ("SRRIP-FP", 2): 16,
    ("SRRIP-FP", 4): 256,
    ("SRRIP-FP", 6): 4096,
}

#: The full sweep of the paper (Table 2).
PAPER_SWEEP: Dict[str, Tuple[int, ...]] = {
    "FIFO": (2, 4, 6, 8, 10, 12, 14, 16),
    "LRU": (2, 4, 6),
    "PLRU": (2, 4, 8, 16),
    "MRU": (2, 4, 6, 8, 10, 12),
    "LIP": (2, 4, 6),
    "SRRIP-HP": (2, 4, 6),
    "SRRIP-FP": (2, 4, 6),
}


@dataclass
class Table2Row:
    """One row of the reproduced Table 2."""

    policy: str
    associativity: int
    learned_states: int
    paper_states: Optional[int]
    seconds: float
    #: Executed membership queries of the shared query engine.  Since the
    #: engine sits under *both* the observation table and the conformance
    #: tester, this includes executed Wp-suite words — unlike the seed,
    #: which counted learner-side queries only, and closer to the paper's
    #: accounting of everything the system under learning answers.
    membership_queries: int
    cache_probes: int
    block_accesses: int
    identified: Optional[str]
    cache_hits: int = 0
    tests_skipped: int = 0
    #: Which student produced the row (``"lstar"`` / ``"kv"``) — kept per
    #: row so mixed-learner sweeps stay honest about who asked how much.
    learner: str = "lstar"
    #: Executed membership queries per equivalence round, in round order.
    per_round_queries: Tuple[int, ...] = ()
    #: Executed queries attributed to the learner's own probes (engine total
    #: minus conformance-suite executions) — the apples-to-apples cost when
    #: comparing learners, since suite vocabulary overlap differs per learner.
    learner_queries: int = 0
    #: Executed *symbols* attributed to the learner, same attribution as
    #: ``learner_queries``.  Queries alone cannot show a
    #: shorter-discriminator win: two learners can ask the same number of
    #: words while one pays fewer symbols per word.
    learner_symbols: int = 0

    @property
    def matches_paper(self) -> Optional[bool]:
        """True/False when the paper reports a state count, ``None`` otherwise."""
        if self.paper_states is None:
            return None
        return self.paper_states == self.learned_states


def table2_configurations(mode: str = "fast") -> List[Tuple[str, int]]:
    """Return the (policy, associativity) pairs to learn for the given mode.

    * ``fast`` — every policy at associativities 2 and 4 except the two
      SRRIP variants, which are learned at associativity 2 only (178/256
      states take minutes; the growth trend is still visible);
    * ``standard`` — adds associativity 4 for SRRIP and 6/8 for the cheaper
      policies (machines up to a few hundred states);
    * ``full`` — the paper's complete sweep (days of compute; PLRU-16 alone
      has 32768 states).
    """
    mode = mode.lower()
    if mode == "full":
        return [(policy, assoc) for policy, sweep in PAPER_SWEEP.items() for assoc in sweep]
    configurations: List[Tuple[str, int]] = []
    for policy in TABLE2_POLICIES:
        configurations.append((policy, 2))
        if policy in ("SRRIP-HP", "SRRIP-FP"):
            if mode == "standard":
                configurations.append((policy, 4))
            continue
        configurations.append((policy, 4))
        if mode == "standard":
            if policy == "FIFO":
                configurations.extend([(policy, 8), (policy, 16)])
            elif policy == "PLRU":
                configurations.append((policy, 8))
            elif policy == "MRU":
                configurations.extend([(policy, 6), (policy, 8)])
            elif policy in ("LRU", "LIP"):
                configurations.append((policy, 6))
    return configurations


def run_table2(
    mode: str = "fast",
    configurations: Optional[Sequence[Tuple[str, int]]] = None,
    *,
    depth: int = 1,
    workers: Optional[int] = None,
    resume: bool = False,
    store=None,
    cache_path: Optional[str] = None,
    kernel: Optional[str] = "auto",
    learner: str = "lstar",
) -> List[Table2Row]:
    """Learn every configured policy from its software-simulated cache.

    ``workers=N`` (N > 1) runs each configuration's whole learning run —
    observation-table fill *and* conformance testing — on one shared
    process pool; the learned machines are bit-identical to serial runs
    (see :mod:`repro.learning.parallel`).  ``resume=True`` (serial only)
    answers each query by executing only its un-cached suffix through
    measurement sessions.  ``store``/``cache_path`` place every
    configuration's query engine in one shared
    :class:`~repro.store.PrefixStore` (one namespace per policy target);
    with a path the store is saved after every row, so an interrupted sweep
    resumes from what it already measured.  ``kernel`` selects the simulator
    execution strategy (``auto``/``python``/``numpy``/``scalar``); answers,
    machines and probe columns are identical across kernels.  ``learner``
    selects the student (``"lstar"`` or ``"kv"``); both learn identical
    minimal machines, so state and match columns are learner-invariant.
    """
    if configurations is None:
        configurations = table2_configurations(mode)
    if store is None and cache_path is not None:
        from repro.store import open_store

        store = open_store(cache_path)
    rows: List[Table2Row] = []
    for policy_name, associativity in configurations:
        policy = make_policy(policy_name, associativity)
        start = time.perf_counter()
        report = learn_simulated_policy(
            policy,
            depth=depth,
            workers=workers,
            resume=resume,
            store=store,
            kernel=kernel,
            learner=learner,
        )
        elapsed = time.perf_counter() - start
        if store is not None:
            store.save()
        rows.append(
            Table2Row(
                policy=policy_name,
                associativity=associativity,
                learned_states=report.num_states,
                paper_states=PAPER_TABLE2_STATES.get((policy_name, associativity)),
                seconds=elapsed,
                membership_queries=report.learning_result.statistics.membership_queries,
                cache_probes=report.polca_statistics.cache_probes,
                block_accesses=report.polca_statistics.block_accesses,
                identified=report.identified_policy,
                cache_hits=report.learning_result.statistics.cache_hits,
                tests_skipped=report.learning_result.statistics.tests_skipped,
                learner=report.learning_result.learner,
                per_round_queries=tuple(report.learning_result.per_round_queries),
                learner_queries=report.learning_result.learner_queries,
                learner_symbols=report.learning_result.learner_symbols,
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    """Render the reproduced Table 2."""
    headers = (
        "Policy",
        "Assoc.",
        "Learner",
        "# States",
        "Paper",
        "Match",
        "Time",
        "Memb. queries",
        "Lrn. symbols",
        "Cache probes",
        "Cache hits",
        "Skipped",
    )
    body = [
        (
            row.policy,
            row.associativity,
            row.learner,
            row.learned_states,
            row.paper_states if row.paper_states is not None else "-",
            {True: "yes", False: "NO", None: "-"}[row.matches_paper],
            format_seconds(row.seconds),
            row.membership_queries,
            row.learner_symbols,
            row.cache_probes,
            row.cache_hits,
            row.tests_skipped,
        )
        for row in rows
    ]
    return format_table(headers, body)

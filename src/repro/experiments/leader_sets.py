"""Appendix B: detecting leader sets and adaptive behaviour on the L3.

Three observations are reproduced on the simulated Skylake/Kaby Lake L3:

1. **Thrashing detection** — a thrashing access pattern (working set one
   block larger than the associativity) produces a high miss rate on the
   fixed, thrash-vulnerable leader sets (the New2 sets) and a lower miss
   rate on the thrash-resistant leader group and on followers that have
   adapted.  Classifying sets by probe miss rate recovers the leader group.

2. **Leader-set formula** — the detected group-A sets satisfy the index
   formula ``(((set & 0x3e0) >> 5) ^ (set & 0x1f)) == 0 and (set & 0x2) == 0``
   reported in the paper.

3. **Cross-set adaptivity** — heavily thrashing the leader sets drives the
   global PSEL counter so that *follower* sets become thrash-resistant,
   which is the paper's observation that leaders influence followers across
   the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.adaptive import AdaptiveSetSelector
from repro.cachequery.backend import BackendConfig
from repro.cachequery.frontend import CacheQuery, CacheQueryConfig
from repro.hardware.cpu import SimulatedCPU
from repro.hardware.profiles import SKYLAKE_I5_6500, CPUProfile
from repro.hardware.timing import NoiseModel


@dataclass
class LeaderSetDetection:
    """Outcome of the thrashing scan over a range of set indexes."""

    scanned_sets: Tuple[int, ...]
    miss_rates: Dict[int, float]
    detected_leaders: Tuple[int, ...]
    formula_leaders: Tuple[int, ...]

    @property
    def formula_agreement(self) -> float:
        """Fraction of scanned sets whose classification matches the formula."""
        if not self.scanned_sets:
            return 1.0
        detected = set(self.detected_leaders)
        formula = set(self.formula_leaders)
        agree = sum(
            1 for s in self.scanned_sets if (s in detected) == (s in formula)
        )
        return agree / len(self.scanned_sets)


def _thrash_expression(associativity: int, blocks: Sequence[str], rounds: int = 4) -> str:
    """A thrashing pattern: cycle a working set of associativity + 1 blocks, then probe."""
    working_set = " ".join(blocks[: associativity + 1])
    probe = blocks[0]
    return f"({working_set}){rounds} {probe}?"


def thrash_miss_rate(
    frontend: CacheQuery,
    *,
    repetitions: int = 8,
    rounds: int = 4,
) -> float:
    """Return the probe miss rate of the thrashing pattern on the current set."""
    expression = _thrash_expression(frontend.associativity, frontend.blocks, rounds)
    misses = 0
    for _ in range(repetitions):
        outcome = frontend.query(expression)
        if outcome and outcome[0] and outcome[0][0] == "Miss":
            misses += 1
    return misses / repetitions


def detect_leader_sets(
    *,
    profile: Optional[CPUProfile] = None,
    set_indexes: Optional[Sequence[int]] = None,
    cat_ways: int = 4,
    miss_rate_threshold: float = 0.6,
    repetitions: int = 6,
) -> LeaderSetDetection:
    """Scan L3 sets with a thrashing query and classify them as leaders/followers."""
    base_profile = profile if profile is not None else SKYLAKE_I5_6500
    spec = base_profile.level("L3")
    selector = spec.adaptive.selector() if spec.adaptive is not None else AdaptiveSetSelector()
    if set_indexes is None:
        set_indexes = range(0, 128)
    set_indexes = tuple(set_indexes)

    cpu = SimulatedCPU(base_profile, noise=NoiseModel(std=0.0))
    if spec.supports_cat and cat_ways < spec.associativity:
        cpu.configure_cat("L3", cat_ways)
    frontend = CacheQuery(
        cpu,
        CacheQueryConfig(
            level="L3", set_index=set_indexes[0], use_cache=False,
            backend=BackendConfig(repetitions=1),
        ),
    )
    miss_rates: Dict[int, float] = {}
    for set_index in set_indexes:
        frontend.configure(set_index=set_index)
        miss_rates[set_index] = thrash_miss_rate(frontend, repetitions=repetitions)
    detected = tuple(
        set_index
        for set_index in set_indexes
        if miss_rates[set_index] >= miss_rate_threshold
    )
    formula = tuple(
        set_index for set_index in set_indexes if selector.role(set_index) == "leader_a"
    )
    return LeaderSetDetection(
        scanned_sets=set_indexes,
        miss_rates=miss_rates,
        detected_leaders=detected,
        formula_leaders=formula,
    )


def leader_set_formula_check(total_sets: int = 1024) -> List[int]:
    """Return the group-A leader sets predicted by the Skylake/Kaby Lake formula."""
    selector = AdaptiveSetSelector(scheme="skylake")
    return selector.leader_a_sets(total_sets)


@dataclass
class AdaptivityResult:
    """Follower behaviour before and after thrashing the leader sets."""

    follower_set: int
    miss_rate_before: float
    miss_rate_after: float

    @property
    def became_resistant(self) -> bool:
        """True when thrashing the leaders made the follower thrash-resistant."""
        return self.miss_rate_after < self.miss_rate_before


def follower_adaptivity(
    *,
    profile: Optional[CPUProfile] = None,
    cat_ways: int = 4,
    leader_pressure_rounds: int = 400,
) -> AdaptivityResult:
    """Show that thrashing the leader sets flips the follower sets' behaviour."""
    base_profile = profile if profile is not None else SKYLAKE_I5_6500
    spec = base_profile.level("L3")
    selector = spec.adaptive.selector()
    leader_sets = [s for s in range(spec.sets_per_slice) if selector.role(s) == "leader_a"][:4]
    follower_set = next(
        s for s in range(spec.sets_per_slice) if selector.role(s) == "follower"
    )

    cpu = SimulatedCPU(base_profile, noise=NoiseModel(std=0.0))
    if spec.supports_cat and cat_ways < spec.associativity:
        cpu.configure_cat("L3", cat_ways)
    frontend = CacheQuery(
        cpu,
        CacheQueryConfig(
            level="L3", set_index=follower_set, use_cache=False,
            backend=BackendConfig(repetitions=1),
        ),
    )
    before = thrash_miss_rate(frontend, repetitions=4)

    # Thrash the leader sets so group A accumulates misses and PSEL flips the
    # followers towards the thrash-resistant leader-B policy.
    thrash = _thrash_expression(frontend.associativity, frontend.blocks, rounds=2)
    for _ in range(leader_pressure_rounds // max(1, len(leader_sets))):
        for leader in leader_sets:
            frontend.configure(set_index=leader)
            frontend.query(thrash)
    frontend.configure(set_index=follower_set)
    after = thrash_miss_rate(frontend, repetitions=4)
    return AdaptivityResult(
        follower_set=follower_set, miss_rate_before=before, miss_rate_after=after
    )

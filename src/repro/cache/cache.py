"""A full set-associative cache (one level, possibly sliced and adaptive).

:class:`SetAssociativeCache` owns one :class:`~repro.cache.cacheset.CacheSet`
per (slice, set index) pair, created lazily.  It adds the features of a real
cache level on top of the single-set model:

* physical-address decomposition through an :class:`~repro.cache.addressing.AddressMapper`;
* CAT way masking (the effective associativity seen by the measuring process);
* the set-dueling adaptive mechanism of Appendix B: leader sets run fixed
  policies, follower sets imitate the currently winning leader group, which
  makes them look non-deterministic to a per-set learner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.cache.addressing import AddressMapper
from repro.cache.adaptive import AdaptiveSetSelector, SetDuelingController
from repro.cache.cacheset import HIT, MISS, CacheSet
from repro.cache.cat import CATConfig
from repro.errors import CacheError
from repro.policies.base import ReplacementPolicy
from repro.policies.registry import make_policy

PolicyFactory = Callable[[int], ReplacementPolicy]


@dataclass(frozen=True)
class _NamedPolicyFactory:
    """A picklable ``associativity -> policy`` factory resolving a registry name.

    A plain lambda would work just as well locally, but cache levels (and
    everything holding them, up to a whole simulated CPU) must survive
    pickling so the parallel conformance tester can rebuild them inside
    pool workers.
    """

    policy_name: str

    def __call__(self, associativity: int) -> ReplacementPolicy:
        return make_policy(self.policy_name, associativity)


def _factory_from_name(name: str) -> PolicyFactory:
    return _NamedPolicyFactory(name)


@dataclass
class AdaptiveConfig:
    """Configuration of the set-dueling mechanism for one cache level."""

    selector: AdaptiveSetSelector
    leader_a_policy: str
    leader_b_policy: str
    controller: SetDuelingController = field(default_factory=SetDuelingController)


class _DuelingCacheSet:
    """A follower set that imitates whichever leader group is currently winning.

    Both candidate policies are stepped on every access so their control
    states stay meaningful; the victim on a miss is taken from the policy the
    PSEL controller currently favours.  Because the controller is global
    state shared by all sets, repeated identical probes of a follower set can
    produce different traces — the "non-deterministic behaviour" the paper
    observes on follower (and saturated leader-B) sets.
    """

    def __init__(
        self,
        policy_a: ReplacementPolicy,
        policy_b: ReplacementPolicy,
        controller: SetDuelingController,
    ) -> None:
        if policy_a.associativity != policy_b.associativity:
            raise CacheError("dueling policies must share one associativity")
        self.associativity = policy_a.associativity
        self._policy_a = policy_a
        self._policy_b = policy_b
        self._state_a = policy_a.initial_state()
        self._state_b = policy_b.initial_state()
        self._controller = controller
        self.content: list = [None] * self.associativity

    def line_of(self, block) -> Optional[int]:
        for index, stored in enumerate(self.content):
            if stored == block:
                return index
        return None

    def access(self, block) -> str:
        line = self.line_of(block)
        if line is not None:
            self._state_a = self._policy_a.on_hit(self._state_a, line)
            self._state_b = self._policy_b.on_hit(self._state_b, line)
            return HIT
        self._state_a, victim_a = self._policy_a.on_miss(self._state_a)
        self._state_b, victim_b = self._policy_b.on_miss(self._state_b)
        winner = self._controller.follower_choice()
        victim = victim_a if winner == "leader_a" else victim_b
        self.content[victim] = block
        return MISS

    def flush(self, block) -> bool:
        line = self.line_of(block)
        if line is None:
            return False
        self.content[line] = None
        if all(stored is None for stored in self.content):
            self._state_a = self._policy_a.initial_state()
            self._state_b = self._policy_b.initial_state()
        return True

    def flush_all(self) -> None:
        self.content = [None] * self.associativity
        self._state_a = self._policy_a.initial_state()
        self._state_b = self._policy_b.initial_state()


class SetAssociativeCache:
    """One cache level: lazily materialised sets behind an address mapper."""

    def __init__(
        self,
        name: str,
        associativity: int,
        mapper: AddressMapper,
        policy: str | PolicyFactory,
        *,
        adaptive: Optional[AdaptiveConfig] = None,
        cat: Optional[CATConfig] = None,
    ) -> None:
        self.name = name
        self.nominal_associativity = associativity
        self.mapper = mapper
        self._policy_factory = (
            _factory_from_name(policy) if isinstance(policy, str) else policy
        )
        self.adaptive = adaptive
        self.cat = cat or CATConfig(supported=True, way_mask=0)
        self._sets: Dict[Tuple[int, int], object] = {}
        self.hits = 0
        self.misses = 0

    # --------------------------------------------------------------- geometry

    @property
    def effective_associativity(self) -> int:
        """Associativity after applying the CAT way mask."""
        return self.cat.effective_associativity(self.nominal_associativity)

    def configure_cat(self, cat: CATConfig) -> None:
        """Install a new CAT configuration; drops all cached set state."""
        cat.effective_associativity(self.nominal_associativity)  # validate
        self.cat = cat
        self._sets.clear()

    def set_role(self, set_index: int, slice_index: int = 0) -> str:
        """Return ``leader_a`` / ``leader_b`` / ``follower`` / ``fixed`` for a set."""
        if self.adaptive is None:
            return "fixed"
        return self.adaptive.selector.role(set_index, slice_index)

    def _build_set(self, slice_index: int, set_index: int):
        associativity = self.effective_associativity
        if self.adaptive is None:
            return CacheSet(self._policy_factory(associativity))
        role = self.adaptive.selector.role(set_index, slice_index)
        if role == "leader_a":
            return CacheSet(make_policy(self.adaptive.leader_a_policy, associativity))
        if role == "leader_b":
            return CacheSet(make_policy(self.adaptive.leader_b_policy, associativity))
        return _DuelingCacheSet(
            make_policy(self.adaptive.leader_a_policy, associativity),
            make_policy(self.adaptive.leader_b_policy, associativity),
            self.adaptive.controller,
        )

    def set_for(self, slice_index: int, set_index: int):
        """Return (creating if needed) the storage object for one cache set."""
        key = (slice_index, set_index)
        if key not in self._sets:
            self._sets[key] = self._build_set(slice_index, set_index)
        return self._sets[key]

    # ---------------------------------------------------------------- actions

    def access(self, physical_address: int) -> str:
        """Access the block containing ``physical_address``; return Hit/Miss."""
        slice_index, set_index = self.mapper.locate(physical_address)
        block = self.mapper.block_id(physical_address)
        target = self.set_for(slice_index, set_index)
        result = target.access(block)
        if result == HIT:
            self.hits += 1
        else:
            self.misses += 1
            if self.adaptive is not None:
                role = self.adaptive.selector.role(set_index, slice_index)
                self.adaptive.controller.record_leader_miss(role)
        return result

    def contains(self, physical_address: int) -> bool:
        """Return whether the block containing ``physical_address`` is cached."""
        slice_index, set_index = self.mapper.locate(physical_address)
        block = self.mapper.block_id(physical_address)
        return self.set_for(slice_index, set_index).line_of(block) is not None

    def flush(self, physical_address: int) -> bool:
        """Invalidate the block containing ``physical_address`` (``clflush``)."""
        slice_index, set_index = self.mapper.locate(physical_address)
        block = self.mapper.block_id(physical_address)
        return self.set_for(slice_index, set_index).flush(block)

    def flush_all(self) -> None:
        """Invalidate the entire level (``wbinvd``)."""
        for cache_set in self._sets.values():
            cache_set.flush_all()
        if self.adaptive is not None:
            self.adaptive.controller.reset()

    def reset_statistics(self) -> None:
        """Zero the hit/miss counters."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SetAssociativeCache({self.name}, ways={self.nominal_associativity}, "
            f"sets={self.mapper.sets_per_slice}x{self.mapper.slices})"
        )

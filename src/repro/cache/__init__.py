"""Cache substrates: single sets, whole caches, and multi-level hierarchies.

``repro.cache.cacheset`` implements the cache model of Definition 2.3 (a
labelled transition system induced by a replacement policy) and is the
substrate behind both the software-simulated caches of Section 6 and the
per-set storage of the simulated CPUs of Section 7.

The remaining modules provide the pieces a real memory hierarchy adds on
top of a single set: set indexing and slice hashing
(:mod:`repro.cache.addressing`), full set-associative caches
(:mod:`repro.cache.cache`), inclusive multi-level hierarchies
(:mod:`repro.cache.hierarchy`), Intel CAT way masking (:mod:`repro.cache.cat`)
and the set-dueling adaptive policies of Appendix B
(:mod:`repro.cache.adaptive`).
"""

from repro.cache.cacheset import HIT, MISS, CacheSet, SimulatedCacheSet
from repro.cache.addressing import AddressMapper, slice_hash
from repro.cache.cache import SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy, CacheLevelConfig
from repro.cache.adaptive import AdaptiveSetSelector, SetDuelingController
from repro.cache.cat import CATConfig

__all__ = [
    "HIT",
    "MISS",
    "CacheSet",
    "SimulatedCacheSet",
    "AddressMapper",
    "slice_hash",
    "SetAssociativeCache",
    "CacheHierarchy",
    "CacheLevelConfig",
    "AdaptiveSetSelector",
    "SetDuelingController",
    "CATConfig",
]

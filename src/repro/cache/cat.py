"""Intel Cache Allocation Technology (CAT) way masking.

CAT lets software restrict which ways of the last-level cache a class of
service may allocate into.  The paper uses it to *virtually reduce* the L3
associativity from 12/16 to 4 ways so that learning stays tractable
(Section 7.1); the Haswell part does not support CAT, which is one of the
reasons its L3 policy could not be learned.

The simulation models the observable effect: with a mask of ``k`` ways the
querying process only ever allocates into (and therefore only observes) a
``k``-way set, so the per-set storage behaves exactly like a ``k``-way cache
set running the same policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CacheError


@dataclass(frozen=True)
class CATConfig:
    """A CAT class-of-service configuration for one cache level.

    Parameters
    ----------
    supported:
        Whether the CPU supports CAT on this level at all (False for the
        Haswell i7-4790 L3).
    way_mask:
        Bit mask of the ways the class of service may allocate into.  ``0``
        means "no mask configured" (full associativity).
    """

    supported: bool = True
    way_mask: int = 0

    def effective_associativity(self, associativity: int) -> int:
        """Return the associativity visible through this CAT configuration."""
        if self.way_mask == 0:
            return associativity
        if not self.supported:
            raise CacheError("CAT way mask configured on a CPU without CAT support")
        ways = bin(self.way_mask & ((1 << associativity) - 1)).count("1")
        if ways == 0:
            raise CacheError(f"CAT way mask {self.way_mask:#x} selects no way")
        return ways

    @classmethod
    def reduce_to(cls, ways: int, *, supported: bool = True) -> "CATConfig":
        """Return a configuration restricting allocation to the lowest ``ways`` ways."""
        if ways < 1:
            raise CacheError(f"CAT mask must keep at least one way, got {ways}")
        return cls(supported=supported, way_mask=(1 << ways) - 1)

"""A single cache set driven by a replacement policy (Definition 2.3).

Two classes live here:

* :class:`CacheSet` — the raw labelled transition system: an ``n``-tuple of
  stored blocks plus a policy control state, advanced by the Hit/Miss rules
  of Figure 2.  Lines may be *invalid* (hold no block), which models the
  state after a ``clflush``; a miss always asks the policy for the victim
  line, exactly as in the paper's model.

* :class:`SimulatedCacheSet` — the "software-simulated cache" of Section 6:
  a :class:`CacheSet` wrapped with the reset-and-probe interface that Polca
  and CacheQuery expect (:meth:`probe` runs a whole block sequence from the
  initial state and returns the hit/miss trace).
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.trace import Trace
from repro.errors import CacheError
from repro.policies.base import ReplacementPolicy

Block = Hashable

#: Cache outputs (Table 1).
HIT = "Hit"
MISS = "Miss"


class CacheSet:
    """An ``n``-way cache set: stored blocks plus a policy control state."""

    def __init__(
        self,
        policy: ReplacementPolicy,
        initial_content: Optional[Sequence[Block]] = None,
    ) -> None:
        self.policy = policy
        self.associativity = policy.associativity
        if initial_content is not None:
            content = list(initial_content)
            if len(content) != self.associativity:
                raise CacheError(
                    f"initial content must have {self.associativity} blocks, "
                    f"got {len(content)}"
                )
            valid = [block for block in content if block is not None]
            if len(set(valid)) != len(valid):
                raise CacheError("initial content must not contain repeated blocks")
            self._initial_content: List[Optional[Block]] = content
        else:
            self._initial_content = [None] * self.associativity
        self.content: List[Optional[Block]] = list(self._initial_content)
        self.policy_state = policy.initial_state()

    # ----------------------------------------------------------------- state

    def reset(self) -> None:
        """Return the set to its initial content and initial policy state."""
        self.content = list(self._initial_content)
        self.policy_state = self.policy.initial_state()

    def snapshot(self) -> Tuple[Tuple[Optional[Block], ...], Hashable]:
        """Return an immutable snapshot ``(content, policy_state)``."""
        return tuple(self.content), self.policy_state

    def restore(self, snapshot: Tuple[Tuple[Optional[Block], ...], Hashable]) -> None:
        """Restore a snapshot previously produced by :meth:`snapshot`."""
        content, policy_state = snapshot
        if len(content) != self.associativity:
            raise CacheError("snapshot associativity mismatch")
        self.content = list(content)
        self.policy_state = policy_state

    @property
    def valid_blocks(self) -> Tuple[Block, ...]:
        """Blocks currently stored, in line order, skipping invalid lines."""
        return tuple(block for block in self.content if block is not None)

    def line_of(self, block: Block) -> Optional[int]:
        """Return the line index storing ``block``, or ``None``."""
        for index, stored in enumerate(self.content):
            if stored == block:
                return index
        return None

    def contains(self, block: Block) -> bool:
        """Return ``True`` when ``block`` is currently stored."""
        return self.line_of(block) is not None

    # --------------------------------------------------------------- actions

    def access(self, block: Block) -> str:
        """Access ``block``; return :data:`HIT` or :data:`MISS`.

        Implements the Hit and Miss rules of Figure 2: a hit updates only the
        policy state (``Ln(i)``); a miss asks the policy for a victim line
        (``Evct``), replaces its content and updates the policy state.
        """
        result, _ = self.access_returning_victim(block)
        return result

    def access_returning_victim(self, block: Block) -> Tuple[str, Optional[int]]:
        """Like :meth:`access` but also return the filled/evicted line (``None`` on a hit)."""
        if block is None:
            raise CacheError("cannot access the invalid block None")
        line = self.line_of(block)
        if line is not None:
            self.policy_state = self.policy.on_hit(self.policy_state, line)
            return HIT, None
        invalid = self._first_invalid_line()
        if invalid is not None:
            # Real caches allocate invalid ways before evicting valid blocks;
            # the policy is informed through its insertion (fill) rule.
            self.content[invalid] = block
            self.policy_state = self.policy.on_fill(self.policy_state, invalid)
            return MISS, invalid
        self.policy_state, victim = self.policy.on_miss(self.policy_state)
        self.content[victim] = block
        return MISS, victim

    def _first_invalid_line(self) -> Optional[int]:
        for index, stored in enumerate(self.content):
            if stored is None:
                return index
        return None

    def flush(self, block: Block) -> bool:
        """Invalidate ``block`` (``clflush``); return whether it was present.

        When the flush empties the whole set, the policy state is reset to
        its initial value: this models the observation that on the simulated
        CPUs a full invalidation followed by a refill (*Flush+Refill*) is a
        valid reset sequence (Section 7.1).
        """
        line = self.line_of(block)
        if line is None:
            return False
        self.content[line] = None
        if all(stored is None for stored in self.content):
            self.policy_state = self.policy.initial_state()
        return True

    def flush_all(self) -> None:
        """Invalidate every line and reset the policy state (``wbinvd``-like)."""
        self.content = [None] * self.associativity
        self.policy_state = self.policy.initial_state()

    # ---------------------------------------------------------------- traces

    def run(self, blocks: Iterable[Block]) -> Trace:
        """Access ``blocks`` in order (without resetting) and return the trace."""
        steps = [(block, self.access(block)) for block in blocks]
        return Trace(steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CacheSet(policy={self.policy.name}, content={self.content!r}, "
            f"state={self.policy_state!r})"
        )


class SimulatedCacheSet:
    """The software-simulated cache of Section 6: reset-and-probe semantics.

    Every :meth:`probe` starts from the same initial state (a full cache with
    blocks ``cc0`` if provided, otherwise an empty set), which is exactly the
    cache-semantics access ``[[C]]`` that Polca's ``probeCache`` helper needs.
    The class also counts probes and individual block accesses so experiments
    can report query complexity.
    """

    def __init__(
        self,
        policy: ReplacementPolicy,
        initial_content: Optional[Sequence[Block]] = None,
    ) -> None:
        self._set = CacheSet(policy, initial_content)
        self.policy = policy
        self.associativity = policy.associativity
        self.probe_count = 0
        self.access_count = 0
        self.sessions_opened = 0

    def probe(self, blocks: Sequence[Block]) -> Tuple[str, ...]:
        """Reset the cache, access ``blocks`` in order, return all hit/miss outputs."""
        self._set.reset()
        self.probe_count += 1
        self.access_count += len(blocks)
        return tuple(self._set.access(block) for block in blocks)

    def begin_session(self) -> None:
        """Reset the cache and leave it live for incremental :meth:`session_access`.

        This is the measurement-session counterpart of :meth:`probe`: the
        state persists between calls, so a consumer following one access
        chain pays each access once instead of replaying the chain per
        probe.  Interleaving :meth:`probe` calls invalidates the session
        state (a probe resets the set), exactly as on hardware — the caller
        must begin a new session afterwards.
        """
        self._set.reset()
        self.sessions_opened += 1

    def session_access(self, blocks: Sequence[Block]) -> Tuple[str, ...]:
        """Access ``blocks`` from the current (session) state; return the outcomes."""
        self.access_count += len(blocks)
        return tuple(self._set.access(block) for block in blocks)

    def probe_last(self, blocks: Sequence[Block]) -> str:
        """Reset, access ``blocks``, return only the last output (paper's ``probeCache``)."""
        outputs = self.probe(blocks)
        if not outputs:
            raise CacheError("probe_last requires at least one block")
        return outputs[-1]

    def count_kernel_probes(self, probes: int, accesses: int) -> None:
        """Account for probes executed on this cache's behalf by a kernel.

        The tabulated execution kernels (:mod:`repro.simkernel`) answer
        policy words without touching this object, but the probe/access
        counters must stay *execution-strategy-independent*: a learning run
        reports the same measurement cost whether its words were stepped
        here one block at a time or batched through a transition table.
        Kernel consumers therefore fold the analytically-derived cost of
        the probes they elided into these counters.
        """
        if probes < 0 or accesses < 0:
            raise CacheError(
                f"kernel probe accounting must be non-negative, got "
                f"probes={probes}, accesses={accesses}"
            )
        self.probe_count += probes
        self.access_count += accesses

    def initial_content(self) -> Tuple[Optional[Block], ...]:
        """Return the content the cache holds right after a reset."""
        self._set.reset()
        return tuple(self._set.content)

    def reset_statistics(self) -> None:
        """Zero the probe/access/session counters."""
        self.probe_count = 0
        self.access_count = 0
        self.sessions_opened = 0

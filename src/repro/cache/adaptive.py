"""Set-dueling adaptive replacement (Appendix B).

Modern Intel L3 caches do not run a single fixed policy: a small group of
*leader* sets runs policy A, another group runs policy B, and a saturating
counter (PSEL) tracks which group misses less; all remaining *follower* sets
dynamically imitate the winning policy (Qureshi et al., "Adaptive Insertion
Policies", ISCA'07).  From the point of view of a learning tool this makes
follower sets look non-deterministic — which is why the paper only learns
the policies of the leader sets.

:class:`AdaptiveSetSelector` encodes the leader-set index formulas the paper
reports for Skylake / Kaby Lake (Appendix B) and the fixed ranges it reports
for Haswell.  :class:`SetDuelingController` implements the PSEL counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

SetRole = Literal["leader_a", "leader_b", "follower"]


@dataclass(frozen=True)
class AdaptiveSetSelector:
    """Classifies set indexes into leader groups and followers.

    Two selection schemes are supported, matching the paper's findings:

    * ``"skylake"`` — leader group A (thrash-vulnerable, fixed policy, the
      paper's New2 sets) are the sets with
      ``(((set & 0x3e0) >> 5) ^ (set & 0x1f)) == 0x00 and (set & 0x2) == 0x0``;
      leader group B are the sets with
      ``(((set & 0x3e0) >> 5) ^ (set & 0x1f)) == 0x1f and (set & 0x2) == 0x2``.
    * ``"haswell"`` — group A is the index range 512-575 and group B the
      range 768-831 (leader sets live in slice 0 only).
    """

    scheme: str = "skylake"
    haswell_leader_a: range = field(default=range(512, 576))
    haswell_leader_b: range = field(default=range(768, 832))

    def role(self, set_index: int, slice_index: int = 0) -> SetRole:
        """Return the role of ``set_index`` (in ``slice_index``)."""
        if self.scheme == "skylake":
            folded = ((set_index & 0x3E0) >> 5) ^ (set_index & 0x1F)
            if folded == 0x00 and (set_index & 0x2) == 0x0:
                return "leader_a"
            if folded == 0x1F and (set_index & 0x2) == 0x2:
                return "leader_b"
            return "follower"
        if self.scheme == "haswell":
            if slice_index == 0 and set_index in self.haswell_leader_a:
                return "leader_a"
            if slice_index == 0 and set_index in self.haswell_leader_b:
                return "leader_b"
            return "follower"
        raise ValueError(f"unknown adaptive scheme {self.scheme!r}")

    def leader_a_sets(self, total_sets: int) -> list:
        """Return the group-A leader set indexes among ``0..total_sets-1``."""
        return [s for s in range(total_sets) if self.role(s) == "leader_a"]

    def leader_b_sets(self, total_sets: int) -> list:
        """Return the group-B leader set indexes among ``0..total_sets-1``."""
        return [s for s in range(total_sets) if self.role(s) == "leader_b"]


@dataclass
class SetDuelingController:
    """A saturating PSEL counter arbitrating between the two leader groups.

    Misses in group A increment the counter, misses in group B decrement it.
    Followers imitate group A while the counter is below the midpoint
    (group A is "winning", i.e. missing less) and group B otherwise.
    """

    bits: int = 10
    value: int = 0

    def __post_init__(self) -> None:
        self.max_value = (1 << self.bits) - 1
        if self.value == 0:
            self.value = self.max_value // 2

    def record_leader_miss(self, role: SetRole) -> None:
        """Update the counter after a miss in a leader set."""
        if role == "leader_a":
            self.value = min(self.max_value, self.value + 1)
        elif role == "leader_b":
            self.value = max(0, self.value - 1)

    def follower_choice(self) -> SetRole:
        """Return which leader group the followers currently imitate."""
        return "leader_a" if self.value <= self.max_value // 2 else "leader_b"

    def reset(self) -> None:
        """Return the counter to its neutral midpoint."""
        self.value = self.max_value // 2

"""A multi-level cache hierarchy (L1 → L2 → L3 → DRAM).

The hierarchy reproduces the behaviour that makes querying a low-level cache
hard (Section 4.3 "Cache Filtering"): a load that hits in L1 never reaches
L2 or L3, so their replacement state is not exercised.  CacheQuery's backend
works around this by evicting blocks from the higher levels through
non-interfering eviction sets; the hierarchy here is what makes that
workaround necessary and observable.

Lookup semantics are kept simple but structurally faithful:

* levels are checked in order; the first hit determines the latency;
* on a hit at level *k*, the block is also filled into all levels above *k*
  (mostly-inclusive behaviour, as on the modelled Intel parts);
* on a full miss, the block is filled into every level and DRAM latency is
  charged;
* ``clflush`` invalidates the block in every level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.addressing import AddressMapper
from repro.cache.cache import AdaptiveConfig, SetAssociativeCache
from repro.cache.cacheset import HIT
from repro.cache.cat import CATConfig
from repro.errors import CacheError


@dataclass
class CacheLevelConfig:
    """Static description of one cache level.

    ``policy`` is a registered policy name; ``hit_latency`` is in core cycles
    and is used by the hardware timing model.
    """

    name: str
    associativity: int
    sets_per_slice: int
    slices: int = 1
    hit_latency: int = 4
    policy: str = "LRU"
    adaptive: Optional[AdaptiveConfig] = None
    cat: Optional[CATConfig] = None
    supports_cat: bool = True

    def build(self) -> SetAssociativeCache:
        """Instantiate the cache level described by this configuration."""
        mapper = AddressMapper(self.sets_per_slice, self.slices)
        cat = self.cat if self.cat is not None else CATConfig(supported=self.supports_cat)
        return SetAssociativeCache(
            self.name,
            self.associativity,
            mapper,
            self.policy,
            adaptive=self.adaptive,
            cat=cat,
        )


@dataclass
class AccessResult:
    """Outcome of one load through the hierarchy."""

    address: int
    hit_level: Optional[str]
    latency: int
    per_level: Dict[str, str] = field(default_factory=dict)

    @property
    def is_hit(self) -> bool:
        """True when the load hit in some cache level (not DRAM)."""
        return self.hit_level is not None


class CacheHierarchy:
    """An ordered stack of cache levels in front of DRAM."""

    def __init__(
        self,
        level_configs: Sequence[CacheLevelConfig],
        *,
        memory_latency: int = 230,
    ) -> None:
        if not level_configs:
            raise CacheError("a hierarchy needs at least one cache level")
        self.configs = list(level_configs)
        self.levels: List[SetAssociativeCache] = [config.build() for config in self.configs]
        self.memory_latency = memory_latency
        self._latency: Dict[str, int] = {
            config.name: config.hit_latency for config in self.configs
        }

    # ----------------------------------------------------------------- lookup

    def level(self, name: str) -> SetAssociativeCache:
        """Return the cache level called ``name`` (e.g. ``"L2"``)."""
        for cache in self.levels:
            if cache.name == name:
                return cache
        raise CacheError(f"unknown cache level {name!r}")

    def level_names(self) -> Tuple[str, ...]:
        """Return the level names from closest to the core outwards."""
        return tuple(cache.name for cache in self.levels)

    def load(self, physical_address: int) -> AccessResult:
        """Perform one load; return where it hit and the latency charged."""
        per_level: Dict[str, str] = {}
        hit_index: Optional[int] = None
        for index, cache in enumerate(self.levels):
            result = cache.access(physical_address)
            per_level[cache.name] = result
            if result == HIT:
                hit_index = index
                break
        if hit_index is None:
            # Full miss: every level already allocated the block while probing
            # (the access above filled it), so only the latency remains.
            return AccessResult(physical_address, None, self.memory_latency, per_level)
        hit_name = self.levels[hit_index].name
        return AccessResult(physical_address, hit_name, self._latency[hit_name], per_level)

    def peek(self, physical_address: int) -> Optional[str]:
        """Return the closest level containing the address, without side effects."""
        for cache in self.levels:
            if cache.contains(physical_address):
                return cache.name
        return None

    # ---------------------------------------------------------------- flushes

    def clflush(self, physical_address: int) -> None:
        """Invalidate the block containing ``physical_address`` in every level."""
        for cache in self.levels:
            cache.flush(physical_address)

    def wbinvd(self) -> None:
        """Invalidate every cache level entirely."""
        for cache in self.levels:
            cache.flush_all()

    # ------------------------------------------------------------------ stats

    def reset_statistics(self) -> None:
        """Zero the hit/miss counters of every level."""
        for cache in self.levels:
            cache.reset_statistics()

    def statistics(self) -> Dict[str, Tuple[int, int]]:
        """Return ``{level: (hits, misses)}``."""
        return {cache.name: (cache.hits, cache.misses) for cache in self.levels}

"""Sharded measurement corpora: one append-log file per namespace key.

A single :class:`~repro.store.prefix_store.PrefixStore` file serialises
every writer on one lock and compacts everything together.  For a corpus
shared by many independent sweeps (the production shape: many learning
jobs feeding one measurement pool), :class:`ShardedStore` spreads the
namespaces of a store across a *directory*, one file — one append log,
one advisory lock — per namespace key:

* concurrent sweeps touching **disjoint** targets (different policies,
  different cache sets) write disjoint files and never contend;
* sweeps sharing a target serialise only on that target's shard, with the
  same catch-up/append protocol (and the same cross-writer
  :class:`~repro.errors.NonDeterminismError` conflict detection) as the
  single-file store;
* shards load lazily — a warm start touching one target reads one shard,
  not the whole corpus.

Shard files are named ``<readable-key>.<sha1-prefix>.shard``; the
authoritative key is stamped into each shard's v2 header line (the
filename is only a deterministic locator), so enumeration reads one small
header per shard and a filename/key mismatch is detected as corruption.

:func:`open_store` is the path-polymorphic constructor the experiment
CLI's ``--cache-path`` uses: an existing directory (or a path spelled with
a trailing separator or a ``.shards`` suffix) opens a :class:`ShardedStore`,
anything else the classic single-file :class:`PrefixStore`.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from pathlib import Path
from typing import Dict, Hashable, Optional, Sequence, Tuple

from repro.errors import StoreCorruptionError, StoreError
from repro.store.prefix_store import NamespaceKey, PrefixNamespace, PrefixStore

SHARD_SUFFIX = ".shard"

#: Header field carrying a shard's authoritative namespace key.
SHARD_KEY_FIELD = "shard"

_UNSAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def shard_filename(key: Sequence[Hashable]) -> str:
    """Deterministic shard file name for a namespace key.

    A readable (sanitised, truncated) rendering of the key plus a SHA-1
    prefix of its canonical JSON — collisions between distinct keys are
    practically impossible, and the stamped in-file key catches the
    impossible case as corruption instead of silent cross-talk.
    """
    from repro.store.codec import _encode_namespace_key

    canonical = json.dumps(_encode_namespace_key(key), separators=(",", ":"))
    digest = hashlib.sha1(canonical.encode()).hexdigest()[:12]
    readable = "-".join(_UNSAFE.sub("_", str(part)) for part in key)[:80].strip("-")
    return f"{readable or 'ns'}.{digest}{SHARD_SUFFIX}"


class ShardedStore:
    """A directory of single-namespace :class:`PrefixStore` shards.

    Mirrors the :class:`PrefixStore` surface every consumer uses —
    ``namespace``/``namespaces``/``save``/``compact``/``statistics``/
    ``node_count``/``entry_count`` — so ``QueryCache``, ``ResponseTrie``
    and the experiment runners work unchanged on top of it.
    """

    #: Duck-typing marker (see :attr:`PrefixStore.sharded`).
    sharded = True

    def __init__(self, path) -> None:
        self._path = Path(path)
        if self._path.exists() and not self._path.is_dir():
            raise StoreError(
                f"sharded store path {self._path} exists and is not a directory; "
                "use a PrefixStore for single-file stores"
            )
        self._path.mkdir(parents=True, exist_ok=True)
        self._shards: Dict[NamespaceKey, PrefixStore] = {}

    # ------------------------------------------------------------------ paths

    @property
    def path(self) -> Path:
        """The corpus directory."""
        return self._path

    def shard_path(self, key: Sequence[Hashable]) -> Path:
        """The file a namespace key lives in (whether or not it exists yet)."""
        return self._path / shard_filename(key)

    # -------------------------------------------------------------- namespaces

    def _shard(self, key: NamespaceKey) -> PrefixStore:
        shard = self._shards.get(key)
        if shard is None:
            shard = PrefixStore(
                str(self.shard_path(key)), header_extra={SHARD_KEY_FIELD: list(key)}
            )
            stamped = (
                shard.load_report.header_extra.get(SHARD_KEY_FIELD)
                if shard.load_report is not None
                else None
            )
            if stamped is not None and tuple(stamped) != key:
                raise StoreCorruptionError(
                    f"shard file {self.shard_path(key)} is stamped for namespace "
                    f"{tuple(stamped)!r} but was opened for {key!r}; the file was "
                    "renamed or the directory mixes two corpora"
                )
            self._shards[key] = shard
        return shard

    def namespace(self, key: Sequence[Hashable]) -> PrefixNamespace:
        """Return (creating/loading if needed) the namespace for ``key``."""
        return self._shard(tuple(key)).namespace(key)

    def _on_disk_keys(self) -> Tuple[NamespaceKey, ...]:
        from repro.store.codec import read_first_line

        keys = []
        for file in sorted(self._path.glob(f"*{SHARD_SUFFIX}")):
            try:
                header = json.loads(read_first_line(file))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise StoreCorruptionError(
                    f"shard file {file} has an unreadable header ({exc}); "
                    "delete the shard to drop its namespace"
                ) from exc
            stamped = header.get(SHARD_KEY_FIELD) if isinstance(header, dict) else None
            if not isinstance(stamped, list):
                raise StoreCorruptionError(
                    f"shard file {file} carries no namespace key in its header; "
                    "it was not written by a ShardedStore"
                )
            keys.append(tuple(stamped))
        return tuple(keys)

    def namespaces(self) -> Tuple[NamespaceKey, ...]:
        """Every namespace key in the corpus (loaded shards and on-disk ones)."""
        keys = list(self._shards)
        seen = set(keys)
        for key in self._on_disk_keys():
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return tuple(keys)

    def drop_namespace(self, key: Sequence[Hashable]) -> None:
        """Remove one namespace: forget the loaded shard and delete its file."""
        key = tuple(key)
        self._shards.pop(key, None)
        path = self.shard_path(key)
        for victim in (path, path.parent / f"{path.name}.lock"):
            try:
                victim.unlink()
            except FileNotFoundError:
                pass

    # ------------------------------------------------------------------ totals

    @property
    def node_count(self) -> int:
        """Total stored prefixes across the *loaded* shards."""
        return sum(shard.node_count for shard in self._shards.values())

    @property
    def entry_count(self) -> int:
        """Total recorded entries across the *loaded* shards."""
        return sum(shard.entry_count for shard in self._shards.values())

    @property
    def pending_records(self) -> int:
        """Journal records waiting for the next :meth:`save`, over all shards."""
        return sum(shard.pending_records for shard in self._shards.values())

    def statistics(self) -> Dict[str, object]:
        """Size summary: loaded-shard contents plus whole-corpus disk usage."""
        files = list(self._path.glob(f"*{SHARD_SUFFIX}"))
        return {
            "path": str(self._path),
            "namespaces": len(self.namespaces()),
            "entries": self.entry_count,
            "nodes": self.node_count,
            "bytes_on_disk": sum(file.stat().st_size for file in files),
            "shards": len(files),
            "loaded_shards": len(self._shards),
            "pending_records": self.pending_records,
            "sharded": True,
        }

    def clear(self) -> None:
        """Drop every namespace, on disk included."""
        for key in self.namespaces():
            self.drop_namespace(key)
        self._shards.clear()

    # ------------------------------------------------------------- persistence

    def save(self, path: Optional[str] = None, *, compact: bool = False) -> None:
        """Incrementally save every loaded shard (each under its own lock).

        Shards the process never touched have nothing to save.  Saving a
        sharded corpus to a different path is not supported — copy the
        directory instead.
        """
        if path is not None and Path(path) != self._path:
            raise StoreError(
                f"sharded store {self._path} persists in place; copy the "
                f"directory to save it elsewhere (got {path!r})"
            )
        for shard in self._shards.values():
            shard.save(compact=compact)

    def compact(self) -> None:
        """Fold every shard's append log into a compact snapshot.

        Unlike :meth:`save` this covers the whole corpus: on-disk shards
        this process never loaded are loaded and compacted too.
        """
        for key in self.namespaces():
            self._shard(key).compact()


def open_store(path, *, sharded: Optional[bool] = None):
    """Open ``path`` as the right kind of store (the ``--cache-path`` entry).

    A ``unix://`` or ``tcp://`` address connects a
    :class:`~repro.store.client.RemoteStore` to a running
    :mod:`repro.store.server` instead of touching the filesystem.
    Otherwise ``sharded=None`` auto-detects: an existing directory, a path
    spelled with a trailing separator, or a ``.shards`` suffix opens a
    :class:`ShardedStore`; everything else a single-file
    :class:`PrefixStore`.
    """
    from repro.store.client import RemoteStore, is_server_address

    if is_server_address(path):
        return RemoteStore(path)
    target = Path(path)
    if sharded is None:
        sharded = (
            target.is_dir()
            or str(path).endswith(os.sep)
            or target.suffix == ".shards"
        )
    return ShardedStore(target) if sharded else PrefixStore(str(target))

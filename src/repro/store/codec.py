"""Versioned on-disk codec for :class:`~repro.store.prefix_store.PrefixStore`.

Format (version 2) — a line-oriented **append log**.  The first two lines
are rewritten only by compaction (atomically, via a same-directory
temporary file and :func:`os.replace`); every later line is appended with
a single ``write`` under the writer lock::

    {"format": "repro-prefix-store", "version": 2, "generation": 3}
    {"snapshot": [{"key": ["mbl", "L2", 0, 63], "trie": <node>}, ...]}
    {"delta": [[<key>, [<symbol>, ...], [<payload>, ...], <terminal>], ...]}
    {"delta": [...]}
    ...

where ``<node>`` is the compact recursive encoding
``[payload, {symbol: <node>, ...}]`` with a third element ``1`` appended
for terminal nodes, exactly as in version 1, and each delta record is one
``record()`` call replayed on load: the namespace key, the encoded word,
its payloads and the terminal flag.  Saving a store therefore costs
O(records since the last save), not O(store) — the whole point of the v2
migration (``benchmarks/bench_store_persistence.py`` pins it).

The ``generation`` counter increments on every compaction.  Writers
remember the generation and byte offset they have synced to, so a later
save can detect both "someone appended behind my back" (same generation,
file grew — replay just the tail) and "someone compacted" (generation
changed — re-read the whole file); see
:meth:`~repro.store.prefix_store.PrefixStore.save` for the protocol.

Version 1 (one whole-file JSON document, no newline) is still decoded —
and migrated to v2 on the next save — so pre-existing ``--cache-path``
files keep working forever.

Robustness:

* **atomic snapshots, torn-tolerant tails** — the header + snapshot pair
  is only ever written atomically, so damage there is genuine corruption
  and raises :class:`~repro.errors.StoreCorruptionError`; the delta tail
  is append-only, so a ``kill -9`` mid-append can only tear the *last*
  line.  Loading silently truncates to the valid prefix and reports how
  many delta records survived (:attr:`LoadReport.recovered_records`) and
  how many tail bytes were dropped (:attr:`LoadReport.discarded_bytes`).
  An invalid line *followed by* valid data means the append discipline was
  violated and is reported as corruption;
* **corruption diagnostics** — unreadable, truncated or structurally
  malformed files raise :class:`~repro.errors.StoreCorruptionError` naming
  the file and the problem; files written by a newer codec version are
  rejected with an upgrade hint instead of being half-parsed;
* **symbol registry** — trie children and delta words are keyed by JSON
  strings.  Plain string symbols are stored as-is; any other symbol type
  must be registered via :func:`register_symbol_codec` (the learning stack
  registers its policy-input symbols in
  :mod:`repro.learning.query_engine`).  Encoded symbols are marked with a
  ``\\x01`` sentinel byte that cannot collide with MBL block names.

Every byte the codec moves goes through the :func:`track_store_io`
instrumentation hooks, so tests can assert the O(delta) claim by counting
instead of timing.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import StoreCorruptionError, StoreError

STORE_FORMAT = "repro-prefix-store"
STORE_VERSION = 2

#: Sentinel prefix marking a registry-encoded (non-plain-string) symbol.
_ENCODED = "\x01"

#: tag -> (type, encode, decode); see :func:`register_symbol_codec`.
_SYMBOL_CODECS: Dict[str, Tuple[type, Callable, Callable]] = {}
_SYMBOL_TAG_BY_TYPE: Dict[type, str] = {}

_SCALARS = (str, int, float, bool, type(None))


def register_symbol_codec(
    tag: str,
    symbol_type: type,
    encode: Callable[[Hashable], str],
    decode: Callable[[str], Hashable],
) -> None:
    """Teach the codec to persist symbols of ``symbol_type``.

    ``encode`` must render the symbol to a string ``decode`` round-trips.
    Registering the same tag twice for the same type is a no-op; a tag
    collision between different types raises :class:`~repro.errors.StoreError`.
    """
    existing = _SYMBOL_CODECS.get(tag)
    if existing is not None and existing[0] is not symbol_type:
        raise StoreError(
            f"symbol codec tag {tag!r} is already registered for "
            f"{existing[0].__name__}"
        )
    _SYMBOL_CODECS[tag] = (symbol_type, encode, decode)
    _SYMBOL_TAG_BY_TYPE[symbol_type] = tag


def encode_symbol(symbol: Hashable) -> str:
    """Render a trie symbol as a JSON object key."""
    if isinstance(symbol, str):
        if symbol.startswith(_ENCODED):  # defensive: escape the sentinel
            return f"{_ENCODED}s:{symbol[1:]}"
        return symbol
    if isinstance(symbol, bool):  # bool before int: bool is an int subclass
        return f"{_ENCODED}b:{int(symbol)}"
    if isinstance(symbol, int):
        return f"{_ENCODED}i:{symbol}"
    tag = _SYMBOL_TAG_BY_TYPE.get(type(symbol))
    if tag is None:
        raise StoreError(
            f"cannot persist trie symbol {symbol!r} of type "
            f"{type(symbol).__name__}: register a symbol codec first "
            "(see repro.store.codec.register_symbol_codec)"
        )
    return f"{_ENCODED}{tag}:{_SYMBOL_CODECS[tag][1](symbol)}"


def decode_symbol(text: str) -> Hashable:
    """Invert :func:`encode_symbol`."""
    if not text.startswith(_ENCODED):
        return text
    tag, _, payload = text[1:].partition(":")
    if tag == "s":
        return _ENCODED + payload
    if tag == "b":
        return bool(int(payload))
    if tag == "i":
        return int(payload)
    codec = _SYMBOL_CODECS.get(tag)
    if codec is None:
        raise StoreCorruptionError(
            f"store file uses unknown symbol codec tag {tag!r}; the writing "
            "process registered a codec this process has not imported"
        )
    return codec[2](payload)


# ---------------------------------------------------------- IO instrumentation


@dataclass
class StoreIO:
    """Byte counters for every file operation the codec performs.

    Obtained from :func:`track_store_io`; the O(delta) regression test
    asserts on these instead of wall clock.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    reads: int = 0
    writes: int = 0


_IO_TRACKERS: List[StoreIO] = []


@contextmanager
def track_store_io() -> Iterator[StoreIO]:
    """Count the bytes the codec reads/writes inside the ``with`` block."""
    tracker = StoreIO()
    _IO_TRACKERS.append(tracker)
    try:
        yield tracker
    finally:
        _IO_TRACKERS.remove(tracker)


def _note_read(count: int) -> None:
    for tracker in _IO_TRACKERS:
        tracker.bytes_read += count
        tracker.reads += 1


def _note_write(count: int) -> None:
    for tracker in _IO_TRACKERS:
        tracker.bytes_written += count
        tracker.writes += 1


def read_file_bytes(path: Path) -> bytes:
    """Read a whole file (instrumented)."""
    data = Path(path).read_bytes()
    _note_read(len(data))
    return data


def read_file_range(path: Path, start: int) -> bytes:
    """Read a file from byte ``start`` to its end (instrumented)."""
    with open(path, "rb") as handle:
        handle.seek(start)
        data = handle.read()
    _note_read(len(data))
    return data


def read_first_line(path: Path) -> bytes:
    """Read the first line of a file (header peek, instrumented)."""
    with open(path, "rb") as handle:
        data = handle.readline()
    _note_read(len(data))
    return data


def append_file_bytes(path: Path, data: bytes) -> int:
    """Append ``data`` to ``path`` in one write and fsync it (instrumented)."""
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    _note_write(len(data))
    return len(data)


def replace_file_bytes(path: Path, data: bytes) -> None:
    """Atomically replace ``path`` with ``data`` (same-dir tmp, instrumented).

    Stale temporaries from previously killed writers matching the same
    naming pattern are removed — safe because callers hold the writer lock
    (no live writer can own them).
    """
    path = Path(path)
    for stale in path.parent.glob(f".{path.name}.tmp.*"):
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - racing cleanup is best-effort
            pass
    temporary = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(temporary, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
    finally:
        if temporary.exists():  # pragma: no cover - only on a failed replace
            temporary.unlink()
    _note_write(len(data))


# ----------------------------------------------------------------- encoding


def _encode_node(node) -> list:
    children = {
        encode_symbol(symbol): _encode_node(child)
        for symbol, child in node.children.items()
    }
    payload = node.payload
    if payload is not None and not isinstance(payload, _SCALARS):
        raise StoreError(
            f"cannot persist trie payload {payload!r} of type "
            f"{type(payload).__name__}: payloads must be JSON scalars"
        )
    encoded = [payload, children]
    if node.terminal:
        encoded.append(1)
    return encoded


def _encode_namespace_key(key) -> list:
    for part in key:
        if not isinstance(part, _SCALARS):
            raise StoreError(
                f"cannot persist namespace key part {part!r} of type "
                f"{type(part).__name__}: keys must be tuples of JSON scalars"
            )
    return list(key)


def encode_snapshot_entries(store) -> list:
    """Render a store's namespaces as the snapshot-line entry list."""
    return [
        {"key": _encode_namespace_key(namespace.key), "trie": _encode_node(namespace._root)}
        for namespace in (store._namespaces[key] for key in store.namespaces())
    ]


def encode_store(store) -> dict:
    """Render a store as one self-contained JSON document (v1 layout).

    Kept for introspection and the v1 fixtures; on-disk persistence goes
    through :func:`write_snapshot_file` / :func:`append_delta` instead.
    """
    return {
        "format": STORE_FORMAT,
        "version": 1,
        "namespaces": encode_snapshot_entries(store),
    }


def encode_delta_record(key, word, payloads, terminal: bool) -> list:
    """Render one replayable ``record()`` call as a delta-line entry."""
    for payload in payloads:
        if payload is not None and not isinstance(payload, _SCALARS):
            raise StoreError(
                f"cannot persist trie payload {payload!r} of type "
                f"{type(payload).__name__}: payloads must be JSON scalars"
            )
    return [
        _encode_namespace_key(key),
        [encode_symbol(symbol) for symbol in word],
        list(payloads),
        1 if terminal else 0,
    ]


def encode_header(generation: int, extra: Optional[dict] = None) -> dict:
    """Render the v2 header line."""
    header = {"format": STORE_FORMAT, "version": STORE_VERSION, "generation": generation}
    if extra:
        header.update(extra)
    return header


def render_snapshot(store, generation: int, extra: Optional[dict] = None) -> bytes:
    """Render the full header + snapshot byte image of a store."""
    header = json.dumps(encode_header(generation, extra), separators=(",", ":"))
    snapshot = json.dumps(
        {"snapshot": encode_snapshot_entries(store)}, separators=(",", ":")
    )
    return (header + "\n" + snapshot + "\n").encode()


def render_delta(records: Sequence[tuple]) -> bytes:
    """Render journal records ``(key, word, payloads, terminal)`` as one delta line."""
    encoded = [
        encode_delta_record(key, word, payloads, terminal)
        for key, word, payloads, terminal in records
    ]
    return (json.dumps({"delta": encoded}, separators=(",", ":")) + "\n").encode()


def write_snapshot_file(
    path: Path, store, generation: int, extra: Optional[dict] = None
) -> int:
    """Atomically write a compact snapshot; return the bytes written."""
    data = render_snapshot(store, generation, extra)
    replace_file_bytes(path, data)
    return len(data)


def append_delta(path: Path, records: Sequence[tuple]) -> int:
    """Append one delta line holding ``records``; return the bytes appended."""
    return append_file_bytes(path, render_delta(records))


def save_store_file(path: Path, store) -> None:
    """Write a full v2 snapshot of ``store`` to ``path`` (atomic, generation 0).

    This is the save-to-an-explicit-path entry point; incremental saves to
    a store's own path go through
    :meth:`~repro.store.prefix_store.PrefixStore.save`.
    """
    write_snapshot_file(Path(path), store, 0)


# ----------------------------------------------------------------- decoding


def is_store_document(raw: object) -> bool:
    """True when parsed JSON looks like a native whole-file store document."""
    return isinstance(raw, dict) and raw.get("format") == STORE_FORMAT


def _corrupt(path: Path, problem: str) -> StoreCorruptionError:
    return StoreCorruptionError(
        f"prefix store file {path} is corrupted: {problem}; delete it to "
        "start with an empty store"
    )


def _decode_node(path: Path, namespace, node, depth: int, encoded) -> None:
    """Merge one encoded node (and its subtree) into the live ``node``.

    Works directly on the trie nodes (no per-node root walk), so reloading
    a store is linear in its node count.
    """
    from repro.store.prefix_store import _StoreNode

    if (
        not isinstance(encoded, list)
        or len(encoded) not in (2, 3)
        or not isinstance(encoded[1], dict)
    ):
        raise _corrupt(path, f"malformed trie node at depth {depth}")
    payload, children = encoded[0], encoded[1]
    if payload is not None and not isinstance(payload, _SCALARS):
        raise _corrupt(path, f"non-scalar payload at depth {depth}")
    if payload is not None:
        if node.payload is None:
            node.payload = payload
        elif node.payload != payload:
            raise _corrupt(
                path,
                f"payload conflict at depth {depth}: {node.payload!r} vs {payload!r}",
            )
    if len(encoded) == 3 and not node.terminal:
        node.terminal = True
        namespace._entries += 1
    for symbol_text, child_encoded in children.items():
        symbol = decode_symbol(symbol_text)
        child = node.children.get(symbol)
        if child is None:
            child = _StoreNode()
            node.children[symbol] = child
            namespace._nodes += 1
        _decode_node(path, namespace, child, depth + 1, child_encoded)


def _decode_namespace_entries(path: Path, entries, store) -> None:
    """Populate ``store`` from a snapshot entry list (v1 ``namespaces`` /
    v2 ``snapshot``)."""
    if not isinstance(entries, list):
        raise _corrupt(path, "missing or malformed namespaces list")
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict) or "key" not in entry or "trie" not in entry:
            raise _corrupt(path, f"malformed namespace entry {index}")
        key = entry["key"]
        if not isinstance(key, list):
            raise _corrupt(path, f"malformed namespace key at entry {index}")
        namespace = store.namespace(tuple(key))
        _decode_node(path, namespace, namespace._root, 0, entry["trie"])


def load_store_document(path: Path, raw: dict, store) -> None:
    """Populate ``store`` from a parsed v1 whole-file document (structure-checked)."""
    version = raw.get("version")
    if not isinstance(version, int):
        raise _corrupt(path, f"missing or non-integer version field ({version!r})")
    if version > STORE_VERSION:
        raise StoreCorruptionError(
            f"prefix store file {path} has format version {version}, but this "
            f"build reads up to version {STORE_VERSION}; upgrade the library "
            "or delete the file"
        )
    if version == STORE_VERSION:
        raise _corrupt(
            path,
            "a version-2 store is an append log, not a whole-file document",
        )
    _decode_namespace_entries(path, raw.get("namespaces"), store)


# ------------------------------------------------------------ v2 log parsing


@dataclass
class DeltaRecord:
    """One decoded, replayable delta record."""

    key: tuple
    word: tuple
    payloads: tuple
    terminal: bool


@dataclass
class LoadReport:
    """What a load (or tail catch-up) actually recovered from a file.

    ``valid_end`` is the byte offset of the end of the last intact line —
    the offset appends must continue from (after truncating the torn
    tail, which only writers holding the lock do).
    """

    version: int = STORE_VERSION
    generation: int = 0
    snapshot_end: int = 0
    valid_end: int = 0
    recovered_records: int = 0
    discarded_bytes: int = 0
    migrated: bool = False
    header_extra: dict = field(default_factory=dict)


def decode_delta_entry(path: Path, entry) -> DeltaRecord:
    """Validate and decode one delta-line entry into a :class:`DeltaRecord`."""
    if (
        not isinstance(entry, list)
        or len(entry) != 4
        or not isinstance(entry[0], list)
        or not isinstance(entry[1], list)
        or not isinstance(entry[2], list)
        or entry[3] not in (0, 1)
        or len(entry[1]) != len(entry[2])
    ):
        raise _corrupt(path, "malformed delta record")
    key, symbols, payloads, terminal = entry
    for part in key:
        if not isinstance(part, _SCALARS):
            raise _corrupt(path, "non-scalar namespace key part in delta record")
    for symbol in symbols:
        if not isinstance(symbol, str):
            raise _corrupt(path, "non-string symbol in delta record")
    for payload in payloads:
        if payload is not None and not isinstance(payload, _SCALARS):
            raise _corrupt(path, "non-scalar payload in delta record")
    return DeltaRecord(
        key=tuple(key),
        word=tuple(decode_symbol(symbol) for symbol in symbols),
        payloads=tuple(payloads),
        terminal=bool(terminal),
    )


def _parse_delta_line(path: Path, line: bytes) -> List[DeltaRecord]:
    """Parse one complete delta line; raise ``StoreCorruptionError`` if invalid."""
    try:
        parsed = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise _corrupt(path, f"unparseable delta line ({exc})") from exc
    if not isinstance(parsed, dict) or "delta" not in parsed or not isinstance(
        parsed["delta"], list
    ):
        raise _corrupt(path, "log line is not a delta record batch")
    return [decode_delta_entry(path, entry) for entry in parsed["delta"]]


def parse_delta_tail(
    path: Path, data: bytes, base_offset: int
) -> Tuple[List[DeltaRecord], int, int]:
    """Parse append-region bytes into records, tolerating a torn final line.

    ``data`` starts at file offset ``base_offset`` (which must sit on a
    line boundary).  Returns ``(records, valid_end, discarded_bytes)``
    where ``valid_end`` is the absolute offset of the end of the last
    intact line.  A torn or invalid *final* line is dropped (that is the
    crash signature of a killed append); an invalid line followed by more
    data means real corruption and raises
    :class:`~repro.errors.StoreCorruptionError`.
    """
    records: List[DeltaRecord] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            # Torn tail: an append that never completed its line.
            return records, base_offset + offset, len(data) - offset
        line = data[offset : newline + 1]
        try:
            records.extend(_parse_delta_line(path, line))
        except StoreCorruptionError:
            if newline + 1 >= len(data):
                # Final line is complete but invalid: a partially flushed
                # append whose newline survived.  Drop it like a torn tail.
                return records, base_offset + offset, len(line)
            raise
        offset = newline + 1
    return records, base_offset + offset, 0


def parse_store_data(path: Path, data: bytes, store) -> LoadReport:
    """Decode a store file image (v1 or v2) into ``store``.

    Returns a :class:`LoadReport`; raises
    :class:`~repro.errors.StoreCorruptionError` on structural damage and
    :class:`~repro.errors.NonDeterminismError` when delta records disagree
    with each other (two unlocked writers raced, or the measured system was
    genuinely non-deterministic).
    """
    if not data.strip():
        raise _corrupt(path, "file is empty")
    first_newline = data.find(b"\n")
    header_bytes = data if first_newline == -1 else data[:first_newline]
    try:
        header = json.loads(header_bytes)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StoreCorruptionError(
            f"prefix store file {path} is unreadable or corrupted ({exc}); "
            "delete it to start with an empty store"
        ) from exc
    if not is_store_document(header):
        raise _corrupt(path, "not a repro-prefix-store document")
    version = header.get("version")
    if not isinstance(version, int):
        raise _corrupt(path, f"missing or non-integer version field ({version!r})")
    if version > STORE_VERSION:
        raise StoreCorruptionError(
            f"prefix store file {path} has format version {version}, but this "
            f"build reads up to version {STORE_VERSION}; upgrade the library "
            "or delete the file"
        )

    if version < STORE_VERSION:
        # v1: one whole-file JSON document (never contains a newline).
        if first_newline != -1 and data[first_newline:].strip():
            raise _corrupt(path, "trailing data after a version-1 document")
        load_store_document(path, header, store)
        return LoadReport(
            version=version,
            snapshot_end=len(data),
            valid_end=len(data),
            migrated=True,
        )

    if first_newline == -1:
        raise _corrupt(path, "version-2 header line is missing its snapshot")
    generation = header.get("generation")
    if not isinstance(generation, int):
        raise _corrupt(path, f"missing or non-integer generation ({generation!r})")
    header_extra = {
        name: value
        for name, value in header.items()
        if name not in ("format", "version", "generation")
    }

    snapshot_start = first_newline + 1
    snapshot_newline = data.find(b"\n", snapshot_start)
    if snapshot_newline == -1:
        # The header+snapshot pair is written atomically; a tear here means
        # the file was damaged outside the append protocol.
        raise _corrupt(path, "truncated snapshot line")
    try:
        snapshot = json.loads(data[snapshot_start : snapshot_newline + 1])
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise _corrupt(path, f"unparseable snapshot line ({exc})") from exc
    if not isinstance(snapshot, dict) or "snapshot" not in snapshot:
        raise _corrupt(path, "second log line is not a snapshot")
    _decode_namespace_entries(path, snapshot["snapshot"], store)
    snapshot_end = snapshot_newline + 1

    records, valid_end, discarded = parse_delta_tail(
        path, data[snapshot_end:], snapshot_end
    )
    for record in records:
        store.namespace(record.key).record(
            record.word, record.payloads, terminal=record.terminal
        )
    return LoadReport(
        version=version,
        generation=generation,
        snapshot_end=snapshot_end,
        valid_end=valid_end,
        recovered_records=len(records),
        discarded_bytes=discarded,
        header_extra=header_extra,
    )


def read_header(path: Path) -> Tuple[int, int]:
    """Read ``(version, generation)`` from a store file's first line.

    Generation is 0 for v1 files.  Raises
    :class:`~repro.errors.StoreCorruptionError` when the header is damaged.
    """
    line = read_first_line(path)
    if not line.strip():
        raise _corrupt(path, "file is empty")
    try:
        header = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise _corrupt(path, f"unparseable header line ({exc})") from exc
    if not is_store_document(header):
        raise _corrupt(path, "not a repro-prefix-store document")
    version = header.get("version")
    if not isinstance(version, int):
        raise _corrupt(path, f"missing or non-integer version field ({version!r})")
    generation = header.get("generation", 0)
    if not isinstance(generation, int):
        raise _corrupt(path, f"missing or non-integer generation ({generation!r})")
    return version, generation


def load_store_file(path: Path, store) -> LoadReport:
    """Load ``path`` into ``store``; raise :class:`StoreCorruptionError` on damage.

    Nothing is partially loaded: when loading fails the store is returned
    to the namespaces it held before the call.  Loading is lock-free and
    tolerates a concurrent appender: a torn final line is dropped (see
    :class:`LoadReport`), because it is either a crash leftover or an
    append still in flight — both mean "not yet durable".
    """
    try:
        data = read_file_bytes(path)
    except OSError as exc:
        raise StoreCorruptionError(
            f"prefix store file {path} is unreadable or corrupted ({exc}); "
            "delete it to start with an empty store"
        ) from exc
    snapshot = dict(store._namespaces)
    try:
        return parse_store_data(path, data, store)
    except Exception:
        store._namespaces.clear()
        store._namespaces.update(snapshot)
        raise

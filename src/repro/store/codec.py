"""Versioned on-disk codec for :class:`~repro.store.prefix_store.PrefixStore`.

Format (version 1) — one JSON document::

    {
      "format": "repro-prefix-store",
      "version": 1,
      "namespaces": [
        {"key": ["mbl", "L2", 0, 63], "trie": <node>},
        ...
      ]
    }

where ``<node>`` is the compact recursive encoding
``[payload, {symbol: <node>, ...}]`` with a third element ``1`` appended
for terminal nodes (explicitly recorded entries).  Compared to the legacy
flat ``QueryCache`` JSON (one object carrying the *full* query text per
entry), shared prefixes are stored once — deep batch sweeps whose queries
all start with the same reset sequence shrink superlinearly
(``benchmarks/bench_store_persistence.py`` measures it).

Robustness:

* **atomic writes** — the document is written to a same-directory
  temporary file and :func:`os.replace`'d over the target, so a killed run
  leaves either the old file or the new one, never a torn hybrid;
* **corruption diagnostics** — unreadable, truncated or structurally
  malformed files raise :class:`~repro.errors.StoreCorruptionError` naming
  the file and the problem; files written by a newer codec version are
  rejected with an upgrade hint instead of being half-parsed;
* **symbol registry** — trie children are keyed by JSON object keys, i.e.
  strings.  Plain string symbols are stored as-is; any other symbol type
  must be registered via :func:`register_symbol_codec` (the learning stack
  registers its policy-input symbols in
  :mod:`repro.learning.query_engine`).  Encoded symbols are marked with a
  ``\\x01`` sentinel byte that cannot collide with MBL block names.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Dict, Hashable, Tuple

from repro.errors import StoreCorruptionError, StoreError

STORE_FORMAT = "repro-prefix-store"
STORE_VERSION = 1

#: Sentinel prefix marking a registry-encoded (non-plain-string) symbol.
_ENCODED = "\x01"

#: tag -> (type, encode, decode); see :func:`register_symbol_codec`.
_SYMBOL_CODECS: Dict[str, Tuple[type, Callable, Callable]] = {}
_SYMBOL_TAG_BY_TYPE: Dict[type, str] = {}

_SCALARS = (str, int, float, bool, type(None))


def register_symbol_codec(
    tag: str,
    symbol_type: type,
    encode: Callable[[Hashable], str],
    decode: Callable[[str], Hashable],
) -> None:
    """Teach the codec to persist symbols of ``symbol_type``.

    ``encode`` must render the symbol to a string ``decode`` round-trips.
    Registering the same tag twice for the same type is a no-op; a tag
    collision between different types raises :class:`~repro.errors.StoreError`.
    """
    existing = _SYMBOL_CODECS.get(tag)
    if existing is not None and existing[0] is not symbol_type:
        raise StoreError(
            f"symbol codec tag {tag!r} is already registered for "
            f"{existing[0].__name__}"
        )
    _SYMBOL_CODECS[tag] = (symbol_type, encode, decode)
    _SYMBOL_TAG_BY_TYPE[symbol_type] = tag


def encode_symbol(symbol: Hashable) -> str:
    """Render a trie symbol as a JSON object key."""
    if isinstance(symbol, str):
        if symbol.startswith(_ENCODED):  # defensive: escape the sentinel
            return f"{_ENCODED}s:{symbol[1:]}"
        return symbol
    if isinstance(symbol, bool):  # bool before int: bool is an int subclass
        return f"{_ENCODED}b:{int(symbol)}"
    if isinstance(symbol, int):
        return f"{_ENCODED}i:{symbol}"
    tag = _SYMBOL_TAG_BY_TYPE.get(type(symbol))
    if tag is None:
        raise StoreError(
            f"cannot persist trie symbol {symbol!r} of type "
            f"{type(symbol).__name__}: register a symbol codec first "
            "(see repro.store.codec.register_symbol_codec)"
        )
    return f"{_ENCODED}{tag}:{_SYMBOL_CODECS[tag][1](symbol)}"


def decode_symbol(text: str) -> Hashable:
    """Invert :func:`encode_symbol`."""
    if not text.startswith(_ENCODED):
        return text
    tag, _, payload = text[1:].partition(":")
    if tag == "s":
        return _ENCODED + payload
    if tag == "b":
        return bool(int(payload))
    if tag == "i":
        return int(payload)
    codec = _SYMBOL_CODECS.get(tag)
    if codec is None:
        raise StoreCorruptionError(
            f"store file uses unknown symbol codec tag {tag!r}; the writing "
            "process registered a codec this process has not imported"
        )
    return codec[2](payload)


# ----------------------------------------------------------------- encoding


def _encode_node(node) -> list:
    children = {
        encode_symbol(symbol): _encode_node(child)
        for symbol, child in node.children.items()
    }
    payload = node.payload
    if payload is not None and not isinstance(payload, _SCALARS):
        raise StoreError(
            f"cannot persist trie payload {payload!r} of type "
            f"{type(payload).__name__}: payloads must be JSON scalars"
        )
    encoded = [payload, children]
    if node.terminal:
        encoded.append(1)
    return encoded


def _encode_namespace_key(key) -> list:
    for part in key:
        if not isinstance(part, _SCALARS):
            raise StoreError(
                f"cannot persist namespace key part {part!r} of type "
                f"{type(part).__name__}: keys must be tuples of JSON scalars"
            )
    return list(key)


def encode_store(store) -> dict:
    """Render a :class:`~repro.store.prefix_store.PrefixStore` as a JSON document."""
    return {
        "format": STORE_FORMAT,
        "version": STORE_VERSION,
        "namespaces": [
            {"key": _encode_namespace_key(namespace.key), "trie": _encode_node(namespace._root)}
            for namespace in (store._namespaces[key] for key in store.namespaces())
        ],
    }


def save_store_file(path: Path, store) -> None:
    """Atomically serialise ``store`` to ``path`` (same-directory tmp + replace)."""
    document = json.dumps(encode_store(store), separators=(",", ":"))
    temporary = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        temporary.write_text(document)
        os.replace(temporary, path)
    finally:
        if temporary.exists():  # pragma: no cover - only on a failed replace
            temporary.unlink()


# ----------------------------------------------------------------- decoding


def is_store_document(raw: object) -> bool:
    """True when parsed JSON looks like a native store document."""
    return isinstance(raw, dict) and raw.get("format") == STORE_FORMAT


def _corrupt(path: Path, problem: str) -> StoreCorruptionError:
    return StoreCorruptionError(
        f"prefix store file {path} is corrupted: {problem}; delete it to "
        "start with an empty store"
    )


def _decode_node(path: Path, namespace, node, depth: int, encoded) -> None:
    """Merge one encoded node (and its subtree) into the live ``node``.

    Works directly on the trie nodes (no per-node root walk), so reloading
    a store is linear in its node count.
    """
    from repro.store.prefix_store import _StoreNode

    if (
        not isinstance(encoded, list)
        or len(encoded) not in (2, 3)
        or not isinstance(encoded[1], dict)
    ):
        raise _corrupt(path, f"malformed trie node at depth {depth}")
    payload, children = encoded[0], encoded[1]
    if payload is not None and not isinstance(payload, _SCALARS):
        raise _corrupt(path, f"non-scalar payload at depth {depth}")
    if payload is not None:
        if node.payload is None:
            node.payload = payload
        elif node.payload != payload:
            raise _corrupt(
                path,
                f"payload conflict at depth {depth}: {node.payload!r} vs {payload!r}",
            )
    if len(encoded) == 3 and not node.terminal:
        node.terminal = True
        namespace._entries += 1
    for symbol_text, child_encoded in children.items():
        symbol = decode_symbol(symbol_text)
        child = node.children.get(symbol)
        if child is None:
            child = _StoreNode()
            node.children[symbol] = child
            namespace._nodes += 1
        _decode_node(path, namespace, child, depth + 1, child_encoded)


def load_store_document(path: Path, raw: dict, store) -> None:
    """Populate ``store`` from a parsed native document (structure-checked)."""
    version = raw.get("version")
    if not isinstance(version, int):
        raise _corrupt(path, f"missing or non-integer version field ({version!r})")
    if version > STORE_VERSION:
        raise StoreCorruptionError(
            f"prefix store file {path} has format version {version}, but this "
            f"build reads up to version {STORE_VERSION}; upgrade the library "
            "or delete the file"
        )
    namespaces = raw.get("namespaces")
    if not isinstance(namespaces, list):
        raise _corrupt(path, "missing or malformed namespaces list")
    for index, entry in enumerate(namespaces):
        if not isinstance(entry, dict) or "key" not in entry or "trie" not in entry:
            raise _corrupt(path, f"malformed namespace entry {index}")
        key = entry["key"]
        if not isinstance(key, list):
            raise _corrupt(path, f"malformed namespace key at entry {index}")
        namespace = store.namespace(tuple(key))
        _decode_node(path, namespace, namespace._root, 0, entry["trie"])


def load_store_file(path: Path, store) -> None:
    """Load ``path`` into ``store``; raise :class:`StoreCorruptionError` on damage.

    Nothing is partially loaded: when loading fails the store is returned
    to the namespaces it held before the call.
    """
    try:
        raw = json.loads(path.read_text())
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptionError(
            f"prefix store file {path} is unreadable or corrupted ({exc}); "
            "delete it to start with an empty store"
        ) from exc
    if not is_store_document(raw):
        raise _corrupt(path, "not a repro-prefix-store document")
    snapshot = dict(store._namespaces)
    try:
        load_store_document(path, raw, store)
    except Exception:
        store._namespaces.clear()
        store._namespaces.update(snapshot)
        raise

"""Asyncio measurement-store server: one owner process per corpus.

PR 8's file layer made a shared ``--cache-path`` corpus safe: every writer
takes an advisory ``fcntl`` lock per save and replays the other writers'
appends before its own.  Correct — but N local workers then serialise on
the lock (plus a catch-up parse) for every row they save, and a corpus
cannot be shared across machines at all.  This server is the next shape
the ROADMAP names: a thin asyncio service that **owns** the
:class:`~repro.store.shards.ShardedStore` and exposes
``lookup``/``record``/``save``/``compact`` over a Unix or TCP socket
(length-prefixed JSON frames, see :mod:`repro.store.client`).

Concurrency model — **one task per shard**:

* every namespace key gets its own :class:`asyncio.Queue` drained by a
  dedicated shard task, so appends to *different* shards never serialise
  on anything (each task does its file work in the default thread-pool
  executor, off the event loop);
* requests for the *same* shard queue up behind each other — and the
  shard task **group-commits**: it drains everything queued, replays all
  the records in memory, then persists once.  Four clients saving one
  record each into a hot shard cost one ``fsync``, not four;
* the server persists through the exact same
  :meth:`~repro.store.prefix_store.PrefixStore.save` path as a direct
  writer — advisory ``fcntl`` lock, catch-up replay, append — so a
  direct-file writer appending underneath a running server is replayed
  (and conflicts surface as :class:`~repro.errors.NonDeterminismError`),
  and a direct writer taking the lock sees the server's appends.  The
  on-disk protocol stays the single source of truth; the server is a
  cache + serialisation layer over the same shards.

Run standalone::

    python -m repro.store.server --path corpus.shards \\
        --listen unix:///tmp/corpus.sock

The process prints ``LISTENING <address>`` once the socket is bound (with
the real port for ``tcp://host:0``) and flushes every loaded shard on
``SIGTERM``/``SIGINT``.  Tests embed it with :func:`serve_in_thread`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StoreError
from repro.store.client import (
    decode_word,
    error_response,
    is_server_address,
    parse_address,
)
from repro.store.codec import (
    STORE_FORMAT,
    STORE_VERSION,
    decode_delta_entry,
    encode_delta_record,
)

# Symbol codecs for Line/Evict trie symbols register on import, so shard
# files written by learning runs decode on this side of the socket too.
import repro.learning.query_engine  # noqa: F401  (registers symbol codecs)

#: Wire origin used in decode diagnostics for records arriving by socket.
_WIRE = Path("<wire>")


class _ShardWork:
    """One queued unit of shard work: run ``apply`` in the shard's task,
    persist the shard afterwards when ``persist`` is set."""

    __slots__ = ("apply", "persist", "future")

    def __init__(self, apply, persist: bool, future: asyncio.Future) -> None:
        self.apply = apply
        self.persist = persist
        self.future = future


class StoreServer:
    """Serve one store (sharded corpus or single file) over a socket."""

    def __init__(self, store, address: str) -> None:
        self.store = store
        self.address = address
        self._scheme, self._target = parse_address(address)
        self._queues: Dict[object, asyncio.Queue] = {}
        self._tasks: Dict[object, asyncio.Task] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self.bound_address = address

    # ---------------------------------------------------------- shard routing

    def _queue_key(self, key: Tuple) -> object:
        """Single-file stores have exactly one append log: one queue."""
        return key if getattr(self.store, "sharded", False) else None

    def _shard_store(self, key: Optional[Tuple]):
        """The PrefixStore holding ``key`` (lazily loaded; executor-side)."""
        if key is not None and getattr(self.store, "sharded", False):
            return self.store._shard(key)
        return self.store

    def _queue_for(self, queue_key: object) -> asyncio.Queue:
        queue = self._queues.get(queue_key)
        if queue is None:
            queue = asyncio.Queue()
            self._queues[queue_key] = queue
            self._tasks[queue_key] = asyncio.create_task(
                self._shard_task(queue_key, queue)
            )
        return queue

    async def _submit(self, key: Tuple, apply, *, persist: bool):
        """Enqueue work on ``key``'s shard task and await its result."""
        future = asyncio.get_running_loop().create_future()
        await self._queue_for(self._queue_key(key)).put(
            _ShardWork(apply, persist, future)
        )
        return await future

    async def _shard_task(self, queue_key: object, queue: asyncio.Queue) -> None:
        """Drain one shard's queue forever, group-committing each drain."""
        loop = asyncio.get_running_loop()
        while True:
            batch = [await queue.get()]
            while not queue.empty():
                batch.append(queue.get_nowait())
            results = await loop.run_in_executor(
                None, self._execute_batch, queue_key, batch
            )
            for work, (ok, value) in zip(batch, results):
                if work.future.cancelled():  # pragma: no cover - client died
                    continue
                if ok:
                    work.future.set_result(value)
                else:
                    work.future.set_exception(value)

    def _execute_batch(self, queue_key: object, batch: List[_ShardWork]):
        """Run a drained batch in a worker thread: apply all, persist once.

        Per-item exceptions (e.g. a conflicting record's
        ``NonDeterminismError``) fail only that item; a failing persist
        fails every item that asked for one.
        """
        results: List[Tuple[bool, object]] = []
        persist = False
        for work in batch:
            try:
                results.append((True, work.apply()))
                persist = persist or work.persist
            except Exception as exc:
                results.append((False, exc))
        if persist:
            try:
                self._shard_store(queue_key).save()
            except Exception as exc:
                results = [
                    (False, exc) if ok and work.persist else (ok, value)
                    for work, (ok, value) in zip(batch, results)
                ]
        return results

    # ------------------------------------------------------------- operations

    def _apply_pull(self, key: Tuple) -> dict:
        """Executor-side: catch up on external appends, dump the namespace."""
        shard = self._shard_store(key)
        shard.save()  # takes the fcntl lock; replays direct writers' appends
        namespace = shard.namespace(key)
        paths = [
            encode_delta_record(key, word, payloads, terminal)
            for word, payloads, terminal in namespace.iter_paths()
        ]
        response = {"ok": True, "paths": paths, "entries": namespace.entry_count}
        report = getattr(shard, "load_report", None)
        if report is not None:
            response["recovered_records"] = report.recovered_records
            response["discarded_bytes"] = report.discarded_bytes
        return response

    def _apply_batch_records(self, key: Tuple, batch: dict) -> dict:
        """Executor-side: replay one save/record batch into the live store."""
        shard = self._shard_store(key)
        namespace = shard.namespace(key)
        if batch.get("clear"):
            namespace.clear()
        replayed = 0
        for entry in batch.get("records", []):
            record = decode_delta_entry(_WIRE, entry)
            namespace.record(record.word, record.payloads, terminal=record.terminal)
            replayed += 1
        return {"ok": True, "replayed": replayed}

    def _apply_lookup(self, key: Tuple, word: Sequence[str]) -> dict:
        namespace = self._shard_store(key).namespace(key)
        payloads = namespace.lookup(decode_word(word))
        return {
            "ok": True,
            "payloads": list(payloads) if payloads is not None else None,
        }

    def _apply_compact(self, key: Tuple) -> dict:
        self._shard_store(key).compact()
        return {"ok": True}

    async def _retry_concurrent(self, fn, attempts: int = 5):
        """Run a cross-shard read in the executor, retrying the (benign)
        dict-changed-during-iteration race with a concurrently loading
        shard task."""
        loop = asyncio.get_running_loop()
        for attempt in range(attempts):
            try:
                return await loop.run_in_executor(None, fn)
            except RuntimeError:  # pragma: no cover - needs an exact race
                if attempt == attempts - 1:
                    raise
                await asyncio.sleep(0.01)

    async def dispatch(self, request: dict) -> dict:
        """Route one decoded request frame to its operation."""
        op = request.get("op")
        if op == "hello":
            return {
                "ok": True,
                "format": STORE_FORMAT,
                "version": STORE_VERSION,
                "sharded": bool(getattr(self.store, "sharded", False)),
                "path": str(getattr(self.store, "path", None)),
                "pid": os.getpid(),
            }
        if op == "pull":
            key = tuple(request["key"])
            return await self._submit(
                key, lambda: self._apply_pull(key), persist=False
            )
        if op == "lookup":
            key = tuple(request["key"])
            word = request.get("word", [])
            return await self._submit(
                key, lambda: self._apply_lookup(key, word), persist=False
            )
        if op == "record":
            key = tuple(request["key"])
            return await self._submit(
                key,
                lambda: self._apply_batch_records(key, request),
                persist=False,
            )
        if op == "save":
            waits = []
            for batch in request.get("batches", []):
                key = tuple(batch["key"])
                waits.append(
                    self._submit(
                        key,
                        lambda key=key, batch=batch: self._apply_batch_records(
                            key, batch
                        ),
                        persist=True,
                    )
                )
            replayed = 0
            for wait in waits:
                response = await wait
                replayed += response.get("replayed", 0)
            if request.get("compact"):
                await self._compact_all()
            return {"ok": True, "replayed": replayed}
        if op == "compact":
            if "key" in request and request["key"] is not None:
                key = tuple(request["key"])
                return await self._submit(
                    key, lambda: self._apply_compact(key), persist=False
                )
            await self._compact_all()
            return {"ok": True}
        if op == "clear":
            await self._retry_concurrent(self.store.clear)
            return {"ok": True}
        if op == "namespaces":
            keys = await self._retry_concurrent(self.store.namespaces)
            return {"ok": True, "keys": [list(key) for key in keys]}
        if op == "statistics":
            stats = await self._retry_concurrent(self.store.statistics)
            return {"ok": True, "statistics": stats}
        raise StoreError(f"store server does not understand op {op!r}")

    async def _compact_all(self) -> None:
        keys = await self._retry_concurrent(self.store.namespaces)
        if not keys and not getattr(self.store, "sharded", False):
            keys = [()]
        waits = [
            self._submit(key, lambda key=key: self._apply_compact(key), persist=False)
            for key in keys
        ]
        for wait in waits:
            await wait

    # ------------------------------------------------------------- connection

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    prefix = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return
                length = int.from_bytes(prefix, "big")
                body = await reader.readexactly(length)
                try:
                    request = json.loads(body)
                    response = await self.dispatch(request)
                except Exception as exc:
                    response = error_response(exc)
                payload = json.dumps(response, separators=(",", ":")).encode()
                writer.write(len(payload).to_bytes(4, "big") + payload)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            return
        except asyncio.CancelledError:
            # Shutdown cancels open connections; swallow so teardown is
            # silent (the StreamReaderProtocol callback re-logs otherwise).
            return
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

    # --------------------------------------------------------------- lifecycle

    async def start(self) -> str:
        """Bind the socket; return the bound address (real port for :0)."""
        if self._scheme == "unix":
            socket_path = Path(self._target)
            if socket_path.exists():
                socket_path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(socket_path)
            )
            self.bound_address = f"unix://{socket_path}"
        else:
            host, port = self._target
            self._server = await asyncio.start_server(
                self._handle_client, host=host or "127.0.0.1", port=port
            )
            bound = self._server.sockets[0].getsockname()
            self.bound_address = f"tcp://{bound[0]}:{bound[1]}"
        return self.bound_address

    async def flush(self) -> None:
        """Persist every dirty shard (the SIGTERM/shutdown path)."""
        try:
            await self._retry_concurrent(self.store.save)
        except Exception:  # pragma: no cover - best-effort shutdown flush
            pass

    async def stop(self) -> None:
        await self.flush()
        for task in self._tasks.values():
            task.cancel()
        self._tasks.clear()
        self._queues.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._scheme == "unix":
            try:
                Path(self._target).unlink()
            except OSError:
                pass

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()


# ------------------------------------------------------------- test embedding


class ServerHandle:
    """A store server running on a daemon thread (for tests and benchmarks)."""

    def __init__(self, server: StoreServer, loop, thread) -> None:
        self.server = server
        self.address = server.bound_address
        self._loop = loop
        self._thread = thread
        self._stopped = False

    def stop(self, timeout: float = 10.0) -> None:
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop)
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)


def serve_in_thread(store, address: str, *, ready_timeout: float = 10.0) -> ServerHandle:
    """Start a :class:`StoreServer` on a background thread; return its handle."""
    server = StoreServer(store, address)
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    startup_error: List[BaseException] = []

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            try:
                await server.start()
            except BaseException as exc:  # pragma: no cover - bad address
                startup_error.append(exc)
            finally:
                ready.set()

        loop.run_until_complete(boot())
        if not startup_error:
            loop.run_forever()
            # Finalize whatever is still pending (open client handlers)
            # before closing the loop, so shutdown is silent.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        loop.close()

    thread = threading.Thread(target=run, name="store-server", daemon=True)
    thread.start()
    if not ready.wait(ready_timeout):  # pragma: no cover - startup hang
        raise StoreError(f"store server on {address} did not start in time")
    if startup_error:
        thread.join()
        raise StoreError(
            f"store server failed to bind {address}: {startup_error[0]}"
        ) from startup_error[0]
    return ServerHandle(server, loop, thread)


# ----------------------------------------------------------------- standalone


async def _amain(store, address: str) -> int:
    server = StoreServer(store, address)
    bound = await server.start()
    print(f"LISTENING {bound}", flush=True)
    stop_event = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signal_name in ("SIGTERM", "SIGINT"):
        import signal as signal_module

        loop.add_signal_handler(
            getattr(signal_module, signal_name), stop_event.set
        )
    serve = asyncio.create_task(server.serve_forever())
    await stop_event.wait()
    serve.cancel()
    await server.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve a measurement-store corpus over a socket"
    )
    parser.add_argument(
        "--path",
        required=True,
        metavar="CORPUS",
        help="store to serve: a directory/.shards path (sharded corpus) or a "
        "single store file",
    )
    parser.add_argument(
        "--listen",
        required=True,
        metavar="ADDR",
        help="unix:///path/to.sock or tcp://host:port (port 0 picks a free "
        "port; the bound address is printed as LISTENING <addr>)",
    )
    arguments = parser.parse_args(argv)
    if is_server_address(arguments.path):
        parser.error("--path is the on-disk corpus, not a server address")
    from repro.store.shards import open_store

    store = open_store(arguments.path)
    return asyncio.run(_amain(store, arguments.listen))


if __name__ == "__main__":  # pragma: no cover - exercised as a subprocess
    raise SystemExit(main())

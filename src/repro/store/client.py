"""Synchronous client for the measurement-store server (and its wire protocol).

The server (:mod:`repro.store.server`) owns a
:class:`~repro.store.shards.ShardedStore` and serialises every shard's
appends on one asyncio task, so N writers stop paying an advisory-lock +
catch-up round-trip per save.  :class:`RemoteStore` is the client half: a
synchronous facade exposing the same namespace surface
:class:`~repro.store.prefix_store.PrefixStore` gives to the query engine
and the CacheQuery frontend, so ``ResponseTrie(store=RemoteStore(...))``
and ``QueryCache(store=RemoteStore(...))`` work unchanged.

Design:

* **local mirror, remote truth** — every namespace keeps an in-memory
  :class:`~repro.store.prefix_store.PrefixNamespace` mirror, populated by
  one ``pull`` round-trip when the namespace is first opened (the server
  catches up on direct-file appends before answering, so a warm start over
  a populated corpus re-executes 0 queries).  Lookups are served locally;
  records apply to the mirror (raising
  :class:`~repro.errors.NonDeterminismError` immediately on a local
  conflict) and buffer as pending delta records;
* **one round-trip per save** — :meth:`RemoteStore.save` ships every
  namespace's pending records in a single ``save`` frame; the server
  replays them into its store (cross-client conflicts come back as a
  ``NonDeterminismError`` response and re-raise here, at the recording
  client) and persists the touched shards under the same ``fcntl`` locks
  direct-file writers take — mixed server/direct access stays safe;
* **reconnect-and-resend** — the protocol is stateless and records are
  idempotent replays, so a connection dropped mid-save (server restart,
  network blip) is retried transparently on a fresh connection.

Wire protocol: each frame is a 4-byte big-endian length prefix followed by
one UTF-8 JSON object.  Requests carry ``{"op": ..., ...}``; responses
``{"ok": true, ...}`` or ``{"ok": false, "error": <class>, "message": ...}``.
Words travel in the store codec's symbol encoding
(:func:`~repro.store.codec.encode_symbol`), so registered symbol types
(``Line``/``Evict``) cross the wire exactly as they cross the disk.

Addresses are spelled ``unix:///path/to.sock`` or ``tcp://host:port``;
:func:`~repro.store.shards.open_store` recognises both, so
``--cache-path unix:///…`` and ``--store-server`` reach the same place.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import NonDeterminismError, StoreCorruptionError, StoreError
from repro.store.codec import (
    decode_delta_entry,
    decode_symbol,
    encode_delta_record,
    encode_symbol,
)
from repro.store.prefix_store import NamespaceKey, PrefixNamespace

#: Address-scheme prefixes :func:`parse_address` (and ``open_store``) accept.
ADDRESS_SCHEMES = ("unix://", "tcp://")

_LENGTH = struct.Struct(">I")

#: Refuse frames above this size: a length prefix this large means the
#: stream desynchronised (or a hostile peer), not a real payload.
MAX_FRAME_BYTES = 512 * 1024 * 1024


def is_server_address(path) -> bool:
    """True when ``path`` is a store-server address, not a filesystem path."""
    return isinstance(path, str) and path.startswith(ADDRESS_SCHEMES)


def parse_address(address: str) -> Tuple[str, object]:
    """Parse ``unix:///path`` / ``tcp://host:port`` into ``(scheme, target)``.

    Returns ``("unix", "/path")`` or ``("tcp", (host, port))``; raises
    :class:`~repro.errors.StoreError` on anything else.
    """
    if not isinstance(address, str) or not is_server_address(address):
        raise StoreError(
            f"store-server address {address!r} must start with unix:// or tcp:// "
            '(e.g. "unix:///tmp/corpus.sock" or "tcp://127.0.0.1:9970")'
        )
    if address.startswith("unix://"):
        path = address[len("unix://") :]
        if not path:
            raise StoreError(f"unix store-server address {address!r} has no socket path")
        return "unix", path
    rest = address[len("tcp://") :]
    host, separator, port_text = rest.rpartition(":")
    if not separator or not host:
        raise StoreError(
            f"tcp store-server address {address!r} must be tcp://host:port"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise StoreError(
            f"tcp store-server address {address!r} has a non-integer port"
        ) from exc
    return "tcp", (host, port)


# ------------------------------------------------------------------- framing


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Write one length-prefixed JSON frame."""
    body = json.dumps(payload, separators=(",", ":")).encode()
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionResetError("store server closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Read one length-prefixed JSON frame."""
    length = _LENGTH.unpack(_recv_exactly(sock, _LENGTH.size))[0]
    if length > MAX_FRAME_BYTES:
        raise StoreError(
            f"store-server frame of {length} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit: the protocol stream desynchronised"
        )
    return json.loads(_recv_exactly(sock, length))


def encode_word(word: Sequence[Hashable]) -> List[str]:
    """Wire encoding of a trie word (the codec's symbol encoding)."""
    return [encode_symbol(symbol) for symbol in word]


def decode_word(symbols: Sequence[str]) -> Tuple[Hashable, ...]:
    """Invert :func:`encode_word`."""
    return tuple(decode_symbol(symbol) for symbol in symbols)


def error_response(exc: Exception) -> dict:
    """Render an exception as an ``{"ok": false, ...}`` response payload."""
    payload = {"ok": False, "error": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, NonDeterminismError):
        payload["query"] = encode_word(exc.query)
        payload["first"] = list(exc.first)
        payload["second"] = list(exc.second)
    return payload


def raise_from_response(response: dict) -> None:
    """Re-raise the error a ``{"ok": false}`` response carries."""
    error = response.get("error", "StoreError")
    message = response.get("message", "store server reported an error")
    if error in ("NonDeterminismError", "OutputLengthMismatchError"):
        raise NonDeterminismError(
            decode_word(response.get("query", [])),
            tuple(response.get("first", [])),
            tuple(response.get("second", [])),
        )
    if error == "StoreCorruptionError":
        raise StoreCorruptionError(message)
    raise StoreError(message)


# ----------------------------------------------------------------- namespaces


class _MirrorJournal:
    """Owner shim: routes a mirror namespace's change notifications to the
    :class:`RemoteNamespace` pending buffer (same hooks a
    :class:`~repro.store.prefix_store.PrefixStore` owner provides)."""

    def __init__(self, remote: "RemoteNamespace") -> None:
        self._remote = remote

    def _journal_record(self, key, word, payloads, terminal) -> None:
        self._remote._pending.append((tuple(word), tuple(payloads), bool(terminal)))

    def _note_structural_change(self) -> None:
        self._remote._cleared = True
        self._remote._pending.clear()


class RemoteNamespace:
    """One namespace of a :class:`RemoteStore`: a local mirror + pending delta.

    Exposes the full :class:`~repro.store.prefix_store.PrefixNamespace`
    surface (``lookup``/``lookup_prefix``/``covers``/``record``/``merge``/
    ``iter_entries``/``iter_paths``/``clear``/counts).  Reads are local;
    mutations buffer until the owning store's :meth:`RemoteStore.save`.
    """

    def __init__(self, store: "RemoteStore", key: NamespaceKey) -> None:
        self.key = key
        self._store = store
        self._pending: List[tuple] = []
        #: Set when :meth:`clear` ran since the last save: the server must
        #: drop the namespace before replaying pending records.
        self._cleared = False
        self._mirror = PrefixNamespace(key, owner=_MirrorJournal(self))
        self._pull()

    def _pull(self) -> None:
        """Populate the mirror from the server (which catches up on direct
        writers first, so the mirror starts no staler than the disk)."""
        response = self._store._request({"op": "pull", "key": list(self.key)})
        with self._suspended_pending():
            for entry in response.get("paths", []):
                record = decode_delta_entry(Path("<remote>"), entry)
                self._mirror.record(
                    record.word, record.payloads, terminal=record.terminal
                )

    def _suspended_pending(self):
        """Context: mirror mutations that are already durable server-side."""
        from contextlib import contextmanager

        @contextmanager
        def suspend():
            owner = self._mirror._owner
            self._mirror._owner = None
            try:
                yield
            finally:
                self._mirror._owner = owner

        return suspend()

    # Reads: served from the mirror.

    def lookup(self, word):
        return self._mirror.lookup(word)

    def lookup_prefix(self, word):
        return self._mirror.lookup_prefix(word)

    def covers(self, word):
        return self._mirror.covers(word)

    def iter_entries(self):
        return self._mirror.iter_entries()

    def iter_paths(self):
        return self._mirror.iter_paths()

    @property
    def node_count(self):
        return self._mirror.node_count

    @property
    def entry_count(self):
        return self._mirror.entry_count

    def __len__(self):
        return len(self._mirror)

    # Mutations: applied locally, buffered for the next save.

    def record(self, word, payloads=None, *, terminal: bool = True) -> bool:
        """Record into the mirror (local conflicts raise immediately) and
        buffer the delta for the next :meth:`RemoteStore.save`."""
        return self._mirror.record(word, payloads, terminal=terminal)

    def merge(self, other) -> None:
        self._mirror.merge(other)

    def clear(self) -> None:
        self._mirror.clear()

    @property
    def pending_records(self) -> int:
        return len(self._pending)


class RemoteStore:
    """Store facade over a running :mod:`repro.store.server` instance.

    Satisfies the surface consumers expect from
    :class:`~repro.store.prefix_store.PrefixStore` /
    :class:`~repro.store.shards.ShardedStore`: ``namespace``/
    ``namespaces``/``save``/``compact``/``statistics``/``clear`` plus the
    ``node_count``/``entry_count``/``pending_records`` totals (over the
    namespaces this client opened, like a sharded store's loaded shards).
    """

    #: Duck-typing markers: consumers treat a remote store like a sharded
    #: corpus (no client-side file to load or migrate).
    sharded = True
    remote = True

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 60.0,
        connect_retries: int = 10,
        retry_delay: float = 0.2,
    ) -> None:
        self.address = address
        self._scheme, self._target = parse_address(address)
        self._timeout = timeout
        self._connect_retries = connect_retries
        self._retry_delay = retry_delay
        self._sock: Optional[socket.socket] = None
        self._namespaces: Dict[NamespaceKey, RemoteNamespace] = {}
        # Fail fast on a dead address and learn what the server fronts.
        self.server_info = self._request({"op": "hello"})

    # -------------------------------------------------------------- transport

    @property
    def path(self) -> None:
        """Remote stores have no client-side backing file."""
        return None

    def _connect(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        last_error: Optional[Exception] = None
        for attempt in range(self._connect_retries + 1):
            try:
                if self._scheme == "unix":
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self._timeout)
                    sock.connect(self._target)
                else:
                    sock = socket.create_connection(
                        self._target, timeout=self._timeout
                    )
                self._sock = sock
                return sock
            except OSError as exc:
                last_error = exc
                time.sleep(self._retry_delay * (attempt + 1))
        raise StoreError(
            f"cannot connect to store server at {self.address}: {last_error}; "
            "start one with `python -m repro.store.server --listen "
            f"{self.address} --path CORPUS`"
        ) from last_error

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
            self._sock = None

    def _request(self, payload: dict) -> dict:
        """One request/response round-trip, reconnecting and resending once.

        Safe because the protocol is stateless and every mutation is an
        idempotent replay: resending a ``save`` whose response was lost
        re-records the same words with the same payloads.
        """
        last_error: Optional[Exception] = None
        for attempt in (0, 1):
            try:
                sock = self._connect()
                send_frame(sock, payload)
                response = recv_frame(sock)
                break
            except (OSError, json.JSONDecodeError, struct.error) as exc:
                last_error = exc
                self._drop_connection()
                if attempt:
                    raise StoreError(
                        f"store server at {self.address} went away mid-request "
                        f"({exc}) and did not come back"
                    ) from exc
        else:  # pragma: no cover - loop always breaks or raises
            raise StoreError(str(last_error))
        if not response.get("ok"):
            raise_from_response(response)
        return response

    def close(self) -> None:
        """Close the connection (pending records stay buffered)."""
        self._drop_connection()

    def __enter__(self) -> "RemoteStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------- namespaces

    def namespace(self, key: Sequence[Hashable]) -> RemoteNamespace:
        """Return (pulling from the server if new) the namespace for ``key``."""
        key = tuple(key)
        namespace = self._namespaces.get(key)
        if namespace is None:
            namespace = RemoteNamespace(self, key)
            self._namespaces[key] = namespace
        return namespace

    def namespaces(self) -> Tuple[NamespaceKey, ...]:
        """Every namespace key the server knows plus locally opened ones."""
        keys = list(self._namespaces)
        seen = set(keys)
        response = self._request({"op": "namespaces"})
        for raw in response.get("keys", []):
            key = tuple(raw)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return tuple(keys)

    # ------------------------------------------------------------------ totals

    @property
    def node_count(self) -> int:
        """Stored prefixes across the namespaces this client opened."""
        return sum(ns.node_count for ns in self._namespaces.values())

    @property
    def entry_count(self) -> int:
        """Recorded entries across the namespaces this client opened."""
        return sum(ns.entry_count for ns in self._namespaces.values())

    @property
    def pending_records(self) -> int:
        """Buffered records waiting for the next :meth:`save`."""
        return sum(ns.pending_records for ns in self._namespaces.values())

    def statistics(self) -> Dict[str, object]:
        """The server's corpus statistics, annotated with the client view."""
        stats = dict(self._request({"op": "statistics"}).get("statistics", {}))
        stats["remote"] = self.address
        stats["client_namespaces"] = len(self._namespaces)
        stats["pending_records"] = self.pending_records
        return stats

    def clear(self) -> None:
        """Drop every namespace, server-side included."""
        self._request({"op": "clear"})
        for namespace in self._namespaces.values():
            with namespace._suspended_pending():
                namespace._mirror.clear()
            namespace._pending.clear()
            namespace._cleared = False
        self._namespaces.clear()

    # ------------------------------------------------------------- persistence

    def save(self, path: Optional[str] = None, *, compact: bool = False) -> None:
        """Ship every namespace's pending records in one ``save`` round-trip.

        The server replays them into its store and persists the touched
        shards under their ``fcntl`` locks.  A cross-client conflict comes
        back as an error response and raises
        :class:`~repro.errors.NonDeterminismError` here — at the recording
        client — with the conflicting batch dropped (it is partially
        applied server-side, exactly like a direct writer dying mid-save).
        """
        if path is not None:
            raise StoreError(
                f"remote store {self.address} persists on the server; "
                f"saving to a local path ({path!r}) is not supported"
            )
        batches = []
        dirty = []
        for namespace in self._namespaces.values():
            if not namespace._pending and not namespace._cleared:
                continue
            batches.append(
                {
                    "key": list(namespace.key),
                    "clear": namespace._cleared,
                    "records": [
                        encode_delta_record(namespace.key, word, payloads, terminal)
                        for word, payloads, terminal in namespace._pending
                    ],
                }
            )
            dirty.append(namespace)
        if not batches and not compact:
            return
        try:
            self._request({"op": "save", "batches": batches, "compact": compact})
        except NonDeterminismError:
            for namespace in dirty:
                namespace._pending.clear()
                namespace._cleared = False
            raise
        for namespace in dirty:
            namespace._pending.clear()
            namespace._cleared = False

    def compact(self) -> None:
        """Flush pending records, then compact the whole corpus server-side."""
        self.save(compact=True)

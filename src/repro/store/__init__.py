"""Shared prefix-trie storage: the substrate under every response cache.

Public surface:

* :class:`~repro.store.prefix_store.PrefixStore` /
  :class:`~repro.store.prefix_store.PrefixNamespace` — the namespaced
  symbol-keyed trie both the learning engine's ``ResponseTrie`` and the
  CacheQuery frontend's ``QueryCache`` are views over;
* the codec helpers of :mod:`repro.store.codec` — versioned atomic
  persistence with corruption diagnostics and the symbol registry for
  non-string trie symbols.
"""

from repro.store.codec import (
    STORE_FORMAT,
    STORE_VERSION,
    decode_symbol,
    encode_symbol,
    is_store_document,
    register_symbol_codec,
)
from repro.store.prefix_store import PrefixNamespace, PrefixStore

__all__ = [
    "PrefixNamespace",
    "PrefixStore",
    "STORE_FORMAT",
    "STORE_VERSION",
    "decode_symbol",
    "encode_symbol",
    "is_store_document",
    "register_symbol_codec",
]

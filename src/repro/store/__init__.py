"""Shared prefix-trie storage: the substrate under every response cache.

Public surface:

* :class:`~repro.store.prefix_store.PrefixStore` /
  :class:`~repro.store.prefix_store.PrefixNamespace` — the namespaced
  symbol-keyed trie both the learning engine's ``ResponseTrie`` and the
  CacheQuery frontend's ``QueryCache`` are views over;
* :class:`~repro.store.shards.ShardedStore` / :func:`~repro.store.shards.open_store`
  — directory-backed corpora with one append-log file (and one writer
  lock) per namespace key, and the path-polymorphic opener behind
  ``--cache-path``;
* :class:`~repro.store.client.RemoteStore` /
  :func:`~repro.store.client.parse_address` — the synchronous client for
  the asyncio measurement-store server (:mod:`repro.store.server`), which
  owns a corpus behind a ``unix://``/``tcp://`` socket so N writers stop
  serialising on per-save ``fcntl`` locks (``open_store`` recognises the
  addresses too);
* the codec helpers of :mod:`repro.store.codec` — the version-2 append-log
  persistence (v1 read-compatible) with corruption diagnostics, the
  symbol registry for non-string trie symbols, and the
  :func:`~repro.store.codec.track_store_io` byte-count instrumentation
  the O(delta) regression tests assert on.
"""

from repro.store.client import RemoteStore, is_server_address, parse_address
from repro.store.codec import (
    LoadReport,
    STORE_FORMAT,
    STORE_VERSION,
    StoreIO,
    decode_symbol,
    encode_symbol,
    is_store_document,
    register_symbol_codec,
    track_store_io,
)
from repro.store.prefix_store import AUTO_COMPACT_MIN_BYTES, PrefixNamespace, PrefixStore
from repro.store.shards import ShardedStore, open_store, shard_filename

__all__ = [
    "AUTO_COMPACT_MIN_BYTES",
    "LoadReport",
    "PrefixNamespace",
    "PrefixStore",
    "RemoteStore",
    "STORE_FORMAT",
    "STORE_VERSION",
    "ShardedStore",
    "StoreIO",
    "decode_symbol",
    "encode_symbol",
    "is_server_address",
    "is_store_document",
    "open_store",
    "parse_address",
    "register_symbol_codec",
    "shard_filename",
    "track_store_io",
]

"""Shared prefix-trie storage: the substrate under every response cache.

Public surface:

* :class:`~repro.store.prefix_store.PrefixStore` /
  :class:`~repro.store.prefix_store.PrefixNamespace` — the namespaced
  symbol-keyed trie both the learning engine's ``ResponseTrie`` and the
  CacheQuery frontend's ``QueryCache`` are views over;
* :class:`~repro.store.shards.ShardedStore` / :func:`~repro.store.shards.open_store`
  — directory-backed corpora with one append-log file (and one writer
  lock) per namespace key, and the path-polymorphic opener behind
  ``--cache-path``;
* the codec helpers of :mod:`repro.store.codec` — the version-2 append-log
  persistence (v1 read-compatible) with corruption diagnostics, the
  symbol registry for non-string trie symbols, and the
  :func:`~repro.store.codec.track_store_io` byte-count instrumentation
  the O(delta) regression tests assert on.
"""

from repro.store.codec import (
    LoadReport,
    STORE_FORMAT,
    STORE_VERSION,
    StoreIO,
    decode_symbol,
    encode_symbol,
    is_store_document,
    register_symbol_codec,
    track_store_io,
)
from repro.store.prefix_store import AUTO_COMPACT_MIN_BYTES, PrefixNamespace, PrefixStore
from repro.store.shards import ShardedStore, open_store, shard_filename

__all__ = [
    "AUTO_COMPACT_MIN_BYTES",
    "LoadReport",
    "PrefixNamespace",
    "PrefixStore",
    "STORE_FORMAT",
    "STORE_VERSION",
    "ShardedStore",
    "StoreIO",
    "decode_symbol",
    "encode_symbol",
    "is_store_document",
    "open_store",
    "register_symbol_codec",
    "shard_filename",
    "track_store_io",
]

"""The shared prefix store: one trie substrate under every response cache.

Before this module existed the repository kept **two disjoint caches** for
the same underlying measurements: the learning side's ``ResponseTrie``
(prefix-sharing, in-memory only) and the CacheQuery frontend's
``QueryCache`` (flat dict keyed by full query text, JSON persistence, no
prefix sharing).  :class:`PrefixStore` is the substrate both are now thin
views over:

* a **symbol-keyed trie** per namespace — recording the answer of a word
  records the answer of every prefix in the same O(|word|) nodes, and
  looking up a word that is a prefix of a previously recorded word is a
  hit without ever having executed it;
* **per-target namespaces** — one store holds many independent tries keyed
  by tuples such as ``("mbl", level, slice, set)`` (the frontend's response
  cache for one hardware cache set) or ``("learning", policy, assoc)``
  (the learning engine's trie), so one file can back a whole sweep;
* **partial payloads** — a node's payload may be unknown (``None``).  The
  frontend uses this for un-profiled accesses: the access is part of the
  state-determining path but no measurement exists for it.  Recording fills
  unknown payloads in and raises
  :class:`~repro.errors.NonDeterminismError` when a known payload
  disagrees — the same broken-reset detection the learning trie performs
  (paper Section 7.1);
* an **append-log on-disk codec** (version 2, :mod:`repro.store.codec`):
  every mutation since the last save is journaled, so saving appends only
  the delta — O(changes), not O(store) — with periodic compaction back to
  a compact snapshot;
* a **multi-writer file protocol**: saves take an advisory ``fcntl`` lock
  on a sibling ``<file>.lock``, first replay whatever other writers
  appended (or a whole compacted file) into memory — raising
  :class:`~repro.errors.NonDeterminismError` when two writers measured
  the same prefix differently — and only then append their own delta.
  Readers never lock: they tolerate a concurrent appender by dropping a
  torn final line (see :class:`~repro.store.codec.LoadReport`).

The store is deliberately generic: symbols are hashable keys (strings
persist natively; other types persist through the codec's symbol registry),
payloads are JSON scalars, and no learning- or MBL-specific logic lives
here.  For corpora shared by many independent sweeps, see
:class:`~repro.store.shards.ShardedStore`, which spreads namespaces over
one file (one lock, one log) per namespace key.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NonDeterminismError, StoreCorruptionError, StoreError

try:  # pragma: no cover - POSIX everywhere we run; gate for portability
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: One-time flag: the first locked operation on a platform without
#: ``fcntl`` warns that the multi-writer protocol is running unlocked.
_warned_fcntl_missing = False


def _warn_fcntl_missing() -> None:
    global _warned_fcntl_missing
    if _warned_fcntl_missing:
        return
    _warned_fcntl_missing = True
    warnings.warn(
        "fcntl is unavailable on this platform: the measurement store cannot "
        "lock out concurrent writers; a second writer touching this file "
        "will be detected on catch-up and rejected with a StoreError instead "
        "of risking corruption (use the store server, repro.store.server, to "
        "share a corpus without fcntl)",
        RuntimeWarning,
        stacklevel=4,
    )

Symbol = Hashable
Payload = Optional[Hashable]
Word = Tuple[Symbol, ...]
NamespaceKey = Tuple[Hashable, ...]

#: Append-log bytes that trigger an automatic compaction on save: the log
#: must exceed both this floor and the snapshot it extends (so small
#: stores never churn and big stores compact once the replay cost of the
#: tail rivals the snapshot itself).
AUTO_COMPACT_MIN_BYTES = 64 * 1024


class _StoreNode:
    """One trie node: the payload of the edge reaching it plus its children."""

    __slots__ = ("children", "payload", "terminal")

    def __init__(self) -> None:
        self.children: Dict[Symbol, "_StoreNode"] = {}
        self.payload: Payload = None
        #: True when a word *ending* here was explicitly recorded as an entry
        #: (used for entry counting and :meth:`PrefixNamespace.iter_entries`).
        self.terminal = False


def _subtree_counts(node: _StoreNode) -> Tuple[int, int]:
    """Return ``(nodes, terminal_entries)`` of the subtree rooted at ``node``,
    the root node included."""
    nodes = 0
    entries = 0
    stack = [node]
    while stack:
        current = stack.pop()
        nodes += 1
        if current.terminal:
            entries += 1
        stack.extend(current.children.values())
    return nodes, entries


class PrefixNamespace:
    """One independent trie of a :class:`PrefixStore` (one cache target)."""

    def __init__(self, key: NamespaceKey, owner: Optional["PrefixStore"] = None) -> None:
        self.key = key
        self._root = _StoreNode()
        self._nodes = 0
        self._entries = 0
        #: The store this namespace journals its mutations to (None for
        #: standalone namespaces, e.g. scratch staging).
        self._owner = owner

    # ------------------------------------------------------------------ sizes

    @property
    def node_count(self) -> int:
        """Number of trie nodes below the root (== distinct stored prefixes)."""
        return self._nodes

    @property
    def entry_count(self) -> int:
        """Number of words explicitly recorded as entries (terminal marks)."""
        return self._entries

    def __len__(self) -> int:
        return self._nodes

    # ---------------------------------------------------------------- lookups

    def _walk(self, word: Sequence[Symbol]) -> Optional[_StoreNode]:
        node = self._root
        for symbol in word:
            node = node.children.get(symbol)
            if node is None:
                return None
        return node

    def lookup(self, word: Sequence[Symbol]) -> Optional[Tuple[Payload, ...]]:
        """Return the payloads along ``word``, or ``None`` when the path is unknown.

        The returned tuple may contain ``None`` holes for positions whose
        payload was never recorded (e.g. un-profiled accesses); callers that
        need specific positions check them.  The empty word is only
        answered (with ``()``) after it has been recorded as an entry.
        """
        node = self._root
        payloads: List[Payload] = []
        for symbol in word:
            node = node.children.get(symbol)
            if node is None:
                return None
            payloads.append(node.payload)
        if not payloads and not node.terminal:
            return None
        return tuple(payloads)

    def lookup_prefix(self, word: Sequence[Symbol]) -> Tuple[int, Tuple[Payload, ...]]:
        """Return ``(k, payloads)`` for the longest stored prefix ``word[:k]``."""
        node = self._root
        payloads: List[Payload] = []
        for symbol in word:
            child = node.children.get(symbol)
            if child is None:
                break
            payloads.append(child.payload)
            node = child
        return len(payloads), tuple(payloads)

    def covers(self, word: Sequence[Symbol]) -> bool:
        """True when ``word`` is a prefix of (or equal to) a stored path."""
        return self._walk(word) is not None

    # --------------------------------------------------------------- recording

    def record(
        self,
        word: Sequence[Symbol],
        payloads: Optional[Sequence[Payload]] = None,
        *,
        terminal: bool = True,
    ) -> bool:
        """Store ``payloads`` along ``word``; return whether the entry is new.

        ``payloads`` may be omitted (pure membership marking) or contain
        ``None`` holes; known payloads merge with stored ones.  A known
        payload that disagrees with a stored one raises
        :class:`~repro.errors.NonDeterminismError` carrying the conflicting
        prefix — the system under measurement answered the same prefix
        differently across runs.
        """
        word = tuple(word)
        if payloads is None:
            payloads = (None,) * len(word)
        else:
            payloads = tuple(payloads)
            if len(payloads) != len(word):
                raise StoreError(
                    f"word of length {len(word)} needs exactly {len(word)} "
                    f"payloads, got {len(payloads)}"
                )
        node = self._root
        stored: List[Payload] = []
        changed = False
        for position, symbol in enumerate(word):
            child = node.children.get(symbol)
            if child is None:
                child = _StoreNode()
                child.payload = payloads[position]
                node.children[symbol] = child
                self._nodes += 1
                changed = True
            elif payloads[position] is not None:
                if child.payload is None:
                    child.payload = payloads[position]
                    changed = True
                elif child.payload != payloads[position]:
                    raise NonDeterminismError(
                        word[: position + 1],
                        stored + [child.payload],
                        payloads[: position + 1],
                    )
            stored.append(child.payload)
            node = child
        new_entry = terminal and not node.terminal
        if new_entry:
            node.terminal = True
            self._entries += 1
            changed = True
        if changed and self._owner is not None:
            self._owner._journal_record(self.key, word, payloads, terminal)
        return new_entry

    # --------------------------------------------------------------- merging

    def merge(self, other: "PrefixNamespace") -> None:
        """Merge another namespace's trie into this one.

        Subtrees absent here are grafted wholesale (``other`` must be
        discarded afterwards — its nodes are shared, not copied); shared
        paths merge payloads with the usual conflict rule: a known payload
        that disagrees raises :class:`~repro.errors.NonDeterminismError`.
        This is the staging primitive behind all-or-nothing file loading:
        decode into a scratch namespace first, merge only on full success.
        """
        stack: List[Tuple[_StoreNode, _StoreNode, Word]] = [(self._root, other._root, ())]
        while stack:
            mine, theirs, prefix = stack.pop()
            if theirs.terminal and not mine.terminal:
                mine.terminal = True
                self._entries += 1
            for symbol, their_child in theirs.children.items():
                word = prefix + (symbol,)
                my_child = mine.children.get(symbol)
                if my_child is None:
                    mine.children[symbol] = their_child
                    nodes, entries = _subtree_counts(their_child)
                    self._nodes += nodes
                    self._entries += entries
                    continue
                if their_child.payload is not None:
                    if my_child.payload is None:
                        my_child.payload = their_child.payload
                    elif my_child.payload != their_child.payload:
                        raise NonDeterminismError(
                            word, (my_child.payload,), (their_child.payload,)
                        )
                stack.append((my_child, their_child, word))
        if self._owner is not None:
            # Journal the graft as replayable records.  Re-journaling paths
            # this trie already held is harmless (replay is idempotent) and
            # the next compaction folds the log back into the snapshot.
            for word, payloads, terminal in other.iter_paths():
                self._owner._journal_record(self.key, word, payloads, terminal)

    # -------------------------------------------------------------- iteration

    def iter_entries(self) -> Iterator[Tuple[Word, Tuple[Payload, ...]]]:
        """Yield every recorded entry as ``(word, payloads)``, in trie order."""
        stack: List[Tuple[_StoreNode, Word, Tuple[Payload, ...]]] = [(self._root, (), ())]
        while stack:
            node, word, payloads = stack.pop()
            if node.terminal:
                yield word, payloads
            for symbol in sorted(node.children, key=repr, reverse=True):
                child = node.children[symbol]
                stack.append((child, word + (symbol,), payloads + (child.payload,)))

    def iter_paths(self) -> Iterator[Tuple[Word, Tuple[Payload, ...], bool]]:
        """Yield ``(word, payloads, terminal)`` records that rebuild this trie.

        Every maximal path (leaf) and every terminal-marked node is
        yielded, so replaying the records through :meth:`record`
        reconstructs the exact node set, payloads and terminal marks —
        the delta-journal encoding of a whole namespace.
        """
        if self._root.terminal:
            yield (), (), True
        stack: List[Tuple[_StoreNode, Word, Tuple[Payload, ...]]] = [(self._root, (), ())]
        while stack:
            node, word, payloads = stack.pop()
            for symbol in sorted(node.children, key=repr, reverse=True):
                child = node.children[symbol]
                child_word = word + (symbol,)
                child_payloads = payloads + (child.payload,)
                if child.terminal or not child.children:
                    yield child_word, child_payloads, child.terminal
                stack.append((child, child_word, child_payloads))

    def clear(self) -> None:
        """Drop every stored path and entry."""
        self._root = _StoreNode()
        self._nodes = 0
        self._entries = 0
        if self._owner is not None:
            self._owner._note_structural_change()


class PrefixStore:
    """A namespaced collection of prefix tries with optional persistence.

    ``PrefixStore(path)`` loads the file when it exists (the v2 append-log
    codec, the v1 whole-file codec — migrated to v2 on open — and, for
    callers that route through
    :class:`~repro.cachequery.querycache.QueryCache`, legacy flat-JSON
    caches via migration); :meth:`save` appends the journaled delta since
    the last save, compacting back to a snapshot when the log outgrows it.
    A store without a path is purely in-memory and journals nothing.
    """

    #: Duck-typing marker consumers use to tell file-backed stores from
    #: directory-backed :class:`~repro.store.shards.ShardedStore` corpora.
    sharded = False

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        header_extra: Optional[dict] = None,
    ) -> None:
        self._path = Path(path) if path is not None else None
        self._namespaces: Dict[NamespaceKey, PrefixNamespace] = {}
        #: Replayable mutation records (key, word, payloads, terminal)
        #: accumulated since the last save; only kept for path-backed stores.
        self._journal: List[tuple] = []
        self._journal_suspended = 0
        #: Extra header fields persisted in the v2 header line (e.g. the
        #: shard key a :class:`~repro.store.shards.ShardedStore` stamps).
        self.header_extra = dict(header_extra) if header_extra else {}
        #: Set when the in-memory state cannot be expressed as an append
        #: (cleared namespaces, adopted pre-existing data, v1 migration):
        #: the next save rewrites a full snapshot.
        self._needs_snapshot = False
        #: Log-position bookkeeping for the multi-writer protocol: the
        #: compaction generation and byte offset this process has synced
        #: to.  ``generation=-1`` forces a full re-read on the next save.
        self._generation = -1
        self._synced_offset = 0
        self._snapshot_end = 0
        #: :class:`~repro.store.codec.LoadReport` of the last file load
        #: (None for fresh/in-memory stores).
        self.load_report = None
        if self._path is not None and self._path.exists():
            from repro.store.codec import load_store_file

            with self._suspended_journal():
                self.load_report = load_store_file(self._path, self)
            self._generation = self.load_report.generation
            self._synced_offset = self.load_report.valid_end
            self._snapshot_end = self.load_report.snapshot_end
            if self.load_report.header_extra and not self.header_extra:
                self.header_extra = dict(self.load_report.header_extra)
            if self.load_report.migrated:
                self._migrate_on_open()

    # -------------------------------------------------------------- journaling

    @property
    def path(self) -> Optional[Path]:
        """The backing file (None for in-memory stores)."""
        return self._path

    @path.setter
    def path(self, value) -> None:
        self._path = Path(value) if value is not None else None
        self._generation = -1
        self._synced_offset = 0
        self._snapshot_end = 0
        if self._namespaces:
            # Data recorded before the path existed was never journaled:
            # the first save must write a full snapshot.
            self._needs_snapshot = True

    def _journal_record(self, key, word, payloads, terminal) -> None:
        if self._path is None or self._journal_suspended:
            return
        self._journal.append((key, tuple(word), tuple(payloads), bool(terminal)))

    def _note_structural_change(self) -> None:
        """A mutation happened that an append cannot express (e.g. clear)."""
        self._needs_snapshot = True
        self._journal.clear()

    def require_snapshot(self) -> None:
        """Force the next :meth:`save` to rewrite a full snapshot.

        Callers use this after adopting content that is not a v2 append
        log — e.g. :class:`~repro.cachequery.querycache.QueryCache`
        migrating a legacy flat-JSON cache in place.
        """
        self._note_structural_change()

    @contextmanager
    def _suspended_journal(self):
        """Mutations inside the block are already durable — don't journal them."""
        self._journal_suspended += 1
        try:
            yield
        finally:
            self._journal_suspended -= 1

    @property
    def pending_records(self) -> int:
        """Journal records waiting for the next :meth:`save`."""
        return len(self._journal)

    # -------------------------------------------------------------- namespaces

    def namespace(self, key: Sequence[Hashable]) -> PrefixNamespace:
        """Return (creating if needed) the namespace for ``key``."""
        key = tuple(key)
        namespace = self._namespaces.get(key)
        if namespace is None:
            namespace = PrefixNamespace(key, owner=self)
            self._namespaces[key] = namespace
        return namespace

    def namespaces(self) -> Tuple[NamespaceKey, ...]:
        """The keys of every namespace currently in the store."""
        return tuple(self._namespaces)

    def drop_namespace(self, key: Sequence[Hashable]) -> None:
        """Remove one namespace (a no-op when it does not exist)."""
        dropped = self._namespaces.pop(tuple(key), None)
        if dropped is not None:
            self._note_structural_change()

    # ------------------------------------------------------------------ totals

    @property
    def node_count(self) -> int:
        """Total stored prefixes across all namespaces."""
        return sum(ns.node_count for ns in self._namespaces.values())

    @property
    def entry_count(self) -> int:
        """Total recorded entries across all namespaces."""
        return sum(ns.entry_count for ns in self._namespaces.values())

    def statistics(self) -> Dict[str, object]:
        """Size summary for reports: namespaces, entries, nodes, on-disk bytes."""
        on_disk = (
            self._path.stat().st_size
            if self._path is not None and self._path.exists()
            else 0
        )
        return {
            "path": str(self._path) if self._path is not None else None,
            "namespaces": len(self._namespaces),
            "entries": self.entry_count,
            "nodes": self.node_count,
            "bytes_on_disk": on_disk,
            "generation": self._generation,
            "log_bytes": max(0, self._synced_offset - self._snapshot_end),
            "pending_records": len(self._journal),
            "sharded": False,
        }

    def clear(self) -> None:
        """Drop every namespace."""
        self._namespaces.clear()
        self._note_structural_change()

    # ------------------------------------------------------------- persistence

    @contextmanager
    def _writer_lock(self):
        """Advisory exclusive lock serialising writers on this store file.

        The lock lives on a sibling ``<file>.lock`` that is never replaced,
        so it survives compaction's :func:`os.replace` of the store file
        itself.  Readers never take it.
        """
        if fcntl is None:
            # No lock to take: warn once that writers are unserialised; the
            # catch-up step rejects a detected second writer cleanly.
            _warn_fcntl_missing()
            yield
            return
        lock_path = self._path.parent / f"{self._path.name}.lock"
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            # The unlock + close MUST stay in this finally: an exception
            # from the locked body (NonDeterminismError or
            # StoreCorruptionError raised during catch-up) would otherwise
            # leak the held lock fd for the life of the process, stalling
            # every sibling writer on this file.
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def _migrate_on_open(self) -> None:
        """Rewrite a just-loaded v1 file in the v2 append-log format."""
        from repro.store.codec import STORE_VERSION, read_header, write_snapshot_file

        try:
            with self._writer_lock():
                # Re-check under the lock: another process may have migrated
                # (and appended!) between our read and our lock acquisition.
                version, _generation = read_header(self._path)
                if version < STORE_VERSION:
                    size = write_snapshot_file(self._path, self, 1, self.header_extra)
                    self._generation = 1
                    self._snapshot_end = size
                    self._synced_offset = size
                    return
        except OSError:  # pragma: no cover - read-only media: defer migration
            pass
        # Someone else migrated first (or the write failed): our sync state
        # is unknown, so force a full catch-up before the next append.
        self._generation = -1
        self._synced_offset = 0
        self._needs_snapshot = False

    def _catch_up_locked(self) -> None:
        """Replay what other writers persisted since our last sync (lock held).

        Raises :class:`~repro.errors.NonDeterminismError` when another
        writer recorded a measurement that disagrees with ours — the
        cross-writer broken-reset signal.  Also repairs a torn tail left by
        a killed writer (safe: we hold the exclusive lock).
        """
        from repro.store.codec import (
            STORE_VERSION,
            load_store_file,
            parse_delta_tail,
            read_file_range,
            read_header,
        )

        if not self._path.exists():
            self._needs_snapshot = True
            return
        try:
            version, generation = read_header(self._path)
        except StoreCorruptionError:
            if self._needs_snapshot:
                # The file holds adopted foreign content (e.g. a legacy
                # flat-JSON cache QueryCache migrated): the pending full
                # snapshot will overwrite it, nothing to catch up on.
                return
            raise
        if fcntl is None and self._generation >= 0:
            size = self._path.stat().st_size
            if generation != self._generation or size != self._synced_offset:
                # Without fcntl the writers' appends were never serialised:
                # replaying a racing writer's tail could interleave with an
                # append of ours that is still in flight.  Refuse loudly
                # instead of corrupting by luck.
                raise StoreError(
                    f"store file {self._path} changed underneath this writer "
                    f"(generation {self._generation} -> {generation}, synced "
                    f"{self._synced_offset} of {size} bytes) but fcntl "
                    "locking is unavailable on this platform: concurrent "
                    "writers cannot be serialised — route them through the "
                    "store server (repro.store.server) instead"
                )
        if version < STORE_VERSION or generation != self._generation:
            # The file was compacted (or rewritten) behind our back — or we
            # never synced: re-read it wholesale and merge.
            scratch = PrefixStore()
            report = load_store_file(self._path, scratch)
            with self._suspended_journal():
                for key in scratch.namespaces():
                    self.namespace(key).merge(scratch.namespace(key))
            if report.migrated:
                # Still v1 on disk: only a full snapshot can continue it.
                self._needs_snapshot = True
                self._generation = -1
                self._synced_offset = 0
                self._snapshot_end = 0
                return
            self._generation = report.generation
            self._snapshot_end = report.snapshot_end
            if report.discarded_bytes:
                os.truncate(self._path, report.valid_end)
            self._synced_offset = report.valid_end
            return
        tail = read_file_range(self._path, self._synced_offset)
        records, valid_end, discarded = parse_delta_tail(
            self._path, tail, self._synced_offset
        )
        with self._suspended_journal():
            for record in records:
                self.namespace(record.key).record(
                    record.word, record.payloads, terminal=record.terminal
                )
        if discarded:
            os.truncate(self._path, valid_end)
        self._synced_offset = valid_end

    def _auto_compact_due(self) -> bool:
        log_bytes = max(0, self._synced_offset - self._snapshot_end)
        return log_bytes > max(AUTO_COMPACT_MIN_BYTES, self._snapshot_end)

    def _compact_locked(self) -> None:
        """Write a fresh snapshot at the next generation (lock held)."""
        from repro.store.codec import render_snapshot, replace_file_bytes

        generation = max(self._generation, 0) + 1
        data = render_snapshot(self, generation, self.header_extra)
        replace_file_bytes(self._path, data)
        self._generation = generation
        self._snapshot_end = len(data)
        self._synced_offset = len(data)
        self._journal.clear()
        self._needs_snapshot = False

    def save(self, path: Optional[str] = None, *, compact: bool = False) -> None:
        """Persist the store: append the journaled delta (or compact).

        Saving to the store's own path is incremental — O(delta records
        since the last save) — and multi-writer safe: under the advisory
        writer lock it first replays other writers' appends (or a whole
        compacted file) into memory, raising
        :class:`~repro.errors.NonDeterminismError` when their measurements
        conflict with ours, then appends one delta line.  ``compact=True``
        (or an oversized log, or a mutation appends cannot express)
        rewrites the compact snapshot instead, bumping the generation.

        Saving to an explicit *different* path writes a full standalone
        snapshot there and leaves the store's own log state untouched.  A
        no-op for purely in-memory stores called without a path.
        """
        from repro.store.codec import append_delta, save_store_file

        target = Path(path) if path is not None else self._path
        if target is None:
            return
        if self._path is None or target != self._path:
            save_store_file(target, self)
            return
        with self._writer_lock():
            self._catch_up_locked()
            if (
                compact
                or self._needs_snapshot
                or not self._path.exists()
                or self._auto_compact_due()
            ):
                self._compact_locked()
            elif self._journal:
                written = append_delta(self._path, self._journal)
                self._synced_offset += written
                self._journal.clear()

    def compact(self) -> None:
        """Force a compaction: fold the append log back into one snapshot."""
        self.save(compact=True)

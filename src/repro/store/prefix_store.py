"""The shared prefix store: one trie substrate under every response cache.

Before this module existed the repository kept **two disjoint caches** for
the same underlying measurements: the learning side's ``ResponseTrie``
(prefix-sharing, in-memory only) and the CacheQuery frontend's
``QueryCache`` (flat dict keyed by full query text, JSON persistence, no
prefix sharing).  :class:`PrefixStore` is the substrate both are now thin
views over:

* a **symbol-keyed trie** per namespace — recording the answer of a word
  records the answer of every prefix in the same O(|word|) nodes, and
  looking up a word that is a prefix of a previously recorded word is a
  hit without ever having executed it;
* **per-target namespaces** — one store holds many independent tries keyed
  by tuples such as ``("mbl", level, slice, set)`` (the frontend's response
  cache for one hardware cache set) or ``("learning", policy, assoc)``
  (the learning engine's trie), so one file can back a whole sweep;
* **partial payloads** — a node's payload may be unknown (``None``).  The
  frontend uses this for un-profiled accesses: the access is part of the
  state-determining path but no measurement exists for it.  Recording fills
  unknown payloads in and raises
  :class:`~repro.errors.NonDeterminismError` when a known payload
  disagrees — the same broken-reset detection the learning trie performs
  (paper Section 7.1);
* a **versioned on-disk codec** with atomic writes and corruption
  diagnostics (see :mod:`repro.store.codec`).

The store is deliberately generic: symbols are hashable keys (strings
persist natively; other types persist through the codec's symbol registry),
payloads are JSON scalars, and no learning- or MBL-specific logic lives
here.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NonDeterminismError, StoreError

Symbol = Hashable
Payload = Optional[Hashable]
Word = Tuple[Symbol, ...]
NamespaceKey = Tuple[Hashable, ...]


class _StoreNode:
    """One trie node: the payload of the edge reaching it plus its children."""

    __slots__ = ("children", "payload", "terminal")

    def __init__(self) -> None:
        self.children: Dict[Symbol, "_StoreNode"] = {}
        self.payload: Payload = None
        #: True when a word *ending* here was explicitly recorded as an entry
        #: (used for entry counting and :meth:`PrefixNamespace.iter_entries`).
        self.terminal = False


def _subtree_counts(node: _StoreNode) -> Tuple[int, int]:
    """Return ``(nodes, terminal_entries)`` of the subtree rooted at ``node``,
    the root node included."""
    nodes = 0
    entries = 0
    stack = [node]
    while stack:
        current = stack.pop()
        nodes += 1
        if current.terminal:
            entries += 1
        stack.extend(current.children.values())
    return nodes, entries


class PrefixNamespace:
    """One independent trie of a :class:`PrefixStore` (one cache target)."""

    def __init__(self, key: NamespaceKey) -> None:
        self.key = key
        self._root = _StoreNode()
        self._nodes = 0
        self._entries = 0

    # ------------------------------------------------------------------ sizes

    @property
    def node_count(self) -> int:
        """Number of trie nodes below the root (== distinct stored prefixes)."""
        return self._nodes

    @property
    def entry_count(self) -> int:
        """Number of words explicitly recorded as entries (terminal marks)."""
        return self._entries

    def __len__(self) -> int:
        return self._nodes

    # ---------------------------------------------------------------- lookups

    def _walk(self, word: Sequence[Symbol]) -> Optional[_StoreNode]:
        node = self._root
        for symbol in word:
            node = node.children.get(symbol)
            if node is None:
                return None
        return node

    def lookup(self, word: Sequence[Symbol]) -> Optional[Tuple[Payload, ...]]:
        """Return the payloads along ``word``, or ``None`` when the path is unknown.

        The returned tuple may contain ``None`` holes for positions whose
        payload was never recorded (e.g. un-profiled accesses); callers that
        need specific positions check them.  The empty word is only
        answered (with ``()``) after it has been recorded as an entry.
        """
        node = self._root
        payloads: List[Payload] = []
        for symbol in word:
            node = node.children.get(symbol)
            if node is None:
                return None
            payloads.append(node.payload)
        if not payloads and not node.terminal:
            return None
        return tuple(payloads)

    def lookup_prefix(self, word: Sequence[Symbol]) -> Tuple[int, Tuple[Payload, ...]]:
        """Return ``(k, payloads)`` for the longest stored prefix ``word[:k]``."""
        node = self._root
        payloads: List[Payload] = []
        for symbol in word:
            child = node.children.get(symbol)
            if child is None:
                break
            payloads.append(child.payload)
            node = child
        return len(payloads), tuple(payloads)

    def covers(self, word: Sequence[Symbol]) -> bool:
        """True when ``word`` is a prefix of (or equal to) a stored path."""
        return self._walk(word) is not None

    # --------------------------------------------------------------- recording

    def record(
        self,
        word: Sequence[Symbol],
        payloads: Optional[Sequence[Payload]] = None,
        *,
        terminal: bool = True,
    ) -> bool:
        """Store ``payloads`` along ``word``; return whether the entry is new.

        ``payloads`` may be omitted (pure membership marking) or contain
        ``None`` holes; known payloads merge with stored ones.  A known
        payload that disagrees with a stored one raises
        :class:`~repro.errors.NonDeterminismError` carrying the conflicting
        prefix — the system under measurement answered the same prefix
        differently across runs.
        """
        word = tuple(word)
        if payloads is None:
            payloads = (None,) * len(word)
        else:
            payloads = tuple(payloads)
            if len(payloads) != len(word):
                raise StoreError(
                    f"word of length {len(word)} needs exactly {len(word)} "
                    f"payloads, got {len(payloads)}"
                )
        node = self._root
        stored: List[Payload] = []
        for position, symbol in enumerate(word):
            child = node.children.get(symbol)
            if child is None:
                child = _StoreNode()
                child.payload = payloads[position]
                node.children[symbol] = child
                self._nodes += 1
            elif payloads[position] is not None:
                if child.payload is None:
                    child.payload = payloads[position]
                elif child.payload != payloads[position]:
                    raise NonDeterminismError(
                        word[: position + 1],
                        stored + [child.payload],
                        payloads[: position + 1],
                    )
            stored.append(child.payload)
            node = child
        new_entry = terminal and not node.terminal
        if new_entry:
            node.terminal = True
            self._entries += 1
        return new_entry

    # --------------------------------------------------------------- merging

    def merge(self, other: "PrefixNamespace") -> None:
        """Merge another namespace's trie into this one.

        Subtrees absent here are grafted wholesale (``other`` must be
        discarded afterwards — its nodes are shared, not copied); shared
        paths merge payloads with the usual conflict rule: a known payload
        that disagrees raises :class:`~repro.errors.NonDeterminismError`.
        This is the staging primitive behind all-or-nothing file loading:
        decode into a scratch namespace first, merge only on full success.
        """
        stack: List[Tuple[_StoreNode, _StoreNode, Word]] = [(self._root, other._root, ())]
        while stack:
            mine, theirs, prefix = stack.pop()
            if theirs.terminal and not mine.terminal:
                mine.terminal = True
                self._entries += 1
            for symbol, their_child in theirs.children.items():
                word = prefix + (symbol,)
                my_child = mine.children.get(symbol)
                if my_child is None:
                    mine.children[symbol] = their_child
                    nodes, entries = _subtree_counts(their_child)
                    self._nodes += nodes
                    self._entries += entries
                    continue
                if their_child.payload is not None:
                    if my_child.payload is None:
                        my_child.payload = their_child.payload
                    elif my_child.payload != their_child.payload:
                        raise NonDeterminismError(
                            word, (my_child.payload,), (their_child.payload,)
                        )
                stack.append((my_child, their_child, word))

    # -------------------------------------------------------------- iteration

    def iter_entries(self) -> Iterator[Tuple[Word, Tuple[Payload, ...]]]:
        """Yield every recorded entry as ``(word, payloads)``, in trie order."""
        stack: List[Tuple[_StoreNode, Word, Tuple[Payload, ...]]] = [(self._root, (), ())]
        while stack:
            node, word, payloads = stack.pop()
            if node.terminal:
                yield word, payloads
            for symbol in sorted(node.children, key=repr, reverse=True):
                child = node.children[symbol]
                stack.append((child, word + (symbol,), payloads + (child.payload,)))

    def clear(self) -> None:
        """Drop every stored path and entry."""
        self._root = _StoreNode()
        self._nodes = 0
        self._entries = 0


class PrefixStore:
    """A namespaced collection of prefix tries with optional persistence.

    ``PrefixStore(path)`` loads the file when it exists (accepting both the
    native codec format and, for callers that route through
    :class:`~repro.cachequery.querycache.QueryCache`, legacy flat-JSON
    caches via migration); :meth:`save` writes the whole store back
    atomically.  A store without a path is purely in-memory.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        from pathlib import Path

        self.path = Path(path) if path is not None else None
        self._namespaces: Dict[NamespaceKey, PrefixNamespace] = {}
        if self.path is not None and self.path.exists():
            from repro.store.codec import load_store_file

            load_store_file(self.path, self)

    # -------------------------------------------------------------- namespaces

    def namespace(self, key: Sequence[Hashable]) -> PrefixNamespace:
        """Return (creating if needed) the namespace for ``key``."""
        key = tuple(key)
        namespace = self._namespaces.get(key)
        if namespace is None:
            namespace = PrefixNamespace(key)
            self._namespaces[key] = namespace
        return namespace

    def namespaces(self) -> Tuple[NamespaceKey, ...]:
        """The keys of every namespace currently in the store."""
        return tuple(self._namespaces)

    def drop_namespace(self, key: Sequence[Hashable]) -> None:
        """Remove one namespace (a no-op when it does not exist)."""
        self._namespaces.pop(tuple(key), None)

    # ------------------------------------------------------------------ totals

    @property
    def node_count(self) -> int:
        """Total stored prefixes across all namespaces."""
        return sum(ns.node_count for ns in self._namespaces.values())

    @property
    def entry_count(self) -> int:
        """Total recorded entries across all namespaces."""
        return sum(ns.entry_count for ns in self._namespaces.values())

    def statistics(self) -> Dict[str, object]:
        """Size summary for reports: namespaces, entries, nodes, on-disk bytes."""
        on_disk = (
            self.path.stat().st_size if self.path is not None and self.path.exists() else 0
        )
        return {
            "path": str(self.path) if self.path is not None else None,
            "namespaces": len(self._namespaces),
            "entries": self.entry_count,
            "nodes": self.node_count,
            "bytes_on_disk": on_disk,
        }

    def clear(self) -> None:
        """Drop every namespace."""
        self._namespaces.clear()

    # ------------------------------------------------------------- persistence

    def save(self, path: Optional[str] = None) -> None:
        """Atomically write the store to ``path`` (default: its own path).

        A no-op for purely in-memory stores called without a path.
        """
        from pathlib import Path

        from repro.store.codec import save_store_file

        target = Path(path) if path is not None else self.path
        if target is None:
            return
        save_store_file(target, self)

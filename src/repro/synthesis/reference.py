"""Reference explanations (Section 8.2 / Appendix C).

These are the hand-transcribed explanation programs the paper reports —
most importantly the two previously undocumented Intel policies New1 and
New2.  They serve two purposes:

* the tests cross-check them against the corresponding policy
  implementations in :mod:`repro.policies` (they must be trace-equivalent);
* the synthesis benchmarks compare the synthesizer's output against them, so
  a regression in either the grammar or the policies is caught immediately.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SynthesisError
from repro.synthesis.expr import AGE_OTHER, AGE_SELF, AgeVar, Comparison, Constant, Sum, TrueExpr
from repro.synthesis.rules import EvictionRule, NormalizationRule, UpdateBranch, UpdateRule
from repro.synthesis.template import ExplanationProgram

_MAX_AGE = 3


def _new1(associativity: int = 4) -> ExplanationProgram:
    return ExplanationProgram(
        associativity=associativity,
        initial_ages=(_MAX_AGE,) * (associativity - 1) + (0,),
        promotion=UpdateRule(branches=(UpdateBranch(TrueExpr(), Constant(0)),)),
        insertion=UpdateRule(branches=(UpdateBranch(TrueExpr(), Constant(1)),)),
        eviction=EvictionRule("first_with_age", _MAX_AGE),
        pre_miss_normalization=NormalizationRule("identity"),
        post_normalization=NormalizationRule(
            "age_until_max", target=_MAX_AGE, skip_touched=True
        ),
        max_age=_MAX_AGE,
        name="New1",
    )


def _new2(associativity: int = 4) -> ExplanationProgram:
    return ExplanationProgram(
        associativity=associativity,
        initial_ages=(_MAX_AGE,) * associativity,
        promotion=UpdateRule(
            branches=(
                UpdateBranch(Comparison(AgeVar(AGE_SELF), "==", Constant(1)), Constant(0)),
                UpdateBranch(TrueExpr(), Constant(1)),
            )
        ),
        insertion=UpdateRule(branches=(UpdateBranch(TrueExpr(), Constant(1)),)),
        eviction=EvictionRule("first_with_age", _MAX_AGE),
        pre_miss_normalization=NormalizationRule("identity"),
        post_normalization=NormalizationRule(
            "age_until_max", target=_MAX_AGE, skip_touched=False
        ),
        max_age=_MAX_AGE,
        name="New2",
    )


def _srrip(variant: str, associativity: int = 4) -> ExplanationProgram:
    if variant == "HP":
        promotion = UpdateRule(branches=(UpdateBranch(TrueExpr(), Constant(0)),))
    else:
        promotion = UpdateRule(branches=(UpdateBranch(TrueExpr(), Sum(AgeVar(AGE_SELF), -1)),))
    return ExplanationProgram(
        associativity=associativity,
        initial_ages=(_MAX_AGE,) * associativity,
        promotion=promotion,
        insertion=UpdateRule(branches=(UpdateBranch(TrueExpr(), Constant(_MAX_AGE - 1)),)),
        eviction=EvictionRule("first_with_age", _MAX_AGE),
        pre_miss_normalization=NormalizationRule(
            "age_until_max", target=_MAX_AGE, skip_touched=False
        ),
        post_normalization=NormalizationRule("identity"),
        max_age=_MAX_AGE,
        name=f"SRRIP-{variant}",
    )


def _lru(associativity: int = 4) -> ExplanationProgram:
    other_lt_self = Comparison(AgeVar(AGE_OTHER), "<", AgeVar(AGE_SELF))
    return ExplanationProgram(
        associativity=associativity,
        initial_ages=tuple(range(associativity)),
        promotion=UpdateRule(
            branches=(UpdateBranch(TrueExpr(), Constant(0)),),
            others_condition=other_lt_self,
            others_value=Sum(AgeVar(AGE_OTHER), +1),
        ),
        insertion=UpdateRule(
            branches=(UpdateBranch(TrueExpr(), Constant(0)),),
            others_condition=other_lt_self,
            others_value=Sum(AgeVar(AGE_OTHER), +1),
        ),
        eviction=EvictionRule("first_with_age", associativity - 1),
        max_age=associativity - 1,
        name="LRU",
    )


def _lip(associativity: int = 4) -> ExplanationProgram:
    other_lt_self = Comparison(AgeVar(AGE_OTHER), "<", AgeVar(AGE_SELF))
    return ExplanationProgram(
        associativity=associativity,
        initial_ages=tuple(range(associativity)),
        promotion=UpdateRule(
            branches=(UpdateBranch(TrueExpr(), Constant(0)),),
            others_condition=other_lt_self,
            others_value=Sum(AgeVar(AGE_OTHER), +1),
        ),
        insertion=UpdateRule(
            branches=(UpdateBranch(TrueExpr(), Constant(associativity - 1)),)
        ),
        eviction=EvictionRule("first_with_age", associativity - 1),
        max_age=associativity - 1,
        name="LIP",
    )


def _fifo(associativity: int = 4) -> ExplanationProgram:
    return ExplanationProgram(
        associativity=associativity,
        initial_ages=tuple(reversed(range(associativity))),
        promotion=UpdateRule(),
        insertion=UpdateRule(
            branches=(UpdateBranch(TrueExpr(), Constant(0)),),
            others_condition=TrueExpr(),
            others_value=Sum(AgeVar(AGE_OTHER), +1),
        ),
        eviction=EvictionRule("first_with_age", associativity - 1),
        max_age=associativity - 1,
        name="FIFO",
    )


def _mru(associativity: int = 4) -> ExplanationProgram:
    return ExplanationProgram(
        associativity=associativity,
        initial_ages=(1,) + (0,) * (associativity - 1),
        promotion=UpdateRule(branches=(UpdateBranch(TrueExpr(), Constant(1)),)),
        insertion=UpdateRule(branches=(UpdateBranch(TrueExpr(), Constant(1)),)),
        eviction=EvictionRule("first_with_age", 0),
        post_normalization=NormalizationRule("reset_when_all", target=1, reset_value=0),
        max_age=_MAX_AGE,
        name="MRU",
    )


_FACTORIES = {
    "NEW1": _new1,
    "NEW2": _new2,
    "SRRIP-HP": lambda associativity=4: _srrip("HP", associativity),
    "SRRIP-FP": lambda associativity=4: _srrip("FP", associativity),
    "LRU": _lru,
    "LIP": _lip,
    "FIFO": _fifo,
    "MRU": _mru,
}


def reference_explanation(name: str, associativity: int = 4) -> ExplanationProgram:
    """Return the paper's reference explanation for ``name`` at ``associativity``."""
    try:
        factory = _FACTORIES[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise SynthesisError(
            f"no reference explanation for {name!r}; known: {known}"
        ) from None
    return factory(associativity)


def reference_explanations(associativity: int = 4) -> Dict[str, ExplanationProgram]:
    """Return every reference explanation at the given associativity."""
    return {name: factory(associativity) for name, factory in _FACTORIES.items()}

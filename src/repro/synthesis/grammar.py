"""Rule grammars: the finite candidate spaces the synthesizer searches.

Two grammars are provided, mirroring the paper's two templates:

* the **Simple** grammar fixes both normalization slots to the identity and
  only allows single-branch promotions;
* the **Extended** grammar adds the normalization rules (age-increment loops
  and the MRU-style reset) and two-branch promotions.

The grammars are deliberately finite and fairly small — a few thousand rule
combinations per template — which is what makes the enumerative search
practical while still covering every policy the paper explains (FIFO, LRU,
LIP, MRU, SRRIP-HP, SRRIP-FP, New1, New2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.synthesis.expr import AGE_OTHER, AGE_SELF, AgeVar, Comparison, Constant, NatExpr, Sum, TrueExpr
from repro.synthesis.rules import EvictionRule, NormalizationRule, UpdateBranch, UpdateRule

Ages = Tuple[int, ...]


@dataclass(frozen=True)
class GrammarConfig:
    """A concrete search space for one synthesis attempt."""

    name: str
    associativity: int
    max_age: int
    initial_ages: Tuple[Ages, ...]
    promotion_rules: Tuple[UpdateRule, ...]
    insertion_rules: Tuple[UpdateRule, ...]
    eviction_rules: Tuple[EvictionRule, ...]
    pre_miss_normalizations: Tuple[NormalizationRule, ...]
    post_normalizations: Tuple[NormalizationRule, ...]

    @property
    def size(self) -> int:
        """Total number of template instantiations in this grammar."""
        return (
            len(self.initial_ages)
            * len(self.promotion_rules)
            * len(self.insertion_rules)
            * len(self.eviction_rules)
            * len(self.pre_miss_normalizations)
            * len(self.post_normalizations)
        )


# ------------------------------------------------------------- building blocks


def initial_age_candidates(associativity: int, max_age: int) -> List[Ages]:
    """Initial control states considered by the search.

    The candidates cover the shapes that occur in practice: a uniform vector
    (SRRIP, New2), a uniform vector with one distinguished first or last line
    (MRU, New1), and the ascending/descending permutations capped at
    ``max_age`` (LRU, LIP, FIFO).
    """
    candidates: List[Ages] = []
    for value in range(max_age + 1):
        candidates.append((value,) * associativity)
    for base in range(max_age + 1):
        for odd in range(max_age + 1):
            if odd == base:
                continue
            candidates.append((base,) * (associativity - 1) + (odd,))
            candidates.append((odd,) + (base,) * (associativity - 1))
    ascending = tuple(min(i, max_age) for i in range(associativity))
    descending = tuple(reversed(ascending))
    candidates.append(ascending)
    candidates.append(descending)
    unique: List[Ages] = []
    for candidate in candidates:
        if candidate not in unique:
            unique.append(candidate)
    return unique


def _self_conditions(max_age: int, extended: bool) -> List:
    conditions = [TrueExpr()]
    self_var = AgeVar(AGE_SELF)
    for value in range(max_age + 1):
        conditions.append(Comparison(self_var, "==", Constant(value)))
    if extended:
        for value in range(max_age):
            conditions.append(Comparison(self_var, ">", Constant(value)))
            conditions.append(Comparison(self_var, "<", Constant(value + 1)))
    return conditions


def _self_values(max_age: int) -> List[NatExpr]:
    values: List[NatExpr] = [Constant(value) for value in range(max_age + 1)]
    values.append(Sum(AgeVar(AGE_SELF), +1))
    values.append(Sum(AgeVar(AGE_SELF), -1))
    return values


def _others_updates(extended: bool) -> List[Tuple]:
    """Return (condition, value) pairs for the "update the other lines" loop."""
    other = AgeVar(AGE_OTHER)
    self_var = AgeVar(AGE_SELF)
    pairs: List[Tuple] = [(None, None)]
    conditions = [
        TrueExpr(),
        Comparison(other, "<", self_var),
        Comparison(other, ">", self_var),
    ]
    if extended:
        conditions.append(Comparison(other, "!=", self_var))
    values: List[NatExpr] = [Sum(other, +1), Sum(other, -1)]
    if extended:
        values.append(Constant(0))
    for condition in conditions:
        for value in values:
            pairs.append((condition, value))
    return pairs


def promotion_rules(max_age: int, extended: bool) -> List[UpdateRule]:
    """Candidate promotion rules (applied to the accessed line on a hit)."""
    rules: List[UpdateRule] = [UpdateRule()]  # FIFO-style: hits change nothing.
    single_branches = [
        UpdateBranch(condition, value)
        for condition in _self_conditions(max_age, extended)
        for value in _self_values(max_age)
    ]
    others = _others_updates(extended)
    for branch in single_branches:
        for condition, value in others:
            rules.append(
                UpdateRule(
                    branches=(branch,),
                    others_condition=condition,
                    others_value=value,
                )
            )
    if extended:
        # Two-branch promotions (needed for New2: "if age == 1 set 0, else set 1").
        self_var = AgeVar(AGE_SELF)
        constants = [Constant(value) for value in range(max_age + 1)]
        for first_age in range(max_age + 1):
            first_condition = Comparison(self_var, "==", Constant(first_age))
            for first_value in constants:
                for second_value in constants:
                    rules.append(
                        UpdateRule(
                            branches=(
                                UpdateBranch(first_condition, first_value),
                                UpdateBranch(TrueExpr(), second_value),
                            )
                        )
                    )
    return rules


def insertion_rules(max_age: int, extended: bool) -> List[UpdateRule]:
    """Candidate insertion rules (applied to the evicted line on a miss).

    The Extended grammar keeps the "update the other lines" loop small (no
    update, or a plain recency shift): every policy the paper explains with
    the Extended template (MRU, SRRIP, New1, New2) only rewrites the evicted
    line on insertion, and the richer loops are already available in the
    Simple grammar where FIFO/LRU need them.  This keeps the candidate space
    — and with it the synthesis time — manageable.
    """
    values: List[NatExpr] = [Constant(value) for value in range(max_age + 1)]
    values.append(Sum(AgeVar(AGE_SELF), -1))
    if extended:
        values.append(Sum(AgeVar(AGE_SELF), +1))
    other = AgeVar(AGE_OTHER)
    self_var = AgeVar(AGE_SELF)
    if extended:
        others: List[Tuple] = [
            (None, None),
            (TrueExpr(), Sum(other, +1)),
            (Comparison(other, "<", self_var), Sum(other, +1)),
        ]
    else:
        others = _others_updates(extended)
    rules: List[UpdateRule] = []
    for value in values:
        for condition, others_value in others:
            rules.append(
                UpdateRule(
                    branches=(UpdateBranch(TrueExpr(), value),),
                    others_condition=condition,
                    others_value=others_value,
                )
            )
    return rules


def eviction_rules(max_age: int) -> List[EvictionRule]:
    """Candidate eviction rules."""
    rules = [EvictionRule("first_with_age", age) for age in range(max_age + 1)]
    rules.append(EvictionRule("leftmost_max"))
    rules.append(EvictionRule("leftmost_min"))
    return rules


def pre_miss_normalizations(max_age: int, extended: bool) -> List[NormalizationRule]:
    """Candidate normalizations applied at the start of the miss path."""
    rules = [NormalizationRule("identity")]
    if extended:
        rules.append(NormalizationRule("age_until_max", target=max_age, skip_touched=False))
    return rules


def post_normalizations(max_age: int, extended: bool) -> List[NormalizationRule]:
    """Candidate normalizations applied after every hit and miss update."""
    rules = [NormalizationRule("identity")]
    if extended:
        rules.append(NormalizationRule("age_until_max", target=max_age, skip_touched=True))
        rules.append(NormalizationRule("age_until_max", target=max_age, skip_touched=False))
        rules.append(NormalizationRule("reset_when_all", target=1, reset_value=0))
        rules.append(NormalizationRule("reset_when_all", target=max_age, reset_value=0))
    return rules


# --------------------------------------------------------------- full grammars


def simple_grammar(associativity: int, max_age: int = 3) -> GrammarConfig:
    """The Simple template: identity normalization, single-branch promotions."""
    return GrammarConfig(
        name="Simple",
        associativity=associativity,
        max_age=max_age,
        initial_ages=tuple(initial_age_candidates(associativity, max_age)),
        promotion_rules=tuple(promotion_rules(max_age, extended=False)),
        insertion_rules=tuple(insertion_rules(max_age, extended=False)),
        eviction_rules=tuple(eviction_rules(max_age)),
        pre_miss_normalizations=tuple(pre_miss_normalizations(max_age, extended=False)),
        post_normalizations=tuple(post_normalizations(max_age, extended=False)),
    )


def extended_grammar(associativity: int, max_age: int = 3) -> GrammarConfig:
    """The Extended template: normalization rules and a richer expression grammar."""
    return GrammarConfig(
        name="Extended",
        associativity=associativity,
        max_age=max_age,
        initial_ages=tuple(initial_age_candidates(associativity, max_age)),
        promotion_rules=tuple(promotion_rules(max_age, extended=True)),
        insertion_rules=tuple(insertion_rules(max_age, extended=True)),
        eviction_rules=tuple(eviction_rules(max_age)),
        pre_miss_normalizations=tuple(pre_miss_normalizations(max_age, extended=True)),
        post_normalizations=tuple(post_normalizations(max_age, extended=True)),
    )

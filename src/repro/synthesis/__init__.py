"""Template-based synthesis of policy explanations (Section 5).

The learned Mealy machines are correct but hard to read.  This package
derives human-readable explanations: small programs over per-line *ages*
built from four rules — promotion (hits), eviction, insertion (misses) and
normalization — the vocabulary cache designers themselves use (RRIP and
friends).

The paper encodes the template in Sketch and asks a SyGuS solver for an
instantiation consistent with the learned automaton.  Sketch is not
available offline, so :mod:`repro.synthesis.synthesizer` implements an
enumerative, CEGIS-style search over the same rule grammars; a candidate is
accepted only if the policy it denotes is *trace-equivalent* to the learned
machine, so the soundness guarantee of Section 5 is preserved.
"""

from repro.synthesis.expr import AgeVar, BoolExpr, Comparison, Constant, NatExpr, Sum, TrueExpr
from repro.synthesis.rules import (
    EvictionRule,
    NormalizationRule,
    UpdateBranch,
    UpdateRule,
)
from repro.synthesis.template import ExplanationProgram, SynthesizedPolicy
from repro.synthesis.grammar import GrammarConfig, extended_grammar, simple_grammar
from repro.synthesis.synthesizer import (
    SynthesisConfig,
    SynthesisResult,
    explain_policy,
    synthesize_explanation,
)
from repro.synthesis.reference import reference_explanation, reference_explanations

__all__ = [
    "AgeVar",
    "BoolExpr",
    "Comparison",
    "Constant",
    "NatExpr",
    "Sum",
    "TrueExpr",
    "EvictionRule",
    "NormalizationRule",
    "UpdateBranch",
    "UpdateRule",
    "ExplanationProgram",
    "SynthesizedPolicy",
    "GrammarConfig",
    "extended_grammar",
    "simple_grammar",
    "SynthesisConfig",
    "SynthesisResult",
    "explain_policy",
    "synthesize_explanation",
    "reference_explanation",
    "reference_explanations",
]

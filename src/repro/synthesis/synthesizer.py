"""Enumerative, CEGIS-style synthesis of policy explanations.

The synthesizer searches a :class:`~repro.synthesis.grammar.GrammarConfig`
for a template instantiation whose induced policy is trace-equivalent to a
given (learned) Mealy machine.  The search is organised to stay fast despite
the naive enumeration:

1. **Miss-path search** — the behaviour of a policy on eviction-only input
   words (``Evct^k``) depends only on the initial state, the eviction rule,
   the insertion rule and the normalizations.  Those components are
   enumerated first and pruned against the learned machine's eviction
   sequence, which eliminates the vast majority of combinations after one or
   two comparisons.
2. **Promotion search with counterexamples** — for every surviving miss-path
   configuration the promotion rules are enumerated.  Each candidate is
   first replayed on a growing set of counterexample words (CEGIS style);
   only candidates that survive every recorded counterexample are subjected
   to the full trace-equivalence check, and a failed full check contributes
   a new counterexample.

A returned program is *guaranteed* equivalent to the input machine (the
final check is exact), which is the soundness property of Section 5.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.alphabet import EVICT, Line, policy_input_alphabet
from repro.core.mealy import MealyMachine
from repro.errors import SynthesisError
from repro.learning.wpmethod import characterization_set, state_cover
from repro.policies.base import ReplacementPolicy
from repro.synthesis.grammar import GrammarConfig, extended_grammar, simple_grammar
from repro.synthesis.rules import EvictionRule, NormalizationRule, UpdateRule
from repro.synthesis.template import ExplanationProgram

Word = Tuple


@dataclass
class SynthesisConfig:
    """Budget and behaviour switches for one synthesis run."""

    max_age: int = 3
    max_seconds: Optional[float] = None
    max_full_checks: int = 50_000
    eviction_probe_length: Optional[int] = None
    extra_test_words: Tuple[Word, ...] = ()


@dataclass
class SynthesisResult:
    """Outcome of a successful synthesis run."""

    program: ExplanationProgram
    template: str
    seconds: float
    miss_candidates: int
    promotion_candidates: int
    full_checks: int
    machine_states: int

    def pretty(self) -> str:
        """Render the synthesized explanation plus search statistics."""
        return (
            f"{self.program.pretty()}\n"
            f"  [template={self.template}, time={self.seconds:.2f}s, "
            f"candidates={self.miss_candidates + self.promotion_candidates}, "
            f"machine states={self.machine_states}]"
        )


class _Deadline:
    def __init__(self, seconds: Optional[float]) -> None:
        self._limit = None if seconds is None else time.perf_counter() + seconds

    def check(self) -> None:
        if self._limit is not None and time.perf_counter() > self._limit:
            raise SynthesisError("synthesis budget exhausted")


def _eviction_trace(machine: MealyMachine, length: int) -> Tuple:
    """Victim sequence the learned machine produces for ``Evct^length``."""
    return machine.run((EVICT,) * length)


def _initial_test_words(machine: MealyMachine, associativity: int) -> List[Word]:
    """A small, discriminating set of words used to reject candidates early."""
    alphabet = policy_input_alphabet(associativity)
    words: List[Word] = []
    # All words of length 1 and 2: cheap and catch most wrong promotions.
    for symbol in alphabet:
        words.append((symbol,))
    for first in alphabet:
        for second in alphabet:
            words.append((first, second))
    # Access words of the learned machine combined with its distinguishing
    # suffixes: these reach and separate every state of the machine.
    cover = list(state_cover(machine).values())
    suffixes = characterization_set(machine)
    for access in cover[:64]:
        for suffix in suffixes[:16]:
            words.append(tuple(access) + tuple(suffix))
    # Longer mixed words exercise the normalization rules.
    line0 = Line(0)
    words.append((EVICT, line0, EVICT, line0, EVICT, EVICT, line0, EVICT))
    words.sort(key=len)
    return words


def _candidate_matches_word(
    program: ExplanationProgram, machine: MealyMachine, word: Word
) -> bool:
    """Replay ``word`` on the candidate and the machine; early-exit on mismatch."""
    ages = tuple(program.initial_ages)
    state = machine.initial_state
    for symbol in word:
        state, expected = machine.step(state, symbol)
        if isinstance(symbol, Line):
            ages = program.hit(ages, symbol.index)
            produced = "-"
        else:
            ages, produced = program.miss(ages)
        if produced != expected:
            return False
    return True


def _full_equivalence_counterexample(
    program: ExplanationProgram, machine: MealyMachine
) -> Optional[Word]:
    """Exact trace-equivalence check; returns a counterexample word or ``None``."""
    policy = program.as_policy()
    bound = (program.max_age + 1) ** program.associativity * 4 + 16
    candidate_machine = policy.to_mealy(max_states=bound)
    return machine.find_counterexample(candidate_machine)


def synthesize_explanation(
    machine: MealyMachine,
    associativity: int,
    *,
    template: str = "auto",
    config: Optional[SynthesisConfig] = None,
    name: str = "synthesized",
) -> SynthesisResult:
    """Synthesize an explanation program equivalent to ``machine``.

    ``template`` is ``"simple"``, ``"extended"`` or ``"auto"`` (try the Simple
    template first and fall back to the Extended one, as the paper does).
    Raises :class:`~repro.errors.SynthesisError` when the grammar contains no
    equivalent program or the budget is exhausted.
    """
    config = config or SynthesisConfig()
    template = template.lower()
    if template not in ("simple", "extended", "auto"):
        raise SynthesisError(f"unknown template {template!r}")
    attempts = {
        "simple": [simple_grammar(associativity, config.max_age)],
        "extended": [extended_grammar(associativity, config.max_age)],
        "auto": [
            simple_grammar(associativity, config.max_age),
            extended_grammar(associativity, config.max_age),
        ],
    }[template]
    last_error: Optional[SynthesisError] = None
    for grammar in attempts:
        try:
            return _synthesize_with_grammar(machine, grammar, config, name)
        except SynthesisError as error:
            last_error = error
    raise last_error if last_error is not None else SynthesisError("synthesis failed")


def _synthesize_with_grammar(
    machine: MealyMachine,
    grammar: GrammarConfig,
    config: SynthesisConfig,
    name: str,
) -> SynthesisResult:
    start = time.perf_counter()
    deadline = _Deadline(config.max_seconds)
    associativity = grammar.associativity
    probe_length = config.eviction_probe_length or (4 * associativity + 17)
    eviction_expected = _eviction_trace(machine, probe_length)

    # ----------------------------------------------------- stage 1: miss path
    identity_promotion = UpdateRule()
    miss_candidates = 0
    survivors: List[Tuple] = []
    for initial, eviction, insertion, pre_norm, post_norm in itertools.product(
        grammar.initial_ages,
        grammar.eviction_rules,
        grammar.insertion_rules,
        grammar.pre_miss_normalizations,
        grammar.post_normalizations,
    ):
        miss_candidates += 1
        if miss_candidates % 4096 == 0:
            deadline.check()
        program = ExplanationProgram(
            associativity=associativity,
            initial_ages=initial,
            promotion=identity_promotion,
            insertion=insertion,
            eviction=eviction,
            pre_miss_normalization=pre_norm,
            post_normalization=post_norm,
            max_age=grammar.max_age,
            name=name,
        )
        ages = tuple(initial)
        consistent = True
        for expected in eviction_expected:
            ages, victim = program.miss(ages)
            if victim != expected:
                consistent = False
                break
        if consistent:
            survivors.append((initial, eviction, insertion, pre_norm, post_norm))

    if not survivors:
        raise SynthesisError(
            f"no miss-path configuration in the {grammar.name} template matches the machine"
        )

    # ------------------------------------------- stage 2: promotion + CEGIS
    tests: List[Word] = _initial_test_words(machine, associativity)
    tests.extend(config.extra_test_words)
    promotion_candidates = 0
    full_checks = 0
    for survivor in survivors:
        initial, eviction, insertion, pre_norm, post_norm = survivor
        for promotion in grammar.promotion_rules:
            promotion_candidates += 1
            if promotion_candidates % 1024 == 0:
                deadline.check()
            program = ExplanationProgram(
                associativity=associativity,
                initial_ages=initial,
                promotion=promotion,
                insertion=insertion,
                eviction=eviction,
                pre_miss_normalization=pre_norm,
                post_normalization=post_norm,
                max_age=grammar.max_age,
                name=name,
            )
            if not all(_candidate_matches_word(program, machine, word) for word in tests):
                continue
            full_checks += 1
            if full_checks > config.max_full_checks:
                raise SynthesisError("synthesis exceeded the full-equivalence check budget")
            counterexample = _full_equivalence_counterexample(program, machine)
            if counterexample is None:
                return SynthesisResult(
                    program=program,
                    template=grammar.name,
                    seconds=time.perf_counter() - start,
                    miss_candidates=miss_candidates,
                    promotion_candidates=promotion_candidates,
                    full_checks=full_checks,
                    machine_states=machine.size,
                )
            tests.append(tuple(counterexample))
    raise SynthesisError(
        f"the {grammar.name} template cannot explain the given machine "
        f"({machine.size} states)"
    )


def explain_policy(
    policy: ReplacementPolicy,
    *,
    template: str = "auto",
    config: Optional[SynthesisConfig] = None,
) -> SynthesisResult:
    """Synthesize an explanation for a known policy implementation.

    The policy is first enumerated and minimised into its canonical Mealy
    machine (the same machine the learner recovers, by Theorem 3.1 /
    Proposition 3.2) and the explanation is synthesized against it.
    """
    machine = policy.to_mealy().minimize()
    return synthesize_explanation(
        machine,
        policy.associativity,
        template=template,
        config=config,
        name=policy.name,
    )

"""The explanation template and the policies it denotes.

:class:`ExplanationProgram` is the instantiated template of Section 5: an
initial age vector plus promotion / eviction / insertion / normalization
rules.  Its :meth:`hit` and :meth:`miss` methods follow the paper's template
verbatim (promotion then normalization on a hit; normalization, eviction,
insertion, normalization on a miss).  :class:`SynthesizedPolicy` wraps a
program as a regular :class:`~repro.policies.base.ReplacementPolicy`, so the
synthesizer can check candidates by Mealy trace-equivalence and users can
plug synthesized explanations straight back into simulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import SynthesisError
from repro.policies.base import PolicyState, ReplacementPolicy
from repro.synthesis.rules import EvictionRule, NormalizationRule, UpdateRule

Ages = Tuple[int, ...]


@dataclass(frozen=True)
class ExplanationProgram:
    """A complete instantiation of the explanation template."""

    associativity: int
    initial_ages: Ages
    promotion: UpdateRule
    insertion: UpdateRule
    eviction: EvictionRule
    pre_miss_normalization: NormalizationRule = field(default_factory=NormalizationRule)
    post_normalization: NormalizationRule = field(default_factory=NormalizationRule)
    max_age: int = 3
    name: str = "synthesized"

    def __post_init__(self) -> None:
        if len(self.initial_ages) != self.associativity:
            raise SynthesisError(
                f"initial ages must have length {self.associativity}, got "
                f"{len(self.initial_ages)}"
            )
        if any(age < 0 or age > self.max_age for age in self.initial_ages):
            raise SynthesisError("initial ages must lie within 0..max_age")

    # ------------------------------------------------------- template functions

    def hit(self, ages: Ages, line: int) -> Ages:
        """The template's ``hit`` function: promotion then normalization."""
        ages = self.promotion.apply(ages, line, self.max_age)
        return self.post_normalization.apply(ages, line, self.max_age)

    def miss(self, ages: Ages) -> Tuple[Ages, int]:
        """The template's ``miss`` function: normalize, evict, insert, normalize."""
        ages = self.pre_miss_normalization.apply(ages, None, self.max_age)
        victim = self.eviction.select(ages)
        ages = self.insertion.apply(ages, victim, self.max_age)
        ages = self.post_normalization.apply(ages, victim, self.max_age)
        return ages, victim

    # ---------------------------------------------------------------- exports

    def as_policy(self) -> "SynthesizedPolicy":
        """Wrap the program as a regular replacement policy."""
        return SynthesizedPolicy(self)

    @property
    def is_simple(self) -> bool:
        """True when both normalization slots are the identity (the Simple template)."""
        return (
            self.pre_miss_normalization.kind == "identity"
            and self.post_normalization.kind == "identity"
        )

    def pretty(self) -> str:
        """Render the explanation in the style of Section 8.2."""
        template = "Simple" if self.is_simple else "Extended"
        lines = [
            f"Policy explanation ({self.name}, associativity {self.associativity}, "
            f"{template} template)",
            f"  * Initial control state: {{{', '.join(str(a) for a in self.initial_ages)}}}",
            f"  * Promote  (on a hit): {self.promotion.describe()}",
            f"  * Evict    (on a miss): {self.eviction.describe()}",
            f"  * Insert   (on a miss): {self.insertion.describe()}",
        ]
        if self.pre_miss_normalization.kind != "identity":
            lines.append(
                f"  * Normalize (before eviction): {self.pre_miss_normalization.describe()}"
            )
        if self.post_normalization.kind != "identity":
            lines.append(
                f"  * Normalize (after a hit or a miss): {self.post_normalization.describe()}"
            )
        if self.is_simple:
            lines.append("  * Normalize: identity")
        return "\n".join(lines)


class SynthesizedPolicy(ReplacementPolicy):
    """A replacement policy defined by an :class:`ExplanationProgram`."""

    def __init__(self, program: ExplanationProgram) -> None:
        super().__init__(program.associativity)
        self.program = program
        self.name = program.name

    def initial_state(self) -> PolicyState:
        return tuple(self.program.initial_ages)

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        return self.program.hit(tuple(state), line)

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        return self.program.miss(tuple(state))

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        # Fills apply the insertion rule to the filled line, followed by the
        # usual normalization — the same convention as the hand-written
        # policies in ``repro.policies``.
        ages = self.program.insertion.apply(tuple(state), line, self.program.max_age)
        return self.program.post_normalization.apply(ages, line, self.program.max_age)

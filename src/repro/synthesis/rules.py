"""The four explanation rules: promotion, insertion, eviction, normalization.

A rule is a small, immutable object with an ``apply`` method over age
vectors and a ``describe`` method used by the pretty printer.  Promotion and
insertion share one shape (:class:`UpdateRule`): a list of conditional
branches updating the touched line (the first branch whose condition holds
fires; otherwise the age is kept) plus an optional conditional update of
every *other* line — exactly the structure of the paper's ``promote``
generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import SynthesisError
from repro.synthesis.expr import AGE_OTHER, AGE_SELF, BoolExpr, NatExpr

Ages = Tuple[int, ...]


@dataclass(frozen=True)
class UpdateBranch:
    """One conditional branch ``if condition(age): age := value``."""

    condition: BoolExpr
    value: NatExpr

    def describe(self) -> str:
        return f"if {self.condition.describe()}: age := {self.value.describe()}"


@dataclass(frozen=True)
class UpdateRule:
    """Update the touched line (first matching branch) and, optionally, the rest.

    ``others_condition`` / ``others_value`` describe the "update the other
    lines" loop: for every line ``i`` different from the touched one, if the
    condition (which may refer to both the touched line's original age and
    line ``i``'s original age) holds, line ``i`` takes the new value.
    All conditions and values are evaluated against the *original* ages.
    """

    branches: Tuple[UpdateBranch, ...] = ()
    others_condition: Optional[BoolExpr] = None
    others_value: Optional[NatExpr] = None

    def __post_init__(self) -> None:
        if (self.others_condition is None) != (self.others_value is None):
            raise SynthesisError("others_condition and others_value must be given together")

    def apply(self, ages: Ages, line: int, max_age: int) -> Ages:
        """Return the updated age vector after touching ``line``."""
        original = tuple(ages)
        updated = list(original)
        self_env = {AGE_SELF: original[line]}
        for branch in self.branches:
            if branch.condition.evaluate(self_env, max_age):
                updated[line] = branch.value.evaluate(self_env, max_age)
                break
        if self.others_condition is not None and self.others_value is not None:
            for index, age in enumerate(original):
                if index == line:
                    continue
                env = {AGE_SELF: original[line], AGE_OTHER: age}
                if self.others_condition.evaluate(env, max_age):
                    updated[index] = self.others_value.evaluate(env, max_age)
        return tuple(updated)

    def describe(self) -> str:
        parts = []
        if not self.branches:
            parts.append("keep the line's age")
        for index, branch in enumerate(self.branches):
            prefix = "if" if index == 0 else "else if"
            parts.append(
                f"{prefix} {branch.condition.describe()}: set the line's age to "
                f"{branch.value.describe()}"
            )
        if self.others_condition is not None:
            parts.append(
                f"for every other line, if {self.others_condition.describe()}: set its age "
                f"to {self.others_value.describe()}"
            )
        return "; ".join(parts)


@dataclass(frozen=True)
class EvictionRule:
    """Select the victim line from the age vector.

    ``kind`` is one of

    * ``"first_with_age"`` — left-most line whose age equals ``age``;
    * ``"leftmost_max"`` — left-most line holding the maximal age;
    * ``"leftmost_min"`` — left-most line holding the minimal age.

    When no line matches a ``first_with_age`` rule the left-most line is
    evicted; this never happens for accepted explanations because the
    normalization rules re-establish the invariant, but it keeps candidate
    programs total during the search.
    """

    kind: str = "first_with_age"
    age: int = 0

    def select(self, ages: Ages) -> int:
        if self.kind == "first_with_age":
            for index, age in enumerate(ages):
                if age == self.age:
                    return index
            return 0
        if self.kind == "leftmost_max":
            return ages.index(max(ages))
        if self.kind == "leftmost_min":
            return ages.index(min(ages))
        raise SynthesisError(f"unknown eviction rule kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind == "first_with_age":
            return f"evict the left-most line whose age is {self.age}"
        if self.kind == "leftmost_max":
            return "evict the left-most line with the largest age"
        return "evict the left-most line with the smallest age"


@dataclass(frozen=True)
class NormalizationRule:
    """Re-establish a control-state invariant after (or before) an update.

    ``kind`` is one of

    * ``"identity"`` — do nothing (the Simple template);
    * ``"age_until_max"`` — while no line has age ``target``, increment every
      line (``skip_touched=False``) or every line except the one just
      touched (``skip_touched=True``);
    * ``"reset_when_all"`` — if every line has age ``target``, set every line
      except the touched one to ``reset_value`` (the MRU-style rule).
    """

    kind: str = "identity"
    target: int = 0
    skip_touched: bool = False
    reset_value: int = 0

    def apply(self, ages: Ages, touched: Optional[int], max_age: int) -> Ages:
        if self.kind == "identity":
            return tuple(ages)
        if self.kind == "age_until_max":
            current = list(ages)
            skip = touched if self.skip_touched else None
            # Each iteration increments at least one line unless every line is
            # skipped, so the loop is bounded by max_age iterations.
            for _ in range(max_age + 1):
                if self.target in current:
                    break
                changed = False
                for index in range(len(current)):
                    if index == skip:
                        continue
                    if current[index] < max_age:
                        current[index] += 1
                        changed = True
                if not changed:
                    break
            return tuple(current)
        if self.kind == "reset_when_all":
            if all(age == self.target for age in ages):
                return tuple(
                    age if index == touched else self.reset_value
                    for index, age in enumerate(ages)
                )
            return tuple(ages)
        raise SynthesisError(f"unknown normalization rule kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind == "identity":
            return "no normalization"
        if self.kind == "age_until_max":
            scope = "all lines except the touched one" if self.skip_touched else "all lines"
            return f"while no line has age {self.target}, increase the age of {scope} by 1"
        return (
            f"if every line has age {self.target}, set every line except the touched one "
            f"to {self.reset_value}"
        )

"""Tiny expression language used inside explanation rules.

Rules talk about two ages: the age of the line being updated (``state[pos]``
in the paper's generators, here :data:`AGE_SELF`) and, inside the
"update the other lines" loop, the age of the other line (``state[i]``,
here :data:`AGE_OTHER``).  Natural-number expressions combine those with
constants and saturating addition/subtraction; boolean expressions are
comparisons (or ``True``).  Saturation keeps every reachable age within
``0..max_age`` so candidate policies always have a finite state space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

#: Variable naming the age of the line being updated (``state[pos]``).
AGE_SELF = "self"
#: Variable naming the age of the other line in the "update rest" loop (``state[i]``).
AGE_OTHER = "other"


class NatExpr:
    """Base class of natural-number expressions."""

    def evaluate(self, env: Mapping[str, int], max_age: int) -> int:
        """Evaluate under ``env`` with saturation into ``0..max_age``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable rendering used by the pretty printer."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()


@dataclass(frozen=True)
class Constant(NatExpr):
    """A literal age."""

    value: int

    def evaluate(self, env: Mapping[str, int], max_age: int) -> int:
        return max(0, min(self.value, max_age))

    def describe(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class AgeVar(NatExpr):
    """The age of the updated line (``self``) or of the other line (``other``)."""

    name: str = AGE_SELF

    def evaluate(self, env: Mapping[str, int], max_age: int) -> int:
        return env[self.name]

    def describe(self) -> str:
        return "age" if self.name == AGE_SELF else "other_age"


@dataclass(frozen=True)
class Sum(NatExpr):
    """A saturating sum ``base + delta`` (``delta`` may be negative)."""

    base: NatExpr
    delta: int

    def evaluate(self, env: Mapping[str, int], max_age: int) -> int:
        value = self.base.evaluate(env, max_age) + self.delta
        return max(0, min(value, max_age))

    def describe(self) -> str:
        sign = "+" if self.delta >= 0 else "-"
        return f"{self.base.describe()} {sign} {abs(self.delta)}"


class BoolExpr:
    """Base class of boolean expressions."""

    def evaluate(self, env: Mapping[str, int], max_age: int) -> bool:
        """Evaluate under ``env``."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable rendering."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return self.describe()


@dataclass(frozen=True)
class TrueExpr(BoolExpr):
    """The always-true condition."""

    def evaluate(self, env: Mapping[str, int], max_age: int) -> bool:
        return True

    def describe(self) -> str:
        return "true"


_OPERATORS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(BoolExpr):
    """A comparison between two natural expressions."""

    left: NatExpr
    operator: str
    right: NatExpr

    def __post_init__(self) -> None:
        if self.operator not in _OPERATORS:
            raise ValueError(f"unknown comparison operator {self.operator!r}")

    def evaluate(self, env: Mapping[str, int], max_age: int) -> bool:
        return _OPERATORS[self.operator](
            self.left.evaluate(env, max_age), self.right.evaluate(env, max_age)
        )

    def describe(self) -> str:
        return f"{self.left.describe()} {self.operator} {self.right.describe()}"


@dataclass(frozen=True)
class And(BoolExpr):
    """Conjunction of two boolean expressions."""

    left: BoolExpr
    right: BoolExpr

    def evaluate(self, env: Mapping[str, int], max_age: int) -> bool:
        return self.left.evaluate(env, max_age) and self.right.evaluate(env, max_age)

    def describe(self) -> str:
        return f"({self.left.describe()} and {self.right.describe()})"

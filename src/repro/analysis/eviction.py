"""Optimal eviction strategies from policy models.

An *eviction strategy* is a sequence of memory accesses that removes a victim
block from a cache set.  Its cost (number of accesses) depends heavily on the
replacement policy: LRU needs ``associativity`` fresh blocks, whereas
adaptive or RRIP-style policies can require interleaved re-accesses.  Attacks
such as Prime+Probe and Rowhammer want *minimal* strategies; defenders want
to know how large the attacker's working set must be.

Given a policy model this module computes a provably minimal strategy by
breadth-first search over the joint (cache content, control state) space,
where the attacker may either access one of its own blocks (fresh or already
cached) or re-access the victim is *not* allowed — the victim is assumed
untouched, as in an eviction-set attack.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cache.cacheset import CacheSet
from repro.errors import PolicyError
from repro.policies.base import ReplacementPolicy


@dataclass(frozen=True)
class EvictionStrategy:
    """A minimal sequence of attacker accesses that evicts the victim block."""

    policy: str
    associativity: int
    accesses: Tuple[str, ...]
    distinct_blocks: int

    @property
    def length(self) -> int:
        """Total number of attacker accesses."""
        return len(self.accesses)


def _attacker_blocks(count: int) -> Tuple[str, ...]:
    return tuple(f"x{i}" for i in range(count))


def optimal_eviction_strategy(
    policy: ReplacementPolicy,
    *,
    victim_line: int = 0,
    max_length: int = 64,
    extra_blocks: int = 0,
) -> Optional[EvictionStrategy]:
    """Return a shortest attacker access sequence that evicts the victim.

    The cache starts full: the victim block occupies ``victim_line`` and the
    remaining lines hold other (non-attacker) blocks; the attacker owns
    ``associativity + extra_blocks`` distinct blocks mapping to the same set
    and may access them in any order.  Returns ``None`` when no strategy of
    length ``max_length`` or less exists (which would indicate a
    thrash-resistant configuration).
    """
    n = policy.associativity
    if not 0 <= victim_line < n:
        raise PolicyError(f"victim line {victim_line} out of range for associativity {n}")
    victim = "victim"
    others = tuple(f"fill{i}" for i in range(n - 1))
    initial_content: List[str] = []
    fill_iter = iter(others)
    for line in range(n):
        initial_content.append(victim if line == victim_line else next(fill_iter))
    attacker = _attacker_blocks(n + extra_blocks)

    base = CacheSet(policy, initial_content=initial_content)
    start = base.snapshot()
    seen = {start}
    queue: deque = deque([(start, ())])
    while queue:
        snapshot, accesses = queue.popleft()
        if len(accesses) >= max_length:
            continue
        for block in attacker:
            base.restore(snapshot)
            base.access(block)
            if not base.contains(victim):
                sequence = accesses + (block,)
                return EvictionStrategy(
                    policy=policy.name,
                    associativity=n,
                    accesses=sequence,
                    distinct_blocks=len(set(sequence)),
                )
            successor = base.snapshot()
            if successor not in seen:
                seen.add(successor)
                queue.append((successor, accesses + (block,)))
    return None

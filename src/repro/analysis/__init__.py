"""Applications of learned policy models.

The paper's discussion (§10, *Security*) points out that precise policy
models make it possible to *systematically compute optimal eviction
strategies* — the access patterns cache attacks need.  This package provides
that downstream application: given any replacement policy (hand-written,
learned, or synthesized), compute minimal access sequences that evict a
chosen victim block.
"""

from repro.analysis.eviction import EvictionStrategy, optimal_eviction_strategy

__all__ = ["EvictionStrategy", "optimal_eviction_strategy"]

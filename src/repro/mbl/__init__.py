"""MemBlockLang (MBL): the query DSL of CacheQuery (Section 4.1, Appendix A).

An MBL expression denotes a *set of queries*; each query is a sequence of
memory operations — a block name optionally decorated with ``?`` (profile
this access) or ``!`` (flush this block).  Macros (``@``, ``_``, grouping,
extension ``q1[q2]``, powers ``(q)^n`` and tagging of whole groups) make the
common measurement patterns short to write, e.g. the eviction-probing query
``@ X _?`` of Example 4.1.

The package provides a lexer, a parser producing a small AST, and the
expansion semantics of Appendix A.
"""

from repro.mbl.ast import (
    AtMacro,
    BlockAtom,
    Concat,
    Expression,
    Extend,
    Operation,
    Power,
    Query,
    QuerySet,
    Tagged,
    Wildcard,
)
from repro.mbl.lexer import Token, TokenType, tokenize
from repro.mbl.parser import parse
from repro.mbl.expansion import expand, expand_expression, query_to_text

__all__ = [
    "AtMacro",
    "BlockAtom",
    "Concat",
    "Expression",
    "Extend",
    "Operation",
    "Power",
    "Query",
    "QuerySet",
    "Tagged",
    "Wildcard",
    "Token",
    "TokenType",
    "tokenize",
    "parse",
    "expand",
    "expand_expression",
    "query_to_text",
]

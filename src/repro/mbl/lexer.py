"""Tokenizer for MemBlockLang expressions."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List

from repro.errors import MBLSyntaxError


class TokenType(Enum):
    """Kinds of MBL tokens."""

    BLOCK = auto()
    AT = auto()
    WILDCARD = auto()
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    LBRACE = auto()
    RBRACE = auto()
    COMMA = auto()
    TAG = auto()
    NUMBER = auto()
    END = auto()


@dataclass(frozen=True)
class Token:
    """A token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.type.name}({self.value!r}@{self.position})"


_SINGLE_CHARS = {
    "@": TokenType.AT,
    "_": TokenType.WILDCARD,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
}


def tokenize(text: str) -> List[Token]:
    """Tokenize an MBL expression; raises :class:`MBLSyntaxError` on bad input."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char in _SINGLE_CHARS:
            yield Token(_SINGLE_CHARS[char], char, position)
            position += 1
            continue
        if char in "?!":
            yield Token(TokenType.TAG, char, position)
            position += 1
            continue
        if char.isdigit():
            start = position
            while position < length and text[position].isdigit():
                position += 1
            yield Token(TokenType.NUMBER, text[start:position], start)
            continue
        if char.isalpha():
            # Block names: a letter optionally followed by digits (A, B, X, A1, ...).
            start = position
            position += 1
            while position < length and text[position].isdigit():
                position += 1
            yield Token(TokenType.BLOCK, text[start:position], start)
            continue
        raise MBLSyntaxError(f"unexpected character {char!r}", position)
    yield Token(TokenType.END, "", length)

"""AST nodes and query values for MemBlockLang.

Expressions (the syntax of Figure 4) are represented as a small class
hierarchy; queries (the semantic domain) are tuples of
:class:`Operation` values — a block name plus an optional tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

PROFILE_TAG = "?"
FLUSH_TAG = "!"
VALID_TAGS = (PROFILE_TAG, FLUSH_TAG)


@dataclass(frozen=True)
class Operation:
    """One memory operation: access (or flush) a block, optionally profiled."""

    block: str
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tag is not None and self.tag not in VALID_TAGS:
            raise ValueError(f"invalid tag {self.tag!r}; expected one of {VALID_TAGS}")

    @property
    def profiled(self) -> bool:
        """True when the access must be timed (``?`` tag)."""
        return self.tag == PROFILE_TAG

    @property
    def flush(self) -> bool:
        """True when the block must be invalidated instead of accessed (``!`` tag)."""
        return self.tag == FLUSH_TAG

    def __str__(self) -> str:
        return f"{self.block}{self.tag or ''}"


#: A query is a finite sequence of operations.
Query = Tuple[Operation, ...]


# --------------------------------------------------------------------- AST ---


class Expression:
    """Base class for MBL expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class BlockAtom(Expression):
    """A literal block, e.g. ``A`` (optionally with a tag attached by the parser)."""

    name: str
    tag: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.name}{self.tag or ''}"


@dataclass(frozen=True)
class AtMacro(Expression):
    """The ``@`` expansion macro: associativity-many blocks in increasing order."""

    def __str__(self) -> str:
        return "@"


@dataclass(frozen=True)
class Wildcard(Expression):
    """The ``_`` wildcard macro: associativity-many single-block queries."""

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class Tagged(Expression):
    """A tag applied to a whole sub-expression, e.g. ``(A B)?``."""

    inner: Expression
    tag: str

    def __str__(self) -> str:
        return f"({self.inner}){self.tag}"


@dataclass(frozen=True)
class Concat(Expression):
    """Concatenation ``q1 ◦ q2`` (written by juxtaposition)."""

    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"{self.left} {self.right}"


@dataclass(frozen=True)
class Extend(Expression):
    """The extension macro ``q1[q2]``: one copy of ``q1`` per block of ``q2``."""

    base: Expression
    extension: Expression

    def __str__(self) -> str:
        return f"{self.base}[{self.extension}]"


@dataclass(frozen=True)
class Power(Expression):
    """The power operator ``(q)^n``."""

    inner: Expression
    count: int

    def __str__(self) -> str:
        return f"({self.inner}){self.count}"


@dataclass(frozen=True)
class QuerySet(Expression):
    """An explicit set of alternatives ``{q1, ..., ql}``."""

    items: Tuple[Expression, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(str(item) for item in self.items) + "}"


ExpressionLike = Union[Expression, str]

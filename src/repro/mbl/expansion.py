"""Expansion semantics of MemBlockLang (Appendix A).

``expand`` turns an MBL expression (or its textual form) into the ordered
list of queries it denotes, given the cache associativity and the ordered
block universe.  The rules follow Appendix A:

* a block denotes the singleton query containing it;
* ``@`` denotes one query with the first *associativity* blocks in order;
* ``_`` denotes associativity-many single-block queries;
* tags distribute over every block of the tagged expression and may not be
  applied to an already tagged block;
* concatenation and powers combine query sets pointwise (Cartesian style);
* ``q1[q2]`` appends, to every query of ``q1``, each block occurring in
  ``q2``'s queries (one extended copy per block).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import MBLExpansionError
from repro.mbl.ast import (
    AtMacro,
    BlockAtom,
    Concat,
    Expression,
    Extend,
    Operation,
    Power,
    Query,
    QuerySet,
    Tagged,
    Wildcard,
)
from repro.mbl.parser import parse
from repro.polca.interfaces import default_block_names


def _dedupe(queries: List[Query]) -> List[Query]:
    seen = set()
    unique: List[Query] = []
    for query in queries:
        if query not in seen:
            seen.add(query)
            unique.append(query)
    return unique


def _apply_tag(queries: List[Query], tag: str) -> List[Query]:
    tagged: List[Query] = []
    for query in queries:
        operations = []
        for operation in query:
            if operation.tag is not None:
                raise MBLExpansionError(
                    f"cannot tag block {operation.block!r} with {tag!r}: it already "
                    f"carries tag {operation.tag!r}"
                )
            operations.append(Operation(operation.block, tag))
        tagged.append(tuple(operations))
    return tagged


def _blocks_of(queries: List[Query]) -> List[str]:
    """Return the distinct blocks occurring in ``queries``, in appearance order."""
    blocks: List[str] = []
    for query in queries:
        for operation in query:
            if operation.block not in blocks:
                blocks.append(operation.block)
    return blocks


def expand_expression(
    expression: Expression,
    associativity: int,
    blocks: Sequence[str],
) -> List[Query]:
    """Expand an AST into its ordered list of queries."""
    if associativity < 1:
        raise MBLExpansionError(f"associativity must be >= 1, got {associativity}")
    if len(blocks) < associativity:
        raise MBLExpansionError(
            f"the block universe has {len(blocks)} blocks but the associativity is "
            f"{associativity}"
        )

    def recurse(node: Expression) -> List[Query]:
        if isinstance(node, BlockAtom):
            return [(Operation(node.name, node.tag),)]
        if isinstance(node, AtMacro):
            return [tuple(Operation(block) for block in blocks[:associativity])]
        if isinstance(node, Wildcard):
            return [(Operation(block),) for block in blocks[:associativity]]
        if isinstance(node, Tagged):
            return _apply_tag(recurse(node.inner), node.tag)
        if isinstance(node, Concat):
            left, right = recurse(node.left), recurse(node.right)
            return _dedupe([a + b for a in left for b in right])
        if isinstance(node, Extend):
            base = recurse(node.base)
            extension_blocks = _blocks_of(recurse(node.extension))
            if not extension_blocks:
                raise MBLExpansionError("the extension macro needs at least one block")
            return _dedupe(
                [query + (Operation(block),) for query in base for block in extension_blocks]
            )
        if isinstance(node, Power):
            if node.count < 0:
                raise MBLExpansionError(f"negative power {node.count}")
            result: List[Query] = [()]
            inner = recurse(node.inner)
            for _ in range(node.count):
                result = [a + b for a in result for b in inner]
            return _dedupe(result)
        if isinstance(node, QuerySet):
            queries: List[Query] = []
            for item in node.items:
                queries.extend(recurse(item))
            return _dedupe(queries)
        raise MBLExpansionError(f"unknown MBL expression node {node!r}")

    return recurse(expression)


def expand(
    expression: Union[str, Expression],
    associativity: int,
    blocks: Optional[Sequence[str]] = None,
) -> List[Query]:
    """Expand an MBL expression (text or AST) into its list of queries.

    When ``blocks`` is not given, the default ordered universe ``A, B, C, ...``
    with ``associativity + 8`` members is used, which is enough for every
    query the learning pipeline generates.
    """
    if isinstance(expression, str):
        expression = parse(expression)
    if blocks is None:
        blocks = default_block_names(associativity + 8)
    return expand_expression(expression, associativity, blocks)


def query_to_text(query: Query) -> str:
    """Render a query back to MBL text (used by caches, logs and reports)."""
    return " ".join(str(operation) for operation in query)


def queries_to_text(queries: Sequence[Query]) -> Tuple[str, ...]:
    """Render several queries (reporting helper)."""
    return tuple(query_to_text(query) for query in queries)

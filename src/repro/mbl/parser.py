"""Recursive-descent parser for MemBlockLang.

Grammar (informally; see Figure 4 of the paper for the abstract syntax):

.. code-block:: text

   expression := item { item }                    (juxtaposition = concatenation,
                                                   a bracket group extends the
                                                   sequence parsed so far)
   item       := primary { TAG | NUMBER }         (tags and powers are postfix)
   primary    := BLOCK [TAG] | '@' | '_'
               | '(' expression ')'
               | '{' expression { ',' expression } '}'

The extension macro ``q1[q2]`` binds to everything parsed so far on the
current sequence level, so ``@ X [A B]?`` parses as ``((@ ◦ X)[A B])?``-ish:
the bracket extends ``@ X`` and the trailing tag applies to the bracket's
blocks — matching the examples in Section 4.1.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import MBLSyntaxError
from repro.mbl.ast import (
    AtMacro,
    BlockAtom,
    Concat,
    Expression,
    Extend,
    Power,
    QuerySet,
    Tagged,
    Wildcard,
)
from repro.mbl.lexer import Token, TokenType, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------- utilities

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._peek()
        if token.type is not token_type:
            raise MBLSyntaxError(
                f"expected {token_type.name}, found {token.type.name} {token.value!r}",
                token.position,
            )
        return self._advance()

    # --------------------------------------------------------------- grammar

    def parse_expression(self) -> Expression:
        sequence: Optional[Expression] = None
        while True:
            token = self._peek()
            if token.type in (
                TokenType.END,
                TokenType.RPAREN,
                TokenType.RBRACE,
                TokenType.RBRACKET,
                TokenType.COMMA,
            ):
                break
            if token.type is TokenType.LBRACKET:
                if sequence is None:
                    raise MBLSyntaxError(
                        "the extension macro [..] needs a query on its left", token.position
                    )
                self._advance()
                extension = self.parse_expression()
                self._expect(TokenType.RBRACKET)
                sequence = Extend(sequence, extension)
                sequence = self._apply_postfix(sequence)
                continue
            item = self.parse_item()
            sequence = item if sequence is None else Concat(sequence, item)
        if sequence is None:
            position = self._peek().position
            raise MBLSyntaxError("empty MBL expression", position)
        return sequence

    def parse_item(self) -> Expression:
        expression = self.parse_primary()
        return self._apply_postfix(expression)

    def _apply_postfix(self, expression: Expression) -> Expression:
        while True:
            token = self._peek()
            if token.type is TokenType.TAG:
                self._advance()
                expression = Tagged(expression, token.value)
            elif token.type is TokenType.NUMBER:
                self._advance()
                expression = Power(expression, int(token.value))
            else:
                return expression

    def parse_primary(self) -> Expression:
        token = self._advance()
        if token.type is TokenType.BLOCK:
            tag = None
            if self._peek().type is TokenType.TAG:
                tag = self._advance().value
            return BlockAtom(token.value, tag)
        if token.type is TokenType.AT:
            return AtMacro()
        if token.type is TokenType.WILDCARD:
            return Wildcard()
        if token.type is TokenType.LPAREN:
            inner = self.parse_expression()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.LBRACE:
            items = [self.parse_expression()]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                items.append(self.parse_expression())
            self._expect(TokenType.RBRACE)
            return QuerySet(tuple(items))
        raise MBLSyntaxError(
            f"unexpected token {token.type.name} {token.value!r}", token.position
        )

    def parse(self) -> Expression:
        expression = self.parse_expression()
        self._expect(TokenType.END)
        return expression


def parse(text: str) -> Expression:
    """Parse an MBL expression into its AST."""
    return _Parser(tokenize(text)).parse()

"""Exception hierarchy shared across the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries while still being able to react
to specific failure modes (parse errors, learning divergence, synthesis
failure, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PolicyError(ReproError):
    """A replacement policy was configured or driven incorrectly."""


class CacheError(ReproError):
    """A cache model invariant was violated (bad block, bad line index, ...)."""


class AddressingError(CacheError):
    """Address translation / set-index / slice computation failed."""


class MBLSyntaxError(ReproError):
    """A MemBlockLang expression could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class MBLExpansionError(ReproError):
    """A syntactically valid MBL expression could not be expanded.

    Typical causes are tagging an already-tagged expression or requesting
    more distinct blocks than the configured block universe provides.
    """


class CacheQueryError(ReproError):
    """The CacheQuery frontend/backend could not execute a query."""


class StoreError(ReproError):
    """The shared prefix store could not record, encode or persist data."""


class StoreCorruptionError(StoreError):
    """A prefix-store file on disk is unreadable, malformed or truncated.

    Raised with a message naming the file and the first structural problem
    found, so a half-written store (e.g. a killed run) surfaces as an
    actionable diagnostic instead of a raw traceback.  Loading is
    all-or-nothing: a store that fails to load stays empty.
    """


class LearningError(ReproError):
    """The automata-learning loop failed (non-determinism, budget, ...)."""


class NonDeterminismError(LearningError):
    """The system under learning produced two different outputs for one query.

    The paper relies on this signal to detect incorrect reset sequences and
    adaptive (non-deterministic) cache sets (section 7.1).
    """

    def __init__(self, query, first, second) -> None:
        self.query = tuple(query)
        self.first = tuple(first)
        self.second = tuple(second)
        super().__init__(
            "non-deterministic behaviour observed for query "
            f"{list(self.query)}: {list(first)} vs {list(second)}"
        )


class OutputLengthMismatchError(NonDeterminismError):
    """An oracle returned the wrong number of outputs for an input word.

    A Mealy-style output query must produce exactly one output symbol per
    input symbol; anything else means the oracle truncated or padded its
    answer (e.g. a hardware probe dropping measurements).  Kept a subclass
    of :class:`NonDeterminismError` because callers treat both as "the
    oracle cannot be trusted", but carries the actual observation instead
    of pretending the input word was a second output word.
    """

    def __init__(self, word, outputs) -> None:
        self.word = tuple(word)
        self.outputs = tuple(outputs)
        # NonDeterminismError compatibility: the "conflict" is between the
        # expected and the observed answer length.
        self.query = self.word
        self.first = self.outputs
        self.second = ()
        LearningError.__init__(
            self,
            f"oracle returned {len(self.outputs)} outputs for the "
            f"{len(self.word)}-symbol query {list(self.word)}: {list(self.outputs)}",
        )


class ResetError(LearningError):
    """A reset sequence failed to bring the cache to a reproducible state."""


class SynthesisError(ReproError):
    """The synthesizer exhausted its search space without finding a program."""


class BudgetExceeded(ReproError):
    """A configured time / query / state budget was exceeded."""

    def __init__(self, message: str, *, spent=None, budget=None) -> None:
        self.spent = spent
        self.budget = budget
        super().__init__(message)

"""Query response cache (the LevelDB stand-in of the frontend).

The real frontend memoises MBL query responses in LevelDB so repeated
queries never reach the kernel module.  Here the cache is an in-memory
dictionary with optional JSON persistence, keyed by the target
(level, slice, set) and the concrete query text.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple

Key = Tuple[str, int, int, str]


class QueryCache:
    """A dictionary-backed response cache with optional on-disk persistence."""

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = Path(path) if path is not None else None
        self._entries: Dict[Key, Tuple[str, ...]] = {}
        self.hits = 0
        self.misses = 0
        if self._path is not None and self._path.exists():
            self._load()

    @staticmethod
    def _key(level: str, slice_index: int, set_index: int, query_text: str) -> Key:
        return (level, slice_index, set_index, query_text)

    def get(
        self, level: str, slice_index: int, set_index: int, query_text: str
    ) -> Optional[Tuple[str, ...]]:
        """Return the cached outcome trace for a query, or ``None``."""
        entry = self._entries.get(self._key(level, slice_index, set_index, query_text))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        level: str,
        slice_index: int,
        set_index: int,
        query_text: str,
        outcomes: Tuple[str, ...],
    ) -> None:
        """Store the outcome trace of a query."""
        self._entries[self._key(level, slice_index, set_index, query_text)] = tuple(outcomes)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every cached response."""
        self._entries.clear()

    # ----------------------------------------------------------- persistence

    def _load(self) -> None:
        raw = json.loads(self._path.read_text())
        for item in raw:
            key = (item["level"], item["slice"], item["set"], item["query"])
            self._entries[key] = tuple(item["outcomes"])

    def save(self) -> None:
        """Write the cache to its JSON file (no-op for purely in-memory caches)."""
        if self._path is None:
            return
        serialised = [
            {
                "level": level,
                "slice": slice_index,
                "set": set_index,
                "query": query,
                "outcomes": list(outcomes),
            }
            for (level, slice_index, set_index, query), outcomes in self._entries.items()
        ]
        self._path.write_text(json.dumps(serialised))

"""Query response cache (the LevelDB stand-in of the frontend).

The real frontend memoises MBL query responses in LevelDB so repeated
queries never reach the kernel module.  Since PR 5 the cache is a view over
the shared :class:`~repro.store.PrefixStore` — the same trie substrate the
learning engine's ``ResponseTrie`` uses — keyed by the target
``(level, slice, set)`` (one store namespace per target) and the query's
*operation path* rather than its full text:

* each whitespace token of the canonical query text is one trie symbol —
  the block name plus its state-changing flush marker (``A``, ``A!``) —
  while the measurement marker ``?`` selects which positions carry a
  payload (cache outcomes are per *profiled* access);
* queries sharing an operation prefix (every probe of one Polca word, every
  query behind one reset sequence) share storage structurally, so on-disk
  caches stop growing quadratically with suite depth;
* a query whose operations form a *prefix* of an already-answered query is
  served without ever having been executed itself — and measurement
  sessions (:meth:`~repro.cachequery.frontend.CacheQuery.open_session`)
  use :meth:`known_prefix` to execute only the un-cached suffix;
* conflicting measurements for the same operation prefix raise
  :class:`~repro.errors.NonDeterminismError`, the broken-reset signal of
  Section 7.1, now enforced on the frontend path too.

Legacy flat-JSON cache files (one object per full query text) are migrated
into the trie format on first open and rewritten in the versioned store
codec on the next :meth:`QueryCache.save`.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.errors import CacheQueryError, NonDeterminismError, StoreError
from repro.mbl.ast import FLUSH_TAG, PROFILE_TAG
from repro.store import PrefixStore, is_store_document

#: First element of every frontend namespace key inside a shared store.
FRONTEND_NAMESPACE = "mbl"


def tokenize_query(query_text: str) -> Tuple[Tuple[str, ...], Tuple[int, ...]]:
    """Split canonical query text into trie symbols and profiled positions.

    Returns ``(symbols, profiled)`` where ``symbols`` keeps the
    state-changing flush marker (``A!``) but strips the measurement marker
    (``A?`` → ``A``), and ``profiled`` lists the positions whose outcome
    the query measures.  ``A`` and ``A?`` therefore share one trie node:
    profiling does not change cache state, only what is observed.
    """
    symbols: List[str] = []
    profiled: List[int] = []
    for position, token in enumerate(query_text.split()):
        if token.endswith(PROFILE_TAG):
            symbols.append(token[: -len(PROFILE_TAG)])
            profiled.append(position)
        else:
            symbols.append(token)
    return tuple(symbols), tuple(profiled)


def operation_symbol(operation) -> str:
    """Trie symbol for one :class:`~repro.mbl.ast.Operation` (flush kept, ``?`` dropped)."""
    return f"{operation.block}{FLUSH_TAG}" if operation.flush else operation.block


class QueryCache:
    """A trie-backed response cache with optional on-disk persistence.

    ``QueryCache(path)`` owns a private :class:`~repro.store.PrefixStore`
    loaded from ``path`` (native codec or legacy flat JSON, migrated);
    ``QueryCache(store=...)`` joins an existing — possibly shared — store
    instead, which is how one store file backs both the frontend cache and
    the learning trie of a hardware-path run.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        store: Optional[PrefixStore] = None,
        scope: Sequence[object] = (),
    ) -> None:
        """``scope`` extends the namespace key between the ``"mbl"`` marker and
        the ``(level, slice, set)`` target — the frontend passes the CPU
        profile name and per-level effective associativities, so different
        machines (or CAT/profile-reduced geometries) sharing one store file
        never collide on a target key."""
        self._path = Path(path) if path is not None else None
        self._scope = tuple(scope)
        if store is not None:
            self.store = store
            if self._path is None:
                self._path = store.path
        else:
            self.store = self._open_private_store(path)
        self.hits = 0
        self.misses = 0
        if (
            self._path is not None
            and not getattr(self.store, "sharded", False)
            and self._path.is_file()
            and not self._loaded_marker()
        ):
            self._load()

    @staticmethod
    def _open_private_store(path: Optional[str]):
        """Open the cache's own backing store for ``path``.

        A directory (or ``.shards``-suffixed / trailing-separator path)
        opens a sharded corpus; an existing native store file opens
        (and, for v1, migrates) through :class:`~repro.store.PrefixStore`
        directly so its append-log sync state is adopted; anything else —
        a fresh path or a legacy flat-JSON cache — gets an empty store
        bound to the path, and :meth:`_load` migrates the legacy content.
        """
        if path is None:
            return PrefixStore()
        from repro.store.codec import read_first_line
        from repro.store.shards import open_store

        target = Path(path)
        if target.is_dir() or str(path).endswith(os.sep) or target.suffix == ".shards":
            return open_store(path)
        if target.exists():
            try:
                header = json.loads(read_first_line(target))
            except OSError as exc:
                raise CacheQueryError(
                    f"query cache file {target} is unreadable or corrupted "
                    f"({exc}); delete it to start with an empty cache"
                ) from exc
            except (json.JSONDecodeError, UnicodeDecodeError):
                header = None
            if is_store_document(header):
                try:
                    return PrefixStore(str(target))
                except StoreError as exc:
                    raise CacheQueryError(str(exc)) from exc
                except NonDeterminismError as exc:
                    raise CacheQueryError(
                        f"query cache file {target} contains conflicting "
                        f"measurements for a shared operation prefix ({exc}); "
                        "the recorded system was not deterministic — delete "
                        "the file to start with an empty cache"
                    ) from exc
        store = PrefixStore()
        store.path = target
        return store

    def _loaded_marker(self) -> bool:
        """True when the backing store already holds this file's namespaces.

        A store created with ``PrefixStore(path)`` loads the file itself
        (its :attr:`~repro.store.PrefixStore.load_report` says so);
        joining such a store must not migrate/load the same file twice.
        """
        if self.store.path != self._path:
            return False
        if getattr(self.store, "load_report", None) is not None:
            return True
        return any(key and key[0] == FRONTEND_NAMESPACE for key in self.store.namespaces())

    # ------------------------------------------------------------- namespaces

    def _key(self, level: str, slice_index: int, set_index: int) -> Tuple[object, ...]:
        return (FRONTEND_NAMESPACE,) + self._scope + (level, slice_index, set_index)

    def _namespace(self, level: str, slice_index: int, set_index: int):
        return self.store.namespace(self._key(level, slice_index, set_index))

    def _frontend_namespaces(self):
        marker = (FRONTEND_NAMESPACE,) + self._scope
        return [
            self.store.namespace(key)
            for key in self.store.namespaces()
            if key[: len(marker)] == marker
        ]

    # ----------------------------------------------------------------- access

    def get(
        self, level: str, slice_index: int, set_index: int, query_text: str
    ) -> Optional[Tuple[str, ...]]:
        """Return the cached outcome trace for a query, or ``None``.

        A query is served when its whole operation path is stored — whether
        it was recorded itself or is a prefix of a longer recorded query —
        and every profiled position carries a measurement.
        """
        symbols, profiled = tokenize_query(query_text)
        if not symbols:
            self.misses += 1
            return None
        payloads = self._namespace(level, slice_index, set_index).lookup(symbols)
        if payloads is None or any(payloads[position] is None for position in profiled):
            self.misses += 1
            return None
        self.hits += 1
        return tuple(payloads[position] for position in profiled)

    def put(
        self,
        level: str,
        slice_index: int,
        set_index: int,
        query_text: str,
        outcomes: Sequence[str],
    ) -> None:
        """Store the outcome trace of a query (one outcome per profiled access)."""
        symbols, profiled = tokenize_query(query_text)
        outcomes = tuple(outcomes)
        if len(outcomes) != len(profiled):
            raise CacheQueryError(
                f"query {query_text!r} profiles {len(profiled)} accesses but "
                f"{len(outcomes)} outcomes were provided"
            )
        payloads: List[Optional[str]] = [None] * len(symbols)
        for position, outcome in zip(profiled, outcomes):
            payloads[position] = outcome
        self._namespace(level, slice_index, set_index).record(
            symbols, payloads, terminal=True
        )

    def record_path(
        self,
        level: str,
        slice_index: int,
        set_index: int,
        symbols: Sequence[str],
        payloads: Sequence[Optional[str]],
        *,
        terminal: bool = True,
    ) -> None:
        """Record a pre-tokenized operation path (the measurement-session entry point)."""
        self._namespace(level, slice_index, set_index).record(
            symbols, payloads, terminal=terminal
        )

    def known_prefix(
        self, level: str, slice_index: int, set_index: int, symbols: Sequence[str]
    ) -> Tuple[int, Tuple[Optional[str], ...]]:
        """Longest stored prefix of an operation path: ``(k, payloads[:k])``.

        No hit/miss accounting — this is the pure peek measurement sessions
        use to decide how much of a query still has to execute.
        """
        return self._namespace(level, slice_index, set_index).lookup_prefix(symbols)

    # ------------------------------------------------------------- statistics

    def __len__(self) -> int:
        return sum(ns.entry_count for ns in self._frontend_namespaces())

    @property
    def node_count(self) -> int:
        """Stored operation prefixes across every target (trie nodes)."""
        return sum(ns.node_count for ns in self._frontend_namespaces())

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every cached response (frontend namespaces only)."""
        for namespace in self._frontend_namespaces():
            namespace.clear()

    # ----------------------------------------------------------- persistence

    def _load(self) -> None:
        """Populate the cache from its file (native store codec or legacy JSON).

        A corrupted, truncated or empty file raises a
        :class:`~repro.errors.CacheQueryError` naming the file instead of
        leaking a raw traceback — a half-written cache (e.g. a killed run)
        is an expected failure mode, and callers can delete the file and
        retry.  Loading is all-or-nothing: the file is decoded into a
        scratch store first and merged into the backing store only on full
        success, so a corrupt file never leaves partial measurements behind
        — in particular not in a *shared* store other views depend on.
        Legacy flat-JSON caches (a list of per-query-text objects) are
        migrated into the trie on load and rewritten in the store codec by
        the next :meth:`save`.
        """
        from repro.store.codec import load_store_file, read_first_line

        try:
            header = json.loads(read_first_line(self._path))
        except OSError as exc:
            raise CacheQueryError(
                f"query cache file {self._path} is unreadable or corrupted "
                f"({exc}); delete it to start with an empty cache"
            ) from exc
        except (json.JSONDecodeError, UnicodeDecodeError):
            header = None
        staging = PrefixStore()
        foreign = True  # until proven a current-format native file
        if is_store_document(header):
            try:
                report = load_store_file(self._path, staging)
            except StoreError as exc:
                raise CacheQueryError(str(exc)) from exc
            except NonDeterminismError as exc:
                raise CacheQueryError(
                    f"query cache file {self._path} contains conflicting "
                    f"measurements for a shared operation prefix ({exc}); "
                    "the recorded system was not deterministic — delete the "
                    "file to start with an empty cache"
                ) from exc
            foreign = report.migrated
        else:
            try:
                raw = json.loads(self._path.read_text())
            except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CacheQueryError(
                    f"query cache file {self._path} is unreadable or corrupted "
                    f"({exc}); delete it to start with an empty cache"
                ) from exc
            if not isinstance(raw, list):
                raise CacheQueryError(
                    f"query cache file {self._path} is malformed: expected a JSON "
                    f"list of entries (legacy format) or a prefix-store document, "
                    f"got {type(raw).__name__}"
                )
            self._migrate_legacy(raw, staging)
        try:
            for key in staging.namespaces():
                self.store.namespace(key).merge(staging.namespace(key))
        except NonDeterminismError as exc:
            raise CacheQueryError(
                f"query cache file {self._path} conflicts with measurements "
                f"already in the shared store ({exc}); the two sources "
                "disagree about the same operation prefix"
            ) from exc
        if foreign and self.store.path == self._path:
            # The on-disk bytes are not a v2 append log (legacy JSON or a
            # v1 document loaded sideways): the next save must rewrite a
            # full snapshot rather than try to append to foreign content.
            self.store.require_snapshot()

    def _migrate_legacy(self, raw: list, staging: PrefixStore) -> None:
        """Decode a legacy flat-JSON cache into ``staging``, validating every entry."""
        migrated = QueryCache(store=staging, scope=self._scope)
        for index, item in enumerate(raw):
            try:
                level = item["level"]
                slice_index = item["slice"]
                set_index = item["set"]
                query = item["query"]
                outcomes = tuple(item["outcomes"])
            except (KeyError, TypeError) as exc:
                raise CacheQueryError(
                    f"query cache file {self._path} is malformed at entry "
                    f"{index}: {exc!r}; delete it to start with an empty cache"
                ) from exc
            try:
                migrated.put(level, slice_index, set_index, query, outcomes)
            except NonDeterminismError as exc:
                raise CacheQueryError(
                    f"legacy query cache file {self._path} contains conflicting "
                    f"measurements for a shared operation prefix ({exc}); the "
                    "recorded system was not deterministic — delete the file to "
                    "start with an empty cache"
                ) from exc
            except CacheQueryError as exc:
                raise CacheQueryError(
                    f"query cache file {self._path} is malformed at entry "
                    f"{index}: {exc}; delete it to start with an empty cache"
                ) from exc

    def save(self) -> None:
        """Atomically write the backing store (no-op for purely in-memory caches)."""
        if self._path is None:
            return
        self.store.save(self._path)

"""Query response cache (the LevelDB stand-in of the frontend).

The real frontend memoises MBL query responses in LevelDB so repeated
queries never reach the kernel module.  Here the cache is an in-memory
dictionary with optional JSON persistence, keyed by the target
(level, slice, set) and the concrete query text.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.errors import CacheQueryError

Key = Tuple[str, int, int, str]


class QueryCache:
    """A dictionary-backed response cache with optional on-disk persistence."""

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = Path(path) if path is not None else None
        self._entries: Dict[Key, Tuple[str, ...]] = {}
        self.hits = 0
        self.misses = 0
        if self._path is not None and self._path.exists():
            self._load()

    @staticmethod
    def _key(level: str, slice_index: int, set_index: int, query_text: str) -> Key:
        return (level, slice_index, set_index, query_text)

    def get(
        self, level: str, slice_index: int, set_index: int, query_text: str
    ) -> Optional[Tuple[str, ...]]:
        """Return the cached outcome trace for a query, or ``None``."""
        entry = self._entries.get(self._key(level, slice_index, set_index, query_text))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        level: str,
        slice_index: int,
        set_index: int,
        query_text: str,
        outcomes: Tuple[str, ...],
    ) -> None:
        """Store the outcome trace of a query."""
        self._entries[self._key(level, slice_index, set_index, query_text)] = tuple(outcomes)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every cached response."""
        self._entries.clear()

    # ----------------------------------------------------------- persistence

    def _load(self) -> None:
        """Populate the cache from its JSON file.

        A corrupted, truncated or empty file raises a
        :class:`~repro.errors.CacheQueryError` naming the file instead of
        leaking a raw ``json.JSONDecodeError`` traceback — a half-written
        cache (e.g. a killed run) is an expected failure mode, and callers
        can delete the file and retry.  Nothing is partially loaded: the
        cache stays empty when loading fails.
        """
        try:
            raw = json.loads(self._path.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CacheQueryError(
                f"query cache file {self._path} is unreadable or corrupted "
                f"({exc}); delete it to start with an empty cache"
            ) from exc
        if not isinstance(raw, list):
            raise CacheQueryError(
                f"query cache file {self._path} is malformed: expected a JSON "
                f"list of entries, got {type(raw).__name__}"
            )
        entries: Dict[Key, Tuple[str, ...]] = {}
        for index, item in enumerate(raw):
            try:
                key = (item["level"], item["slice"], item["set"], item["query"])
                entries[key] = tuple(item["outcomes"])
            except (KeyError, TypeError) as exc:
                raise CacheQueryError(
                    f"query cache file {self._path} is malformed at entry "
                    f"{index}: {exc!r}; delete it to start with an empty cache"
                ) from exc
        self._entries.update(entries)

    def save(self) -> None:
        """Write the cache to its JSON file (no-op for purely in-memory caches)."""
        if self._path is None:
            return
        serialised = [
            {
                "level": level,
                "slice": slice_index,
                "set": set_index,
                "query": query,
                "outcomes": list(outcomes),
            }
            for (level, slice_index, set_index, query), outcomes in self._entries.items()
        ]
        self._path.write_text(json.dumps(serialised))

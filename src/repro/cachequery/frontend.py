"""CacheQuery frontend: MBL expansion, response caching, and the Polca adapter.

The frontend is what users (and Polca) talk to.  It expands MemBlockLang
expressions into concrete queries, forwards them to the backend targeting
the currently selected cache set, memoises responses (the LevelDB stand-in)
and offers the two execution modes of the real tool: an interactive REPL and
a batch mode that sweeps many sets with the same expressions (used for the
leader-set detection of Appendix B).

:class:`CacheQuerySetInterface` adapts a configured frontend to the
:class:`~repro.polca.interfaces.CacheProbeInterface` protocol so the whole
learning pipeline can run against the simulated hardware unchanged.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cachequery.backend import BackendConfig, CacheQueryBackend
from repro.cachequery.querycache import QueryCache, operation_symbol
from repro.errors import CacheQueryError, NonDeterminismError
from repro.hardware.cpu import SimulatedCPU
from repro.hardware.profiles import cpu_profile
from repro.mbl.expansion import expand, query_to_text
from repro.polca.reset import FlushRefillReset, ResetStrategy


@dataclass
class CacheQueryConfig:
    """User-facing configuration of a CacheQuery session."""

    level: str = "L2"
    set_index: int = 0
    slice_index: int = 0
    use_cache: bool = True
    cache_path: Optional[str] = None
    backend: BackendConfig = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.backend is None:
            self.backend = BackendConfig()


class _MeasurementSession:
    """State of one open measurement session (see :meth:`CacheQuery.open_session`).

    ``operations``/``symbols`` is the logical operation path accumulated so
    far; ``payloads`` carries one measurement (or ``None``) per position;
    ``executed`` is the watermark of operations that actually ran on the
    CPU — everything before it was either executed or served from the
    response cache and will be (re)played lazily the first time an
    un-cached extension needs the real state.
    """

    __slots__ = ("operations", "symbols", "payloads", "executed")

    def __init__(self) -> None:
        self.operations: List = []
        self.symbols: List[str] = []
        self.payloads: List[Optional[str]] = []
        self.executed = 0


class CacheQuery:
    """The frontend: expand MBL, run queries on one cache set, cache the answers."""

    def __init__(
        self,
        cpu: SimulatedCPU,
        config: Optional[CacheQueryConfig] = None,
        *,
        backend: Optional[CacheQueryBackend] = None,
        store=None,
    ) -> None:
        self.cpu = cpu
        self.config = config or CacheQueryConfig()
        self.backend = backend or CacheQueryBackend(cpu, self.config.backend)
        # ``store`` (a repro.store.PrefixStore) lets the response cache live
        # in a shared store — e.g. the same instance backing the learning
        # trie — so one file persists the whole measurement state.  The
        # scope keys cached measurements by CPU and effective geometry, so
        # different machines (or CAT-reduced profiles) sharing one store
        # file never collide.
        scope = (cpu.profile.name,) + tuple(
            f"{name}:{cpu.hierarchy.level(name).effective_associativity}"
            for name in cpu.hierarchy.level_names()
        )
        self.cache = QueryCache(self.config.cache_path, store=store, scope=scope)
        self._session: Optional[_MeasurementSession] = None
        self.configure(
            level=self.config.level,
            set_index=self.config.set_index,
            slice_index=self.config.slice_index,
        )

    # ---------------------------------------------------------- configuration

    def configure(
        self,
        *,
        level: Optional[str] = None,
        set_index: Optional[int] = None,
        slice_index: Optional[int] = None,
    ) -> None:
        """Re-target the session (the interactive mode's ``set``/``level`` commands)."""
        if level is not None:
            self.config.level = level
        if set_index is not None:
            self.config.set_index = set_index
        if slice_index is not None:
            self.config.slice_index = slice_index
        self.backend.configure_target(
            self.config.level, self.config.set_index, self.config.slice_index
        )
        self._session = None  # a session is bound to one target

    @property
    def associativity(self) -> int:
        """Effective associativity (after CAT) of the targeted set."""
        return self.backend.associativity

    @property
    def blocks(self) -> Tuple[str, ...]:
        """Abstract block names available for queries."""
        return self.backend.pool_blocks()

    # -------------------------------------------------------------- execution

    def query(self, expression: str) -> List[Tuple[str, ...]]:
        """Expand ``expression`` and execute every resulting query.

        Returns one tuple of Hit/Miss verdicts (one per ``?``-tagged access)
        per expanded query, in expansion order.
        """
        queries = expand(expression, self.associativity, self.blocks)
        return [self._execute_concrete(query_to_text(c), c) for c in queries]

    def _execute_concrete(self, text, concrete) -> Tuple[str, ...]:
        """Execute one concrete query through the response cache."""
        cached = (
            self.cache.get(
                self.config.level, self.config.slice_index, self.config.set_index, text
            )
            if self.config.use_cache
            else None
        )
        if cached is not None:
            return cached
        outcome = self.backend.execute(concrete)
        if self.config.use_cache:
            self.cache.put(
                self.config.level,
                self.config.slice_index,
                self.config.set_index,
                text,
                outcome,
            )
        return outcome

    def query_batch(self, expressions: Sequence[str]) -> List[List[Tuple[str, ...]]]:
        """Expand and execute many MBL expressions, deduplicating concrete queries.

        The expansions of all expressions are collected first; each distinct
        concrete query (by its canonical text) is executed at most once for
        the current target, whether the repetition comes from one expression
        expanding to overlapping queries or from duplicate expressions in
        the batch.  Results are returned per expression, in input order —
        the batched counterpart of :meth:`query`, used by consumers that
        stage many queries per round (e.g. the learning hot path).

        When the response cache is disabled (``use_cache=False``, set to
        force fresh measurements) no intra-batch memoisation happens either:
        every concrete query reaches the backend, exactly like repeated
        :meth:`query` calls.
        """
        expanded = [
            expand(expression, self.associativity, self.blocks)
            for expression in expressions
        ]
        answered: Dict[str, Tuple[str, ...]] = {}
        results: List[List[Tuple[str, ...]]] = []
        for queries in expanded:
            outcomes: List[Tuple[str, ...]] = []
            for concrete in queries:
                text = query_to_text(concrete)
                if not self.config.use_cache:
                    outcomes.append(self._execute_concrete(text, concrete))
                    continue
                if text not in answered:
                    answered[text] = self._execute_concrete(text, concrete)
                outcomes.append(answered[text])
            results.append(outcomes)
        return results

    def cache_statistics(self) -> Dict[str, float]:
        """Hit/miss/size counters of the response cache (for overhead reports)."""
        return {
            "hits": self.cache.hits,
            "misses": self.cache.misses,
            "entries": len(self.cache),
            "nodes": self.cache.node_count,
            "hit_ratio": self.cache.hit_ratio,
        }

    # ----------------------------------------------------- measurement session

    @property
    def session_active(self) -> bool:
        """True while a measurement session is open on the current target."""
        return self._session is not None

    def open_session(self) -> None:
        """Open a stateful measurement session on the current target.

        A session accumulates one *operation path*: repeated :meth:`extend`
        calls append operations and return the new operations' outcomes,
        executing **only what the response cache cannot already answer** —
        the resume protocol of the learning stack, pushed down to the
        hardware frontend.  Execution is lazy: cached extensions cost
        nothing, and the first un-cached extension replays the pending
        suffix (never the whole session) to bring the CPU to the session's
        state.  Session operations run once each (no majority voting): the
        path itself must start with a reset sequence to be reproducible,
        exactly like a standalone query.  Because single-shot measurements
        forgo the repetition-based outlier suppression of :meth:`query`, a
        noisy timing source can misclassify one access — the session's
        cross-check against cached measurements then raises
        :class:`~repro.errors.NonDeterminismError` (the Section 7.1
        signal) rather than caching a wrong outcome.
        """
        self._session = _MeasurementSession()

    def reset_session(self) -> None:
        """Restart the open session's operation path from scratch."""
        self._require_session()
        self._session = _MeasurementSession()

    def close_session(self) -> None:
        """End the measurement session (idempotent)."""
        self._session = None

    def _require_session(self) -> _MeasurementSession:
        if self._session is None:
            raise CacheQueryError("no measurement session open; call open_session() first")
        return self._session

    def extend(self, expression: str) -> Tuple[str, ...]:
        """Append ``expression`` to the open session; return its profiled outcomes.

        The expression must expand to exactly one concrete query fragment
        for the current target.  Outcomes cover only the *new* operations'
        profiled accesses; earlier outcomes were already returned by the
        extends that appended them.
        """
        session = self._require_session()
        fragments = expand(expression, self.associativity, self.blocks)
        if len(fragments) != 1:
            raise CacheQueryError(
                f"a session extension must expand to exactly one query, "
                f"got {len(fragments)}"
            )
        return self._extend_operations(session, fragments[0])

    def _extend_operations(self, session: _MeasurementSession, operations) -> Tuple[str, ...]:
        start = len(session.operations)
        session.operations.extend(operations)
        session.symbols.extend(operation_symbol(operation) for operation in operations)
        session.payloads.extend(None for _ in operations)
        new_profiled = [
            position
            for position in range(start, len(session.operations))
            if session.operations[position].profiled
        ]
        target = (self.config.level, self.config.slice_index, self.config.set_index)
        if self.config.use_cache:
            known, payloads = self.cache.known_prefix(*target, session.symbols)
            if known == len(session.symbols) and all(
                payloads[position] is not None for position in new_profiled
            ):
                # Fully cached: serve without touching the CPU.  The session
                # keeps the cached payloads so a later executed replay can
                # cross-check them against fresh measurements.
                for position in range(start, len(session.symbols)):
                    if session.payloads[position] is None:
                        session.payloads[position] = payloads[position]
                return tuple(session.payloads[position] for position in new_profiled)
        # Execute the pending suffix (everything after the watermark — the
        # un-cached part of the path plus any lazily skipped operations).
        pending = session.operations[session.executed :]
        outcomes = iter(self.backend.execute_operations(pending))
        for position in range(session.executed, len(session.operations)):
            if session.operations[position].profiled:
                measured = next(outcomes)
                cached = session.payloads[position]
                if cached is not None and cached != measured:
                    raise NonDeterminismError(
                        tuple(session.symbols[: position + 1]),
                        (cached,),
                        (measured,),
                    )
                session.payloads[position] = measured
        session.executed = len(session.operations)
        if self.config.use_cache:
            self.cache.record_path(
                *target, session.symbols, session.payloads, terminal=False
            )
        return tuple(session.payloads[position] for position in new_profiled)

    def batch(
        self,
        expression: str,
        set_indexes: Sequence[int],
        *,
        slice_index: Optional[int] = None,
    ) -> Dict[int, List[Tuple[str, ...]]]:
        """Run one expression against many sets (the batch mode of Section 4.2)."""
        original = (self.config.level, self.config.set_index, self.config.slice_index)
        results: Dict[int, List[Tuple[str, ...]]] = {}
        try:
            for set_index in set_indexes:
                self.configure(set_index=set_index, slice_index=slice_index)
                results[set_index] = self.query(expression)
        finally:
            self.configure(level=original[0], set_index=original[1], slice_index=original[2])
        return results

    # ------------------------------------------------------------ interactive

    def interactive(self, input_fn=input, output_fn=print) -> None:
        """A small REPL: ``level L2``, ``set 63``, ``slice 1``, MBL queries, ``quit``."""
        output_fn(
            f"CacheQuery on {self.cpu.profile.name}: level {self.config.level}, "
            f"set {self.config.set_index}, slice {self.config.slice_index}"
        )
        while True:
            try:
                line = input_fn("cachequery> ").strip()
            except EOFError:
                return
            if not line:
                continue
            if line in ("quit", "exit"):
                return
            try:
                if line.startswith("level "):
                    self.configure(level=line.split(maxsplit=1)[1])
                elif line.startswith("set "):
                    self.configure(set_index=int(line.split(maxsplit=1)[1]))
                elif line.startswith("slice "):
                    self.configure(slice_index=int(line.split(maxsplit=1)[1]))
                elif line == "blocks":
                    output_fn(" ".join(self.blocks))
                else:
                    for outcome in self.query(line):
                        output_fn(" ".join(outcome) if outcome else "(no profiled access)")
            except Exception as error:  # surface errors, keep the REPL alive
                output_fn(f"error: {error}")


class CacheQuerySetInterface:
    """Polca's view of one hardware cache set, through a CacheQuery session.

    Every :meth:`probe` prepends the configured reset sequence and profiles
    every block of the probe, so Polca sees exactly the reset-and-probe
    semantics it expects.  The interface also implements the *measurement
    session* extension (``supports_sessions``): :meth:`open_session` starts
    a reset-anchored session and :meth:`extend` profiles additional blocks
    incrementally, so a resuming consumer (Polca with ``resume=True``)
    executes only the un-cached suffix of a growing access chain instead of
    replaying the whole chain per step.
    """

    supports_sessions = True

    def __init__(
        self,
        frontend: CacheQuery,
        *,
        reset: Optional[ResetStrategy] = None,
    ) -> None:
        self.frontend = frontend
        self.reset = reset if reset is not None else FlushRefillReset()
        self.associativity = frontend.associativity
        universe = frontend.blocks
        if len(universe) <= self.associativity:
            raise CacheQueryError("the CacheQuery pool is too small for Polca")
        self._universe = universe
        self._initial = universe[: self.associativity]
        self.probe_count = 0
        self.access_count = 0
        self.sessions_opened = 0
        self.session_accesses = 0

    def initial_blocks(self) -> Tuple[str, ...]:
        return self._initial

    def block_universe(self) -> Tuple[str, ...]:
        return self._universe

    def store_namespace(self) -> Tuple[object, ...]:
        """Namespace key identifying this target inside a shared prefix store."""
        config = self.frontend.config
        return (
            "cachequery",
            self.frontend.cpu.profile.name,
            config.level,
            config.slice_index,
            config.set_index,
            self.associativity,
            self.reset.describe(),
        )

    # ----------------------------------------------------- measurement session

    def open_session(self) -> None:
        """Start a measurement session anchored at the reset state."""
        self.frontend.open_session()
        prefix = self.reset.mbl_prefix(self.associativity, self._universe)
        if prefix:
            self.frontend.extend(prefix)
        self.sessions_opened += 1

    def extend(self, blocks: Sequence[str]) -> Tuple[str, ...]:
        """Profile ``blocks`` as an extension of the session's access chain."""
        if not blocks:
            return ()
        outcomes = self.frontend.extend(" ".join(f"{block}?" for block in blocks))
        self.session_accesses += len(blocks)
        return outcomes

    def close_session(self) -> None:
        """End the measurement session (idempotent)."""
        self.frontend.close_session()

    def probe(self, blocks: Sequence[str]) -> Tuple[str, ...]:
        if not blocks:
            return ()
        prefix = self.reset.mbl_prefix(self.associativity, self._universe)
        profiled = " ".join(f"{block}?" for block in blocks)
        expression = f"{prefix} {profiled}".strip()
        results = self.frontend.query(expression)
        if len(results) != 1:
            raise CacheQueryError(
                f"a Polca probe must expand to exactly one query, got {len(results)}"
            )
        self.probe_count += 1
        self.access_count += len(blocks)
        return results[0]

    def probe_batch(
        self, block_sequences: Sequence[Sequence[str]]
    ) -> List[Tuple[str, ...]]:
        """Run many probes through the frontend's deduplicating batch entry point.

        Identical probe sequences collapse to a single hardware query; the
        response cache handles cross-batch repeats.  Empty sequences yield
        empty outcome tuples, matching :meth:`probe`.
        """
        prefix = self.reset.mbl_prefix(self.associativity, self._universe)
        expressions: List[Optional[str]] = []
        for blocks in block_sequences:
            if not blocks:
                expressions.append(None)
                continue
            profiled = " ".join(f"{block}?" for block in blocks)
            expressions.append(f"{prefix} {profiled}".strip())
        answered = self.frontend.query_batch([e for e in expressions if e is not None])
        results: List[Tuple[str, ...]] = []
        position = 0
        for blocks, expression in zip(block_sequences, expressions):
            if expression is None:
                results.append(())
                continue
            outcome = answered[position]
            position += 1
            if len(outcome) != 1:
                raise CacheQueryError(
                    f"a Polca probe must expand to exactly one query, got {len(outcome)}"
                )
            self.probe_count += 1
            self.access_count += len(blocks)
            results.append(outcome[0])
        return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point: an interactive CacheQuery shell on a simulated CPU."""
    parser = argparse.ArgumentParser(description="CacheQuery interactive shell")
    parser.add_argument("--cpu", default="skylake", help="CPU profile (haswell/skylake/kabylake)")
    parser.add_argument("--level", default="L2", help="target cache level")
    parser.add_argument("--set", dest="set_index", type=int, default=0, help="target set index")
    parser.add_argument("--slice", dest="slice_index", type=int, default=0, help="target slice")
    parser.add_argument("--cat-ways", type=int, default=0, help="reduce L3 ways via CAT")
    arguments = parser.parse_args(argv)
    cpu = SimulatedCPU(cpu_profile(arguments.cpu))
    if arguments.cat_ways:
        cpu.configure_cat("L3", arguments.cat_ways)
    session = CacheQuery(
        cpu,
        CacheQueryConfig(
            level=arguments.level,
            set_index=arguments.set_index,
            slice_index=arguments.slice_index,
        ),
    )
    session.interactive()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

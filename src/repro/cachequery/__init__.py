"""CacheQuery: an abstract interface to individual cache sets (Section 4).

The real tool is split into a C kernel module (the backend, which selects
congruent addresses, generates measurement code and executes it) and a
Python frontend (which expands MBL expressions, caches responses and offers
interactive and batch modes).  This package keeps the same split:

* :mod:`repro.cachequery.backend` drives a :class:`~repro.hardware.cpu.SimulatedCPU`
  (address selection, cache filtering through eviction sets, profiling,
  noise suppression by repetition);
* :mod:`repro.cachequery.frontend` expands MBL, talks to the backend, caches
  responses and exposes the set-level probe interface Polca consumes;
* :mod:`repro.cachequery.classification` turns cycle measurements into
  Hit/Miss verdicts;
* :mod:`repro.cachequery.querycache` is the LevelDB stand-in.
"""

from repro.cachequery.classification import HitMissClassifier, calibrate_classifier
from repro.cachequery.querycache import QueryCache
from repro.cachequery.backend import BackendConfig, CacheQueryBackend
from repro.cachequery.frontend import (
    CacheQuery,
    CacheQueryConfig,
    CacheQuerySetInterface,
)

__all__ = [
    "HitMissClassifier",
    "calibrate_classifier",
    "QueryCache",
    "BackendConfig",
    "CacheQueryBackend",
    "CacheQuery",
    "CacheQueryConfig",
    "CacheQuerySetInterface",
]

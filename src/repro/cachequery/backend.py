"""CacheQuery backend: the kernel-module stand-in (Section 4.2, 4.3).

The backend owns everything that requires privileged, low-level control on
real hardware:

* **address selection** — it builds a pool of physical addresses that are
  congruent in the targeted (level, slice, set); abstract MBL blocks
  ``A, B, C, ...`` map to pool entries;
* **cache filtering** — before an access aimed at L2/L3, the block is evicted
  from every closer level by touching per-level eviction sets (addresses
  congruent with the block in the closer level but not in the target level),
  so the access really exercises — and is served by — the target level;
* **code generation** — queries are "compiled" into a pseudo-assembly
  listing (``movabs`` loads serialised by fences plus ``rdtsc`` profiling),
  mirroring the real module's generated code;
* **profiling and noise suppression** — profiled accesses are timed, the
  whole query is executed several times, and per-position majority voting
  removes measurement outliers;
* **interference control** — the hardware prefetcher is disabled for the
  duration of a query.

On real hardware the tool validates its eviction sets by timing; here the
validation loop uses the simulator's ``probe_level`` peek, which plays the
same role (retry until the block has left the closer levels) without
changing what the measured query observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.cacheset import HIT, MISS
from repro.cachequery.classification import HitMissClassifier
from repro.errors import CacheQueryError
from repro.hardware.cpu import SimulatedCPU
from repro.mbl.ast import Operation, Query
from repro.polca.interfaces import default_block_names


@dataclass
class BackendConfig:
    """Tunables of the backend measurement procedure."""

    repetitions: int = 3
    pool_extra_blocks: int = 8
    eviction_extra_ways: int = 2
    eviction_rounds: int = 4
    profile_with_counters: bool = False

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise CacheQueryError("repetitions must be >= 1")
        if self.pool_extra_blocks < 1:
            raise CacheQueryError("the pool needs at least one extra block")


@dataclass
class _TargetContext:
    """Everything the backend resolved for the currently selected cache set."""

    level: str
    set_index: int
    slice_index: int
    associativity: int
    pool: Dict[str, int] = field(default_factory=dict)
    eviction_sets: Dict[Tuple[int, str], List[int]] = field(default_factory=dict)


class CacheQueryBackend:
    """Executes concrete MBL queries against one cache set of a simulated CPU."""

    def __init__(self, cpu: SimulatedCPU, config: Optional[BackendConfig] = None) -> None:
        self.cpu = cpu
        self.config = config or BackendConfig()
        self._context: Optional[_TargetContext] = None
        self._classifier: Optional[HitMissClassifier] = None
        self.executed_queries = 0
        self.executed_loads = 0

    # ------------------------------------------------------------- targeting

    def configure_target(self, level: str, set_index: int, slice_index: int = 0) -> None:
        """Select the cache set all subsequent queries are aimed at."""
        cache = self.cpu.hierarchy.level(level)
        mapper = cache.mapper
        if not 0 <= set_index < mapper.sets_per_slice:
            raise CacheQueryError(
                f"set index {set_index} out of range for {level} "
                f"(0..{mapper.sets_per_slice - 1})"
            )
        if not 0 <= slice_index < mapper.slices:
            raise CacheQueryError(
                f"slice {slice_index} out of range for {level} (0..{mapper.slices - 1})"
            )
        associativity = cache.effective_associativity
        pool_size = associativity + self.config.pool_extra_blocks
        addresses = mapper.congruent_addresses(set_index, slice_index, pool_size)
        names = default_block_names(pool_size)
        context = _TargetContext(
            level=level,
            set_index=set_index,
            slice_index=slice_index,
            associativity=associativity,
            pool=dict(zip(names, addresses)),
        )
        self._context = context
        self._classifier = HitMissClassifier(self.cpu.timing.hit_threshold(level))

    def _require_context(self) -> _TargetContext:
        if self._context is None:
            raise CacheQueryError("no target configured; call configure_target() first")
        return self._context

    @property
    def target_level(self) -> str:
        """Name of the currently targeted cache level."""
        return self._require_context().level

    @property
    def associativity(self) -> int:
        """Effective associativity (after CAT) of the targeted set."""
        return self._require_context().associativity

    def pool_blocks(self) -> Tuple[str, ...]:
        """Abstract block names available for queries against the current target."""
        return tuple(self._require_context().pool)

    def block_address(self, block: str) -> int:
        """Physical address backing an abstract block of the current pool."""
        context = self._require_context()
        try:
            return context.pool[block]
        except KeyError:
            raise CacheQueryError(
                f"block {block!r} is not part of the pool for {context.level} "
                f"set {context.set_index}"
            ) from None

    # ------------------------------------------------------- cache filtering

    def _closer_levels(self, level: str) -> List[str]:
        names = list(self.cpu.hierarchy.level_names())
        return names[: names.index(level)]

    def _eviction_addresses(self, block_address: int, closer_level: str) -> List[int]:
        context = self._require_context()
        key = (block_address, closer_level)
        cached = context.eviction_sets.get(key)
        if cached is not None:
            return cached
        closer_cache = self.cpu.hierarchy.level(closer_level)
        closer_mapper = closer_cache.mapper
        target_mapper = self.cpu.hierarchy.level(context.level).mapper
        target_location = (context.slice_index, context.set_index)
        own_slice, own_set = closer_mapper.locate(block_address)
        wanted = closer_cache.nominal_associativity + self.config.eviction_extra_ways
        pool_addresses = set(context.pool.values())
        candidates = closer_mapper.congruent_addresses(own_set, own_slice, wanted * 4)
        selected: List[int] = []
        for candidate in candidates:
            if candidate == block_address or candidate in pool_addresses:
                continue
            if target_mapper.locate(candidate) == target_location:
                continue
            selected.append(candidate)
            if len(selected) >= wanted:
                break
        if len(selected) < wanted:
            raise CacheQueryError(
                f"could not build a non-interfering {closer_level} eviction set"
            )
        context.eviction_sets[key] = selected
        return selected

    def _filter_closer_levels(self, block_address: int) -> None:
        """Evict the block from every level closer to the core than the target."""
        context = self._require_context()
        closer = self._closer_levels(context.level)
        if not closer:
            return
        target_index = list(self.cpu.hierarchy.level_names()).index(context.level)
        for _ in range(self.config.eviction_rounds):
            holder = self.cpu.hierarchy.peek(block_address)
            if holder is None:
                return
            if list(self.cpu.hierarchy.level_names()).index(holder) >= target_index:
                return
            for address in self._eviction_addresses(block_address, holder):
                self.cpu.load_physical(address)
                self.executed_loads += 1
        raise CacheQueryError(
            f"failed to evict block {block_address:#x} from the levels above "
            f"{context.level}"
        )

    # -------------------------------------------------------------- execution

    def generate_code(self, query: Query) -> str:
        """Return the pseudo-assembly the real backend would emit for ``query``."""
        context = self._require_context()
        lines = ["; CacheQuery generated code", "xor r10, r10  ; hit/miss bitmask"]
        bit = 0
        for operation in query:
            address = context.pool.get(operation.block, 0)
            if operation.flush:
                lines.append(f"clflush [{address:#x}]  ; {operation.block}!")
                continue
            if operation.profiled:
                lines.append("mfence")
                lines.append("rdtsc")
                lines.append("mov r8, rax")
            lines.append(f"movabs rax, qword [{address:#x}]  ; {operation.block}")
            lines.append("mfence")
            if operation.profiled:
                lines.append("rdtsc")
                lines.append("sub rax, r8")
                lines.append(f"mov r11, {1 << bit:#x}  ; mask for bit {bit}")
                lines.append("xor r9, r9")
                lines.append(f"cmp rax, {int(self.cpu.timing.hit_threshold(context.level))}")
                lines.append(f"cmovb r9, r11  ; r9 = mask when bit {bit} is a hit")
                lines.append("or r10, r9  ; accumulate into the hit/miss bitmask")
                bit += 1
        lines.append("ret")
        return "\n".join(lines)

    def _execute_once(self, query: Query) -> List[str]:
        context = self._require_context()
        outcomes: List[str] = []
        is_innermost = context.level == self.cpu.hierarchy.level_names()[0]
        for operation in query:
            address = self.block_address(operation.block)
            if operation.flush:
                self.cpu.clflush_physical(address)
                continue
            if not is_innermost:
                self._filter_closer_levels(address)
            if operation.profiled and self.config.profile_with_counters:
                holder_before = self.cpu.hierarchy.peek(address)
                self.cpu.load_physical(address)
                self.executed_loads += 1
                outcomes.append(HIT if holder_before == context.level else MISS)
                continue
            cycles = self.cpu.load_physical(address)
            self.executed_loads += 1
            if operation.profiled:
                outcomes.append(self._classifier.classify(cycles))
        return outcomes

    def execute_operations(self, operations: Sequence[Operation]) -> Tuple[str, ...]:
        """Execute ``operations`` once, in order, from the CPU's *current* state.

        This is the measurement-session primitive: unlike :meth:`execute`
        it performs no repetition/majority voting (a session's operations
        mutate the very state later extensions depend on, so each operation
        runs exactly once) and does not start from a reset — the caller's
        session path is responsible for establishing a reproducible state.
        Returns one Hit/Miss verdict per profiled operation.
        """
        self._require_context()
        previous_prefetcher = self.cpu.prefetcher.enabled
        self.cpu.set_prefetcher(False)
        try:
            outcomes = self._execute_once(tuple(operations))
        finally:
            self.cpu.set_prefetcher(previous_prefetcher)
        return tuple(outcomes)

    def execute(self, query: Query) -> Tuple[str, ...]:
        """Execute one concrete query; return one Hit/Miss verdict per ``?`` block.

        The query is run ``repetitions`` times and each profiled position is
        decided by majority vote, which suppresses timing outliers.
        """
        if not query:
            raise CacheQueryError("cannot execute an empty query")
        self._require_context()
        previous_prefetcher = self.cpu.prefetcher.enabled
        self.cpu.set_prefetcher(False)
        try:
            runs = [self._execute_once(query) for _ in range(self.config.repetitions)]
        finally:
            self.cpu.set_prefetcher(previous_prefetcher)
        self.executed_queries += 1
        lengths = {len(run) for run in runs}
        if len(lengths) != 1:
            raise CacheQueryError("inconsistent profile lengths across repetitions")
        verdicts: List[str] = []
        for position in range(lengths.pop()):
            votes = [run[position] for run in runs]
            verdicts.append(HIT if votes.count(HIT) * 2 > len(votes) else MISS)
        return tuple(verdicts)

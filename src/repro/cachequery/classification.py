"""Hit/miss classification of timed loads.

A profiled load is classified by comparing its latency against a per-level
threshold.  The threshold either comes from the timing model's documented
latencies or — as on real hardware, where latencies must be measured — from
a calibration run that times known hits (an immediately repeated access) and
known misses (a freshly flushed block) and places the threshold between the
two distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Sequence

from repro.cache.cacheset import HIT, MISS
from repro.errors import CacheQueryError
from repro.hardware.cpu import SimulatedCPU


@dataclass(frozen=True)
class HitMissClassifier:
    """Thresholds a latency measurement into Hit (at or above the target level) or Miss."""

    threshold_cycles: float

    def classify(self, cycles: float) -> str:
        """Return :data:`HIT` when ``cycles`` is below the threshold, else :data:`MISS`."""
        return HIT if cycles < self.threshold_cycles else MISS

    def classify_majority(self, samples: Sequence[float]) -> str:
        """Classify a set of repeated measurements by majority vote."""
        if not samples:
            raise CacheQueryError("cannot classify an empty sample list")
        votes = [self.classify(sample) for sample in samples]
        return HIT if votes.count(HIT) * 2 > len(votes) else MISS


def calibrate_classifier(
    cpu: SimulatedCPU,
    level: str,
    *,
    samples: int = 64,
    probe_address: int = 0x51C0_0000,
) -> HitMissClassifier:
    """Measure known hits and misses on ``cpu`` and derive a threshold.

    The calibration accesses one line repeatedly (after warming it into the
    hierarchy) to sample the "hit at or above ``level``" latency, and flushes
    it before each access to sample the miss latency, then places the
    threshold between the two medians.  This mirrors the once-per-machine
    calibration of the real tool and is cross-checked in the tests against
    the analytic threshold of the timing model.
    """
    if samples < 4:
        raise CacheQueryError("calibration needs at least 4 samples")
    hit_samples = []
    cpu.load(probe_address)
    for _ in range(samples):
        hit_samples.append(cpu.load(probe_address))
    miss_samples = []
    for _ in range(samples):
        cpu.clflush(probe_address)
        miss_samples.append(cpu.load(probe_address))
    hit_latency = median(hit_samples)
    miss_latency = median(miss_samples)
    if hit_latency >= miss_latency:
        raise CacheQueryError(
            "calibration failed: hit latency not below miss latency "
            f"({hit_latency:.1f} vs {miss_latency:.1f})"
        )
    # The analytic threshold for the requested level is more robust than the
    # measured midpoint when the level sits in the middle of the hierarchy
    # (e.g. an L2 hit must not be confused with an L1 hit), so prefer it and
    # fall back to the measured midpoint if the timing model lacks the level.
    try:
        threshold = cpu.timing.hit_threshold(level)
    except Exception:
        threshold = (hit_latency + miss_latency) / 2.0
    return HitMissClassifier(threshold)

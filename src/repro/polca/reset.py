"""Reset sequences (Section 7.1, Table 4).

Polca assumes every membership query starts from one fixed cache state.  On
hardware this requires a *reset sequence*: a sequence of operations that
brings the targeted cache set into the same state regardless of its history.
The paper uses two kinds:

* **Flush+Refill (F+R)** — invalidate the whole set content (``clflush`` /
  ``wbinvd``) and then access associativity-many fresh blocks (the MBL ``@``
  macro);
* **access-sequence resets** — a fixed pattern of plain accesses, e.g.
  ``@ @`` for Haswell's L1 or ``D C B A @`` for Skylake's and Kaby Lake's L2,
  found manually when F+R is not sufficient.

A reset strategy produces both the MBL prefix that CacheQuery prepends to
every query and the display name used in Table 4.  Incorrect reset sequences
manifest as non-determinism, which the learning stack surfaces as
:class:`~repro.errors.NonDeterminismError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, Tuple

from repro.errors import ResetError


class ResetStrategy(Protocol):
    """Protocol for reset sequences."""

    def mbl_prefix(self, associativity: int, blocks: Sequence[str]) -> str:
        """Return the MBL expression to execute before each query.

        ``blocks`` is the ordered block universe CacheQuery uses for the
        targeted set, so flush-based resets can invalidate every block that
        may currently occupy the set.
        """
        ...  # pragma: no cover - protocol

    def describe(self) -> str:
        """Return the short display name used in Table 4 (e.g. ``"F+R"``)."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class FlushRefillReset:
    """Invalidate every block of the working pool, then refill with ``@``."""

    def mbl_prefix(self, associativity: int, blocks: Sequence[str]) -> str:
        # Flush the entire pool (only pool blocks can occupy the targeted
        # set), then refill the set with the first associativity-many blocks
        # in canonical order.
        flushes = " ".join(f"{block}!" for block in blocks)
        return f"{flushes} @".strip()

    def describe(self) -> str:
        return "F+R"


@dataclass(frozen=True)
class SequenceReset:
    """A fixed access-sequence reset, e.g. ``D C B A @`` (Skylake L2)."""

    expression: str

    def __post_init__(self) -> None:
        if not self.expression.strip():
            raise ResetError("a sequence reset needs a non-empty MBL expression")

    def mbl_prefix(self, associativity: int, blocks: Sequence[str]) -> str:
        return self.expression

    def describe(self) -> str:
        return self.expression


@dataclass(frozen=True)
class NoReset:
    """No reset at all (only valid for stateless experiments and tests)."""

    def mbl_prefix(self, associativity: int, blocks: Sequence[str]) -> str:
        return ""

    def describe(self) -> str:
        return "none"


def reset_for_table4(cpu: str, level: str) -> ResetStrategy:
    """Return the reset sequence the paper reports for a given CPU / level.

    The mapping follows Table 4: Haswell's L1 uses the ``@ @`` access
    sequence, Skylake's and Kaby Lake's L2 use ``D C B A @``, and everything
    else uses Flush+Refill.
    """
    cpu_key = cpu.lower()
    level_key = level.upper()
    if "haswell" in cpu_key and level_key == "L1":
        return SequenceReset("@ @")
    if level_key == "L2" and ("skylake" in cpu_key or "kaby" in cpu_key):
        return SequenceReset("D C B A @")
    return FlushRefillReset()


def reset_names(strategies: Sequence[ResetStrategy]) -> Tuple[str, ...]:
    """Return the display names of several strategies (reporting helper)."""
    return tuple(strategy.describe() for strategy in strategies)

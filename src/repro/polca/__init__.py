"""Polca: an abstract interface to the replacement policy of a cache.

Polca (Section 3 of the paper) turns an interface to a *cache* — which
speaks memory blocks and answers Hit/Miss — into an interface to its
*replacement policy* — which speaks cache lines ``Ln(i)`` and eviction
requests ``Evct`` and answers with evicted line indices.  It does so by
tracking the cache content itself and probing the cache to discover which
line each miss evicted (Algorithm 1).

The package contains the faithful algorithm (:mod:`repro.polca.algorithm`),
the cache-interface adapters it runs against (:mod:`repro.polca.interfaces`),
reset-sequence helpers (:mod:`repro.polca.reset`) and the end-to-end learning
pipeline that chains Polca with the learner (:mod:`repro.polca.pipeline`).
"""

from repro.polca.interfaces import (
    CacheProbeInterface,
    SimulatedCacheInterface,
    default_block_names,
)
from repro.polca.algorithm import PolcaMembershipOracle, PolcaStatistics, polca_check_trace
from repro.polca.reset import FlushRefillReset, NoReset, ResetStrategy, SequenceReset
from repro.polca.pipeline import PolicyLearningPipeline, PolicyLearningReport, learn_policy_from_cache

__all__ = [
    "CacheProbeInterface",
    "SimulatedCacheInterface",
    "default_block_names",
    "PolcaMembershipOracle",
    "PolcaStatistics",
    "polca_check_trace",
    "FlushRefillReset",
    "NoReset",
    "ResetStrategy",
    "SequenceReset",
    "PolicyLearningPipeline",
    "PolicyLearningReport",
    "learn_policy_from_cache",
]

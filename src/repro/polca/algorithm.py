"""Polca — Algorithm 1 of the paper.

Polca answers policy-level queries by driving a cache-level interface:

* an ``Ln(i)`` input is mapped to the block Polca believes is stored in line
  ``i`` (``mapInput``);
* an ``Evct`` input is mapped to some block that is *not* in the cache,
  which forces a miss;
* after every access the cache is probed (``probeCache``) by replaying the
  whole block sequence from the reset state — the cache interface has no
  persistent session, exactly like the hardware tool;
* a miss is translated back to the evicted line (``mapOutput`` /
  ``findEvicted``) by re-probing the prefix extended with each block Polca
  believes is cached and seeing which one now misses.

Two entry points are provided: :meth:`PolcaMembershipOracle.output_query`,
the output-query form used by the learner, and :func:`polca_check_trace`,
the boolean membership form that matches Algorithm 1 literally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.cache.cacheset import HIT, MISS
from repro.core.alphabet import (
    EVICT,
    MISS_OUTPUT,
    Evict,
    Line,
    PolicyInput,
    PolicyOutput,
    policy_input_alphabet,
)
from repro.core.trace import Trace
from repro.errors import LearningError, NonDeterminismError, PolicyError
from repro.learning.query_engine import batch_via_single_queries
from repro.polca.interfaces import CacheProbeInterface

Block = Hashable


@dataclass
class PolcaStatistics:
    """Cost counters for Polca's interaction with the cache interface."""

    policy_queries: int = 0
    policy_symbols: int = 0
    cache_probes: int = 0
    block_accesses: int = 0

    def record_probe(self, length: int) -> None:
        """Record one probe of ``length`` block accesses."""
        self.cache_probes += 1
        self.block_accesses += length


class PolcaMembershipOracle:
    """A policy-level membership/output oracle built on a cache interface."""

    def __init__(self, cache: CacheProbeInterface) -> None:
        self.cache = cache
        self.associativity = cache.associativity
        if self.associativity < 1:
            raise PolicyError("cache interface reports a non-positive associativity")
        self._initial_content: Tuple[Block, ...] = tuple(cache.initial_blocks())
        if len(self._initial_content) != self.associativity:
            raise PolicyError(
                "cache interface must report exactly associativity initial blocks"
            )
        self._universe: Tuple[Block, ...] = tuple(cache.block_universe())
        if len(set(self._universe)) <= self.associativity:
            raise PolicyError(
                "the block universe must contain more blocks than the associativity"
            )
        self.statistics = PolcaStatistics()

    # ------------------------------------------------------------ primitives

    def alphabet(self) -> Tuple[PolicyInput, ...]:
        """Return the policy input alphabet for the cache's associativity."""
        return policy_input_alphabet(self.associativity)

    def _probe_last(self, blocks: Sequence[Block]) -> str:
        """``probeCache``: access ``blocks`` from the reset state, return the last outcome."""
        outputs = self.cache.probe(blocks)
        self.statistics.record_probe(len(blocks))
        if len(outputs) != len(blocks):
            raise LearningError("cache interface returned a truncated output trace")
        return outputs[-1]

    def _map_input(self, symbol: PolicyInput, content: Sequence[Block]) -> Block:
        """``mapInput``: translate a policy input into a memory block."""
        if isinstance(symbol, Line):
            if not 0 <= symbol.index < self.associativity:
                raise PolicyError(f"line index {symbol.index} out of range")
            return content[symbol.index]
        if isinstance(symbol, Evict):
            for block in self._universe:
                if block not in content:
                    return block
            raise PolicyError("block universe exhausted: no block outside the cache")
        raise PolicyError(f"unknown policy input {symbol!r}")

    def _find_evicted(self, accesses: Sequence[Block], content: Sequence[Block]) -> int:
        """``findEvicted``: identify which line the last miss replaced."""
        evicted: Optional[int] = None
        for line in range(self.associativity):
            outcome = self._probe_last(tuple(accesses) + (content[line],))
            if outcome == MISS:
                if evicted is not None:
                    raise NonDeterminismError(
                        tuple(accesses),
                        (f"line {evicted} evicted",),
                        (f"line {line} also evicted",),
                    )
                evicted = line
        if evicted is None:
            raise NonDeterminismError(
                tuple(accesses),
                ("some line evicted",),
                ("no previously cached block misses",),
            )
        return evicted

    # --------------------------------------------------------------- queries

    def output_query(self, word: Sequence[PolicyInput]) -> Tuple[PolicyOutput, ...]:
        """Return the policy outputs for ``word`` (the learner's output query).

        This is Algorithm 1 with the comparison against an expected trace
        removed: instead of checking outputs it *computes* them.
        """
        word = tuple(word)
        self.statistics.policy_queries += 1
        self.statistics.policy_symbols += len(word)

        content: List[Block] = list(self._initial_content)
        accesses: List[Block] = []
        outputs: List[PolicyOutput] = []

        for symbol in word:
            block = self._map_input(symbol, content)
            accesses.append(block)
            outcome = self._probe_last(accesses)
            if isinstance(symbol, Line) and outcome != HIT:
                # Polca believes the block is cached, the cache disagrees: the
                # reset sequence is broken or the cache is not deterministic.
                raise NonDeterminismError(tuple(accesses), (HIT,), (outcome,))
            if outcome == HIT:
                outputs.append(MISS_OUTPUT)
                continue
            evicted = self._find_evicted(accesses, content)
            content[evicted] = block
            outputs.append(evicted)
        return tuple(outputs)

    def output_query_batch(
        self, words: Sequence[Sequence[PolicyInput]]
    ) -> List[Tuple[PolicyOutput, ...]]:
        """Answer a batch of policy words, executing only its maximal members.

        Polca's outputs are prefix-closed (each symbol's output depends only
        on the preceding symbols), so duplicate words and words that are
        proper prefixes of other batch members are served by slicing the
        longer word's answer — none of their probes reach the cache.
        """
        return batch_via_single_queries(self, words)

    def check_trace(self, trace: Trace) -> bool:
        """Decide whether ``trace`` belongs to the policy semantics ``[[P]]``.

        Faithful to Algorithm 1: the expected outputs are compared step by
        step and the first mismatch returns ``False``.
        """
        expected = trace.outputs
        word = trace.inputs
        produced = self.output_query(word[: len(expected)])
        return produced == tuple(expected)


def polca_check_trace(cache: CacheProbeInterface, trace: Trace) -> bool:
    """Convenience wrapper: run Algorithm 1 once against ``cache``."""
    return PolcaMembershipOracle(cache).check_trace(trace)

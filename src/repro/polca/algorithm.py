"""Polca — Algorithm 1 of the paper.

Polca answers policy-level queries by driving a cache-level interface:

* an ``Ln(i)`` input is mapped to the block Polca believes is stored in line
  ``i`` (``mapInput``);
* an ``Evct`` input is mapped to some block that is *not* in the cache,
  which forces a miss;
* after every access the cache is probed (``probeCache``) by replaying the
  whole block sequence from the reset state — the cache interface has no
  persistent session, exactly like the hardware tool;
* a miss is translated back to the evicted line (``mapOutput`` /
  ``findEvicted``) by re-probing the prefix extended with each block Polca
  believes is cached and seeing which one now misses.

Two entry points are provided: :meth:`PolcaMembershipOracle.output_query`,
the output-query form used by the learner, and :func:`polca_check_trace`,
the boolean membership form that matches Algorithm 1 literally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.cache.cacheset import HIT, MISS
from repro.core.alphabet import (
    EVICT,
    MISS_OUTPUT,
    Evict,
    Line,
    PolicyInput,
    PolicyOutput,
    policy_input_alphabet,
)
from repro.core.trace import Trace
from repro.errors import LearningError, NonDeterminismError, PolicyError
from repro.learning.query_engine import (
    ResponseTrie,
    batch_via_single_queries,
    dedupe_and_subsume,
    serve_from_trie,
)
from repro.polca.interfaces import CacheProbeInterface
from repro.simkernel.batch import BatchSimulator

Block = Hashable

#: Kernel names accepted by the ``kernel=`` knob (``None`` ≡ ``"scalar"``).
POLCA_KERNELS = ("auto", "python", "numpy", "scalar")


def scalar_probe_cost(
    word: Sequence[PolicyInput], associativity: int
) -> Tuple[int, int]:
    """Return ``(probes, block_accesses)`` the scalar path would issue for ``word``.

    Derived from :meth:`PolcaMembershipOracle._run_symbols` with sessions
    off and an empty resumed prefix: the symbol at 0-based position ``k``
    always costs one replay probe of ``k + 1`` accesses, and every ``Evct``
    symbol additionally runs ``findEvicted`` — exactly ``associativity``
    probes of ``k + 2`` accesses each (the loop never breaks early, by
    design: a second missing line must raise ``NonDeterminismError``).
    Over a full simulated cache only ``Evct`` symbols miss, so the cost is
    a pure function of the input word.  The kernel fast path uses this to
    keep the probe/access counters execution-strategy-independent.
    """
    length = len(word)
    probes = length
    accesses = length * (length + 1) // 2
    for position, symbol in enumerate(word):
        if isinstance(symbol, Evict):
            probes += associativity
            accesses += associativity * (position + 2)
    return probes, accesses


@dataclass
class PolcaStatistics:
    """Cost counters for Polca's interaction with the cache interface."""

    policy_queries: int = 0
    policy_symbols: int = 0
    cache_probes: int = 0
    block_accesses: int = 0
    #: Measurement sessions opened on the cache interface (``resume=True``).
    sessions_opened: int = 0
    #: Incremental session extensions (each replaces a full replay probe).
    session_extends: int = 0
    #: Policy symbols answered from cached prefixes without re-executing them.
    resumed_symbols: int = 0

    def record_probe(self, length: int) -> None:
        """Record one probe of ``length`` block accesses."""
        self.cache_probes += 1
        self.block_accesses += length

    def record_extend(self, length: int) -> None:
        """Record one session extension of ``length`` block accesses."""
        self.session_extends += 1
        self.block_accesses += length


def supports_sessions(cache) -> bool:
    """True when ``cache`` implements the measurement-session extension."""
    return bool(getattr(cache, "supports_sessions", False)) and all(
        callable(getattr(cache, name, None))
        for name in ("open_session", "extend", "close_session")
    )


class PolcaMembershipOracle:
    """A policy-level membership/output oracle built on a cache interface.

    With ``resume=True`` the oracle advertises the learning stack's resume
    protocol (``supports_resume`` / :meth:`output_query_resume`): the query
    engine then executes only the un-cached *suffix* of each word,
    reconstructing Polca's state after the cached prefix purely from the
    prefix's recorded outputs — no probe ever re-derives what the cache
    already answered.  When the interface additionally implements
    measurement sessions (``supports_sessions`` — both the simulated
    interface and CacheQuery do), the Hit-chain of Algorithm 1 runs
    incrementally through one open session instead of replaying the whole
    access chain per symbol; ``findEvicted``'s diverging probes still
    replay, and the session is re-anchored afterwards.

    ``resume`` changes which measurements execute (strictly fewer), so
    serial and process-parallel runs only report identical probe counters
    when both use the same setting; the pipeline keeps it off for parallel
    runs (a session is inherently a serial, stateful object).

    ``kernel`` selects the execution strategy for *simulated* targets: when
    the interface exposes :meth:`kernel_policy` (it guarantees policy-exact
    probe semantics — the simulated cache starts full), the oracle compiles
    the policy into a flat transition table and answers whole batches
    through a :class:`~repro.simkernel.batch.BatchSimulator` instead of
    probing symbol by symbol.  Answers are bit-identical to the scalar path
    and the probe/access counters are kept identical too, via
    :func:`scalar_probe_cost` accounting.  ``"auto"`` degrades silently
    (no ``kernel_policy``, non-tabulatable policy, ``resume=True``, numpy
    missing → scalar/python as appropriate); forcing ``"python"`` or
    ``"numpy"`` raises :class:`~repro.errors.PolicyError` instead.
    :attr:`kernel_in_use` reports what actually runs.
    """

    def __init__(
        self,
        cache: CacheProbeInterface,
        *,
        resume: bool = False,
        kernel: Optional[str] = None,
    ) -> None:
        self.cache = cache
        self.associativity = cache.associativity
        if self.associativity < 1:
            raise PolicyError("cache interface reports a non-positive associativity")
        self._initial_content: Tuple[Block, ...] = tuple(cache.initial_blocks())
        if len(self._initial_content) != self.associativity:
            raise PolicyError(
                "cache interface must report exactly associativity initial blocks"
            )
        self._universe: Tuple[Block, ...] = tuple(cache.block_universe())
        if len(set(self._universe)) <= self.associativity:
            raise PolicyError(
                "the block universe must contain more blocks than the associativity"
            )
        self.resume = bool(resume)
        self._use_sessions = self.resume and supports_sessions(cache)
        self.statistics = PolcaStatistics()
        self._simulator: Optional[BatchSimulator] = None
        if kernel is not None and kernel != "scalar":
            self._simulator = self._build_simulator(kernel)
        #: Execution strategy actually answering queries:
        #: ``"scalar"``, ``"python"`` or ``"numpy"``.
        self.kernel_in_use = (
            "scalar" if self._simulator is None else self._simulator.kernel
        )

    def _build_simulator(self, kernel: str) -> Optional[BatchSimulator]:
        """Try to bind the tabulated fast path; ``None`` means scalar fallback."""
        if kernel not in POLCA_KERNELS:
            raise PolicyError(
                f"unknown simulator kernel {kernel!r}; choose one of {POLCA_KERNELS}"
            )
        forced = kernel != "auto"
        kernel_policy = getattr(self.cache, "kernel_policy", None)
        accounting = getattr(self.cache, "count_kernel_probes", None)
        if not (callable(kernel_policy) and callable(accounting)):
            if forced:
                raise PolicyError(
                    f"kernel={kernel!r} requires a cache interface with "
                    "policy-exact semantics (kernel_policy/count_kernel_probes); "
                    f"{type(self.cache).__name__} only supports the scalar path"
                )
            return None
        if self.resume:
            # The resume protocol reconstructs Polca state from cached prefix
            # outputs and drives measurement sessions — an inherently scalar,
            # stateful execution; the kernel answers from the initial state.
            if forced:
                raise PolicyError(
                    f"kernel={kernel!r} is incompatible with resume=True; "
                    "use kernel='auto' (degrades to scalar) or disable resume"
                )
            return None
        try:
            return BatchSimulator(kernel_policy(), kernel=kernel)
        except PolicyError:
            if forced:
                raise
            return None

    @property
    def supports_resume(self) -> bool:
        """Advertised to the query engine (see :mod:`repro.learning.query_engine`)."""
        return self.resume

    # ------------------------------------------------------------ primitives

    def alphabet(self) -> Tuple[PolicyInput, ...]:
        """Return the policy input alphabet for the cache's associativity."""
        return policy_input_alphabet(self.associativity)

    def _probe_last(self, blocks: Sequence[Block]) -> str:
        """``probeCache``: access ``blocks`` from the reset state, return the last outcome."""
        outputs = self.cache.probe(blocks)
        self.statistics.record_probe(len(blocks))
        if len(outputs) != len(blocks):
            raise LearningError("cache interface returned a truncated output trace")
        return outputs[-1]

    def _map_input(self, symbol: PolicyInput, content: Sequence[Block]) -> Block:
        """``mapInput``: translate a policy input into a memory block."""
        if isinstance(symbol, Line):
            if not 0 <= symbol.index < self.associativity:
                raise PolicyError(f"line index {symbol.index} out of range")
            return content[symbol.index]
        if isinstance(symbol, Evict):
            for block in self._universe:
                if block not in content:
                    return block
            raise PolicyError("block universe exhausted: no block outside the cache")
        raise PolicyError(f"unknown policy input {symbol!r}")

    def _find_evicted(self, accesses: Sequence[Block], content: Sequence[Block]) -> int:
        """``findEvicted``: identify which line the last miss replaced."""
        evicted: Optional[int] = None
        for line in range(self.associativity):
            outcome = self._probe_last(tuple(accesses) + (content[line],))
            if outcome == MISS:
                if evicted is not None:
                    raise NonDeterminismError(
                        tuple(accesses),
                        (f"line {evicted} evicted",),
                        (f"line {line} also evicted",),
                    )
                evicted = line
        if evicted is None:
            raise NonDeterminismError(
                tuple(accesses),
                ("some line evicted",),
                ("no previously cached block misses",),
            )
        return evicted

    # --------------------------------------------------------------- queries

    def output_query(self, word: Sequence[PolicyInput]) -> Tuple[PolicyOutput, ...]:
        """Return the policy outputs for ``word`` (the learner's output query).

        This is Algorithm 1 with the comparison against an expected trace
        removed: instead of checking outputs it *computes* them.
        """
        word = tuple(word)
        if self._simulator is not None:
            return self._answer_kernel_words([word])[0]
        self.statistics.policy_queries += 1
        self.statistics.policy_symbols += len(word)
        return self._run_symbols(word, list(self._initial_content), [])

    def _answer_kernel_words(
        self, words: Sequence[Tuple[PolicyInput, ...]]
    ) -> List[Tuple[PolicyOutput, ...]]:
        """Answer executed (maximal) words through the kernel, with the same
        counter increments the scalar path would have produced."""
        answers = self._simulator.answer_words(words)
        total_probes = 0
        total_accesses = 0
        for word in words:
            self.statistics.policy_queries += 1
            self.statistics.policy_symbols += len(word)
            probes, accesses = scalar_probe_cost(word, self.associativity)
            self.statistics.cache_probes += probes
            self.statistics.block_accesses += accesses
            total_probes += probes
            total_accesses += accesses
        self.cache.count_kernel_probes(total_probes, total_accesses)
        return answers

    def output_query_resume(
        self,
        prefix: Sequence[PolicyInput],
        suffix: Sequence[PolicyInput],
        prefix_outputs: Optional[Sequence[PolicyOutput]] = None,
    ) -> Tuple[PolicyOutput, ...]:
        """Answer ``prefix + suffix`` executing only ``suffix``'s measurements.

        ``prefix_outputs`` — the caller's cached answer for ``prefix`` —
        lets Polca reconstruct its state (cache content and access chain)
        after the prefix *symbolically*: each output says which line the
        access filled, so no probe touches the system for the resumed part.
        The query engine always provides it; calling without it is an error
        because Polca, unlike a machine-backed oracle, cannot re-derive the
        state without re-measuring the prefix.
        """
        prefix = tuple(prefix)
        suffix = tuple(suffix)
        if prefix_outputs is None:
            raise LearningError(
                "Polca resume needs the cached prefix outputs to reconstruct "
                "its state (pass prefix_outputs)"
            )
        prefix_outputs = tuple(prefix_outputs)
        if len(prefix_outputs) != len(prefix):
            raise LearningError(
                f"resume prefix of length {len(prefix)} needs exactly "
                f"{len(prefix)} outputs, got {len(prefix_outputs)}"
            )
        content: List[Block] = list(self._initial_content)
        accesses: List[Block] = []
        for symbol, output in zip(prefix, prefix_outputs):
            block = self._map_input(symbol, content)
            accesses.append(block)
            if output != MISS_OUTPUT:
                content[output] = block
        self.statistics.policy_queries += 1
        self.statistics.policy_symbols += len(suffix)
        self.statistics.resumed_symbols += len(prefix)
        return self._run_symbols(suffix, content, accesses)

    def _run_symbols(
        self,
        symbols: Sequence[PolicyInput],
        content: List[Block],
        accesses: List[Block],
    ) -> Tuple[PolicyOutput, ...]:
        """The main loop of Algorithm 1, from an arbitrary reconstructed state.

        Without sessions each step's outcome comes from a full replay probe
        of the access chain; with sessions the Hit-chain extends one open
        session incrementally, and only ``findEvicted``'s diverging probes
        (which trash the live state, on hardware and simulator alike) force
        a re-anchoring replay.
        """
        outputs: List[PolicyOutput] = []
        session_live = self._use_sessions and self._session_anchor(accesses)
        try:
            for symbol in symbols:
                block = self._map_input(symbol, content)
                accesses.append(block)
                if session_live:
                    extended = self.cache.extend((block,))
                    if len(extended) != 1:
                        raise LearningError(
                            "cache interface returned a truncated session extension"
                        )
                    self.statistics.record_extend(1)
                    outcome = extended[0]
                else:
                    outcome = self._probe_last(accesses)
                if isinstance(symbol, Line) and outcome != HIT:
                    # Polca believes the block is cached, the cache disagrees:
                    # the reset sequence is broken or the cache is not
                    # deterministic.
                    raise NonDeterminismError(tuple(accesses), (HIT,), (outcome,))
                if outcome == HIT:
                    outputs.append(MISS_OUTPUT)
                    continue
                evicted = self._find_evicted(accesses, content)
                content[evicted] = block
                outputs.append(evicted)
                if session_live:
                    # findEvicted's probes reset the underlying set, so the
                    # open session no longer reflects the access chain.
                    session_live = self._session_anchor(accesses)
        finally:
            if self._use_sessions:
                self.cache.close_session()
        return tuple(outputs)

    def _session_anchor(self, accesses: Sequence[Block]) -> bool:
        """(Re-)open a measurement session and replay the access chain into it."""
        self.cache.open_session()
        self.statistics.sessions_opened += 1
        if accesses:
            outcomes = self.cache.extend(tuple(accesses))
            self.statistics.record_extend(len(accesses))
            if len(outcomes) != len(accesses):
                raise LearningError(
                    "cache interface returned a truncated session replay"
                )
        return True

    def output_query_batch(
        self, words: Sequence[Sequence[PolicyInput]]
    ) -> List[Tuple[PolicyOutput, ...]]:
        """Answer a batch of policy words, executing only its maximal members.

        Polca's outputs are prefix-closed (each symbol's output depends only
        on the preceding symbols), so duplicate words and words that are
        proper prefixes of other batch members are served by slicing the
        longer word's answer — none of their probes reach the cache.

        With a kernel bound, the deduped maximal words go through the
        tabulated simulator as one lockstep chunk; the dedupe/serve shape
        is the same, so executed-word accounting matches the scalar path
        word for word.
        """
        if self._simulator is None:
            return batch_via_single_queries(self, words)
        words = [tuple(word) for word in words]
        maximal = dedupe_and_subsume(words)
        answers = ResponseTrie()
        for word, outputs in zip(maximal, self._answer_kernel_words(maximal)):
            answers.insert(word, outputs)
        return serve_from_trie(words, answers)

    def check_trace(self, trace: Trace) -> bool:
        """Decide whether ``trace`` belongs to the policy semantics ``[[P]]``.

        Faithful to Algorithm 1: the expected outputs are compared step by
        step and the first mismatch returns ``False``.
        """
        expected = trace.outputs
        word = trace.inputs
        produced = self.output_query(word[: len(expected)])
        return produced == tuple(expected)


def polca_check_trace(cache: CacheProbeInterface, trace: Trace) -> bool:
    """Convenience wrapper: run Algorithm 1 once against ``cache``."""
    return PolcaMembershipOracle(cache).check_trace(trace)

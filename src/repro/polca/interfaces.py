"""Cache interfaces that Polca can probe.

Polca only needs three things from a cache (its view of the cache semantics
``[[C]]``):

* its associativity;
* the blocks it contains right after a reset, in a fixed canonical line
  order (``initial_blocks``) — the content ``cc0`` of Algorithm 1;
* a :meth:`~CacheProbeInterface.probe` operation that resets the cache,
  performs a sequence of block accesses and reports each access's Hit/Miss
  outcome.

Two adapters implement the protocol:

* :class:`SimulatedCacheInterface` — the software-simulated caches of
  Section 6, wrapping :class:`~repro.cache.cacheset.SimulatedCacheSet`;
* ``CacheQuerySetInterface`` (in :mod:`repro.cachequery.frontend`) — the
  hardware path of Section 7, wrapping a CacheQuery session for one cache
  set of a simulated CPU.
"""

from __future__ import annotations

import string
from typing import Hashable, List, Optional, Protocol, Sequence, Tuple

from repro.cache.cacheset import SimulatedCacheSet
from repro.errors import CacheError
from repro.policies.base import ReplacementPolicy

Block = Hashable


def default_block_names(count: int) -> Tuple[str, ...]:
    """Return ``count`` distinct block names: ``A, B, ..., Z, A1, B1, ...``.

    The naming matches the MBL convention of using letters for abstract
    blocks, extended with numeric suffixes when more than 26 are needed.
    """
    if count < 0:
        raise CacheError(f"block count must be non-negative, got {count}")
    letters = string.ascii_uppercase
    names: List[str] = []
    suffix = 0
    while len(names) < count:
        for letter in letters:
            if len(names) >= count:
                break
            names.append(letter if suffix == 0 else f"{letter}{suffix}")
        suffix += 1
    return tuple(names)


class CacheProbeInterface(Protocol):
    """Protocol of the cache view Polca needs (the paper's ``[[C]]`` access)."""

    associativity: int

    def initial_blocks(self) -> Tuple[Block, ...]:
        """Blocks stored right after a reset, in canonical line order."""
        ...  # pragma: no cover - protocol

    def block_universe(self) -> Tuple[Block, ...]:
        """All blocks available for queries (must exceed the associativity)."""
        ...  # pragma: no cover - protocol

    def probe(self, blocks: Sequence[Block]) -> Tuple[str, ...]:
        """Reset, access ``blocks`` in order, return a Hit/Miss outcome per access."""
        ...  # pragma: no cover - protocol


class SimulatedCacheInterface:
    """Polca's view of a software-simulated cache set (Section 6).

    The cache starts out holding the first ``associativity`` blocks of the
    block universe (``A``, ``B``, ...), i.e. the state reached by the
    Flush+Refill reset sequence, so hardware and simulator expose the same
    initial content to Polca.
    """

    def __init__(
        self,
        policy: ReplacementPolicy,
        *,
        extra_blocks: int = 2,
        block_names: Optional[Sequence[Block]] = None,
    ) -> None:
        self.policy = policy
        self.associativity = policy.associativity
        universe_size = self.associativity + max(1, extra_blocks)
        if block_names is None:
            universe = default_block_names(universe_size)
        else:
            universe = tuple(block_names)
            if len(universe) < self.associativity + 1:
                raise CacheError(
                    "block universe must contain at least associativity + 1 blocks"
                )
        self._universe = universe
        self._initial = universe[: self.associativity]
        self._cache = SimulatedCacheSet(policy, initial_content=self._initial)

    supports_sessions = True

    def initial_blocks(self) -> Tuple[Block, ...]:
        return self._initial

    def block_universe(self) -> Tuple[Block, ...]:
        return self._universe

    def probe(self, blocks: Sequence[Block]) -> Tuple[str, ...]:
        return self._cache.probe(blocks)

    def store_namespace(self) -> Tuple[object, ...]:
        """Namespace key identifying this target inside a shared prefix store."""
        return ("simulated", str(self.policy.name), self.associativity)

    # -------------------------------------------------------- kernel fast path

    def kernel_policy(self) -> ReplacementPolicy:
        """Return the policy whose Mealy semantics this interface realises.

        Exposing this opts the interface into the tabulated execution
        kernels (:mod:`repro.simkernel`): because the simulated cache starts
        *full* (Flush+Refill content, never an invalid line), every probe
        outcome is determined by the policy machine alone, so Polca's
        answers over this interface coincide exactly with the policy's
        Mealy outputs.  Hardware interfaces have no such guarantee and do
        not implement this hook.
        """
        return self.policy

    def count_kernel_probes(self, probes: int, accesses: int) -> None:
        """Fold kernel-elided probe costs into the underlying cache counters."""
        self._cache.count_kernel_probes(probes, accesses)

    # ----------------------------------------------------- measurement session

    def open_session(self) -> None:
        """Reset the cache and keep it live for incremental :meth:`extend` calls."""
        self._cache.begin_session()

    def extend(self, blocks: Sequence[Block]) -> Tuple[str, ...]:
        """Access ``blocks`` from the session's current state; return the outcomes."""
        return self._cache.session_access(blocks)

    def close_session(self) -> None:
        """End the measurement session (stateless for the simulator)."""

    # ------------------------------------------------------------- statistics

    @property
    def probe_count(self) -> int:
        """Number of probe() calls issued so far."""
        return self._cache.probe_count

    @property
    def access_count(self) -> int:
        """Total number of individual block accesses issued so far."""
        return self._cache.access_count

    @property
    def sessions_opened(self) -> int:
        """Number of measurement sessions opened so far."""
        return self._cache.sessions_opened

    def reset_statistics(self) -> None:
        """Zero the probe/access counters."""
        self._cache.reset_statistics()

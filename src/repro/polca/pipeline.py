"""The end-to-end policy-learning pipeline (Figure 1).

``learn_policy_from_cache`` chains the three boxes of the paper's Figure 1:
a cache interface (software-simulated or CacheQuery-backed), Polca as the
membership oracle, and the Mealy learner with Wp-method conformance testing
as the equivalence oracle.  The result bundles the learned machine with the
query statistics and, when possible, the *name* of a known policy the
machine is equivalent to (how the paper identifies "PLRU" or labels the
unknown machines "New1"/"New2").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.mealy import MealyMachine
from repro.errors import LearningError
from repro.learning.equivalence import ConformanceEquivalenceOracle
from repro.learning.learner import LEARNER_NAMES, LearningResult, make_learner
from repro.learning.oracles import CachedMembershipOracle
from repro.learning.parallel import OracleFactory, WorkerPool, oracle_factory_for_cache
from repro.polca.algorithm import PolcaMembershipOracle, PolcaStatistics
from repro.polca.interfaces import CacheProbeInterface, SimulatedCacheInterface
from repro.policies.base import ReplacementPolicy
from repro.policies.registry import available_policies, make_policy


@dataclass
class PolicyLearningReport:
    """Everything the experiment harness wants to know about one learning run."""

    machine: MealyMachine
    learning_result: LearningResult
    polca_statistics: PolcaStatistics
    associativity: int
    identified_policy: Optional[str] = None
    wall_clock_seconds: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def num_states(self) -> int:
        """Number of states of the learned (minimal) machine."""
        return self.machine.size


def identify_policy(
    machine: MealyMachine,
    associativity: int,
    candidates: Optional[Sequence[str]] = None,
) -> Optional[str]:
    """Return the name of a registered policy trace-equivalent to ``machine``.

    This is how Table 4 labels learned automata: machines equivalent to a
    manually implemented reference (e.g. tree PLRU) get that name; machines
    equivalent to none of the references are "previously undocumented".
    """
    names = list(candidates) if candidates is not None else available_policies()
    for name in names:
        try:
            policy = make_policy(name, associativity)
            reference = policy.to_mealy(max_states=200_000).minimize()
        except Exception:  # policy not defined for this associativity (e.g. PLRU assoc 6)
            continue
        if reference.size != machine.size:
            continue
        if reference.equivalent(machine):
            return name
    return None


class PolicyLearningPipeline:
    """Configurable Polca + learner pipeline.

    ``workers=N`` (N > 1) runs **both** query sides of learning on one
    shared process pool: the observation-table fill answers each
    stabilisation round's batch across the workers, and the conformance
    tester streams lazily generated Wp-suite chunks into the same pool with
    a bounded in-flight window.  Each worker rebuilds the system under test
    from a picklable ``oracle_factory`` (derived automatically for
    simulated caches and any picklable cache interface — see
    :func:`repro.learning.parallel.oracle_factory_for_cache`); all answers
    merge back into the shared query engine in deterministic order, so the
    learned machine is bit-identical to a serial run.
    """

    def __init__(
        self,
        cache: CacheProbeInterface,
        *,
        depth: int = 1,
        method: str = "wp",
        counterexample_strategy: str = "rivest-schapire",
        identify: bool = True,
        identification_candidates: Optional[Sequence[str]] = None,
        max_tests: Optional[int] = None,
        batch_size: int = 64,
        workers: Optional[int] = None,
        oracle_factory: Optional[OracleFactory] = None,
        resume: bool = False,
        store=None,
        kernel: Optional[str] = "auto",
        learner: str = "lstar",
    ) -> None:
        if learner.lower() not in LEARNER_NAMES:
            raise LearningError(
                f"unknown learner {learner!r}; expected one of {LEARNER_NAMES}"
            )
        if resume and workers is not None and workers > 1:
            raise LearningError(
                "resume sessions are stateful and inherently serial; they also "
                "change which measurements execute, so probe columns would no "
                "longer be worker-count-invariant — use resume=True or "
                "workers>1, not both"
            )
        self.cache = cache
        self.depth = depth
        self.method = method
        self.counterexample_strategy = counterexample_strategy
        self.identify = identify
        self.identification_candidates = identification_candidates
        self.max_tests = max_tests
        self.batch_size = batch_size
        self.workers = workers
        self.oracle_factory = oracle_factory
        self.resume = resume
        #: Which student runs the loop: ``"lstar"`` (observation table, the
        #: paper's configuration) or ``"kv"`` (classification tree — far
        #: fewer membership queries per discovered state on large policies).
        #: Both learn the same minimal machine bit-identically.
        self.learner = learner.lower()
        #: Execution strategy for Polca's probes over simulated targets:
        #: ``"auto"`` (tabulated kernel when the policy tabulates, numpy
        #: when importable), ``"python"``, ``"numpy"``, or ``"scalar"`` /
        #: ``None`` for the legacy per-symbol stepper.  Answers and
        #: statistics are identical across all settings.
        self.kernel = kernel
        #: Optional shared :class:`~repro.store.PrefixStore` the query
        #: engine's trie lives in — pass the same instance backing the
        #: frontend's ``QueryCache`` (and/or a path-backed store) so one
        #: file persists the whole measurement state of a run.
        self.store = store

    def _engine_namespace(self) -> Sequence[object]:
        """Namespace key of the learning trie inside a shared store."""
        derive = getattr(self.cache, "store_namespace", None)
        target = tuple(derive()) if callable(derive) else ()
        return ("learning",) + target

    def run(self) -> PolicyLearningReport:
        """Learn the policy of the configured cache interface.

        One trie-backed query engine is shared between the observation
        table and the conformance tester, so equivalence-testing words whose
        prefixes were already learned (or vice versa) never hit the cache
        interface twice.
        """
        start = time.perf_counter()
        polca = PolcaMembershipOracle(
            self.cache, resume=self.resume, kernel=self.kernel
        )
        engine = CachedMembershipOracle(
            polca, store=self.store, namespace=self._engine_namespace()
        )
        parallel = self.workers is not None and self.workers > 1
        pool = None
        if parallel:
            factory = self.oracle_factory
            if factory is None:
                factory = oracle_factory_for_cache(self.cache, kernel=self.kernel)
            # One pool serves both the observation-table fill and the
            # conformance tester; its per-worker accounting covers the run.
            pool = WorkerPool(factory, self.workers)
            # Worker-side Polca probe/hit deltas fold into the parent's
            # statistics on collect, so Table 2/4 probe columns are
            # worker-count-invariant instead of reading 0 under --workers.
            pool.merge_targets.append(polca.statistics)
        equivalence = ConformanceEquivalenceOracle(
            engine,
            depth=self.depth,
            method=self.method,
            max_tests=self.max_tests,
            batch_size=self.batch_size,
            pool=pool,
        )
        learner = make_learner(
            self.learner,
            polca.alphabet(),
            engine,
            equivalence,
            counterexample_strategy=self.counterexample_strategy,
            pool=pool,
            fill_chunk_size=self.batch_size,
        )
        try:
            result = learner.learn()
        finally:
            equivalence.close()
            if pool is not None:
                pool.close()
        machine = result.machine.minimize()
        identified = None
        if self.identify:
            identified = identify_policy(
                machine, self.cache.associativity, self.identification_candidates
            )
        elapsed = time.perf_counter() - start
        extra = {
            "kernel": polca.kernel_in_use,
            "learner": result.learner,
            "rounds": result.rounds,
            "per_round_queries": list(result.per_round_queries),
            "learner_queries": result.learner_queries,
            "learner_symbols": result.learner_symbols,
            "cache_hits": result.statistics.cache_hits,
            "batches": result.statistics.batches,
            "tests_skipped": result.statistics.tests_skipped,
            "cached_prefixes": engine.size,
        }
        tree = getattr(learner, "tree", None)
        if tree is not None:
            extra["kv_leaves_from_sifting"] = tree.leaves_from_sifting
            extra["kv_leaves_from_splits"] = tree.leaves_from_splits
            extra["kv_internal_refinements"] = tree.internal_refinements
            extra["discriminator_lengths"] = tree.discriminator_lengths()
            extra["max_discriminator_length"] = tree.max_discriminator_length
        if getattr(tree, "finalization_shrinkage", None) is not None:
            # TTT-specific refinement counters (see repro.learning.ttt).
            extra["ttt_finalized_discriminators"] = tree.discriminators_finalized
            extra["ttt_temporary_discriminators"] = tree.temporary_discriminators
            extra["ttt_words_resifted_per_split"] = list(tree.words_resifted_per_split)
            extra["ttt_finalization_shrinkage"] = list(tree.finalization_shrinkage)
            extra["ttt_finalization_probe_words"] = tree.finalization_probe_words
        if self.resume:
            extra["resume"] = True
            extra["resumed_symbols"] = result.statistics.resumed_symbols
            extra["polca_resumed_symbols"] = polca.statistics.resumed_symbols
            extra["sessions_opened"] = polca.statistics.sessions_opened
            extra["session_extends"] = polca.statistics.session_extends
        if self.store is not None:
            extra["store"] = self.store.statistics()
        if parallel:
            extra["workers"] = self.workers
            extra["parallel_chunks"] = result.statistics.parallel_chunks
            extra["parallel_words"] = result.statistics.parallel_words
            extra["peak_inflight_words"] = equivalence.peak_inflight_words
            extra["worker_query_counts"] = dict(pool.worker_query_counts)
            extra["worker_symbol_counts"] = dict(pool.worker_symbol_counts)
            extra["worker_statistics"] = {
                pid: dict(counters) for pid, counters in pool.worker_statistics.items()
            }
        return PolicyLearningReport(
            machine=machine,
            learning_result=result,
            polca_statistics=polca.statistics,
            associativity=self.cache.associativity,
            identified_policy=identified,
            wall_clock_seconds=elapsed,
            extra=extra,
        )


def learn_policy_from_cache(cache: CacheProbeInterface, **kwargs) -> PolicyLearningReport:
    """Convenience wrapper around :class:`PolicyLearningPipeline`."""
    return PolicyLearningPipeline(cache, **kwargs).run()


def learn_simulated_policy(
    policy: ReplacementPolicy,
    *,
    depth: int = 1,
    **kwargs,
) -> PolicyLearningReport:
    """Learn a policy from its software-simulated cache (the Table 2 workflow)."""
    if not isinstance(policy, ReplacementPolicy):
        raise LearningError("learn_simulated_policy expects a ReplacementPolicy instance")
    interface = SimulatedCacheInterface(policy)
    return learn_policy_from_cache(interface, depth=depth, **kwargs)

"""First-In First-Out replacement.

FIFO ignores hits entirely and evicts lines in round-robin order.  Its
control state is the index of the line that will be evicted next, so the
minimal Mealy machine has exactly ``associativity`` states (Table 2).
"""

from __future__ import annotations

from typing import Tuple

from repro.policies.base import PolicyState, ReplacementPolicy


class FIFOPolicy(ReplacementPolicy):
    """First-In First-Out: evict lines in insertion order, ignore hits."""

    name = "FIFO"

    def initial_state(self) -> PolicyState:
        return 0

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        return state

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        victim = state
        return (state + 1) % self.associativity, victim

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        # Filling an invalid way moves the insertion pointer past it, so a
        # freshly refilled set evicts in the order the blocks were inserted.
        return (line + 1) % self.associativity

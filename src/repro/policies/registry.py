"""A small registry mapping policy names to factories.

The experiment harness, the CacheQuery configuration files and the command
line all refer to policies by name (``"LRU"``, ``"SRRIP-HP"``, ...); this
module centralises that mapping so new policies only have to be registered
once.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import PolicyError
from repro.policies.base import ReplacementPolicy
from repro.policies.clock import CLOCKPolicy
from repro.policies.fifo import FIFOPolicy
from repro.policies.lru import BIPPolicy, LIPPolicy, LRUPolicy
from repro.policies.mru import MRUPolicy, NRUPolicy
from repro.policies.new_intel import New1Policy, New2Policy
from repro.policies.plru import PLRUPolicy
from repro.policies.srrip import BRRIPPolicy, SRRIPPolicy

PolicyFactory = Callable[[int], ReplacementPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register ``factory`` under ``name`` (case-insensitive).

    Registering an existing name overwrites the previous factory; this is
    intentional so tests can substitute instrumented policies.
    """
    _REGISTRY[name.upper()] = factory


def make_policy(name: str, associativity: int) -> ReplacementPolicy:
    """Instantiate the policy registered under ``name`` for ``associativity``."""
    try:
        factory = _REGISTRY[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PolicyError(f"unknown policy {name!r}; known policies: {known}") from None
    return factory(associativity)


def available_policies() -> List[str]:
    """Return the sorted list of registered policy names."""
    return sorted(_REGISTRY)


# -- default registrations ----------------------------------------------------

register_policy("FIFO", FIFOPolicy)
register_policy("LRU", LRUPolicy)
register_policy("LIP", LIPPolicy)
register_policy("BIP", BIPPolicy)
register_policy("PLRU", PLRUPolicy)
register_policy("MRU", MRUPolicy)
register_policy("NRU", NRUPolicy)
register_policy("CLOCK", CLOCKPolicy)
register_policy("SRRIP-HP", lambda n: SRRIPPolicy(n, variant="HP"))
register_policy("SRRIP-FP", lambda n: SRRIPPolicy(n, variant="FP"))
register_policy("BRRIP-HP", lambda n: BRRIPPolicy(n, variant="HP"))
register_policy("BRRIP-FP", lambda n: BRRIPPolicy(n, variant="FP"))
register_policy("NEW1", New1Policy)
register_policy("NEW2", New2Policy)

#: Policies evaluated in the paper's Table 2 (software-simulated case study).
TABLE2_POLICIES = ("FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "SRRIP-FP")

#: Policies for which the paper synthesizes explanations (Table 5).
TABLE5_POLICIES = (
    "FIFO",
    "LRU",
    "PLRU",
    "LIP",
    "MRU",
    "SRRIP-HP",
    "SRRIP-FP",
    "NEW1",
    "NEW2",
)

"""Static Re-Reference Interval Prediction (SRRIP) and a deterministic BRRIP.

SRRIP (Jaleel et al., ISCA 2010) attaches an M-bit *re-reference prediction
value* (RRPV, an "age") to every line.  With M bits the ages range over
``0 .. 2^M - 1``; the paper uses M = 2, i.e. 4 ages.

* **Eviction**: scan the lines left-to-right for one with the maximal age
  (``2^M - 1``); if there is none, increment every age by one and repeat.
  The increment loop is the *normalization before a miss* of Section 8.
* **Insertion**: the filled line gets age ``2^M - 2`` (a "long" re-reference
  interval).
* **Promotion on a hit**: the *hit priority* variant (SRRIP-HP) resets the
  accessed line's age to 0; the *frequency priority* variant (SRRIP-FP)
  decrements it by one (saturating at 0).

The control state is the tuple of per-line ages.  SRRIP-FP reaches all
``(2^M)^n`` age vectors (256 for associativity 4 with 4 ages), SRRIP-HP a
subset of them (178 for associativity 4), matching Table 2.

**BRRIP** (Bimodal RRIP) is the RRIP analogue of BIP: most insertions use the
maximal age ``2^M - 1`` and only every ``throttle``-th insertion uses
``2^M - 2``.  The original uses randomness; we keep a deterministic modular
counter so the policy stays a finite deterministic Mealy machine.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import PolicyError
from repro.policies.base import PolicyState, ReplacementPolicy


class SRRIPPolicy(ReplacementPolicy):
    """SRRIP with ``2^bits`` ages, in the HP (hit-priority) or FP (frequency-priority) variant."""

    def __init__(self, associativity: int, variant: str = "HP", bits: int = 2) -> None:
        super().__init__(associativity)
        variant = variant.upper()
        if variant not in ("HP", "FP"):
            raise PolicyError(f"SRRIP variant must be 'HP' or 'FP', got {variant!r}")
        if bits < 1:
            raise PolicyError(f"SRRIP needs at least 1 RRPV bit, got {bits}")
        self.variant = variant
        self.bits = bits
        self.max_age = (1 << bits) - 1
        self.insert_age = self.max_age - 1
        self.name = f"SRRIP-{variant}"

    def initial_state(self) -> PolicyState:
        # All lines start "distant": the state right after a cache reset.
        return (self.max_age,) * self.associativity

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        ages = list(state)
        if self.variant == "HP":
            ages[line] = 0
        else:
            ages[line] = max(0, ages[line] - 1)
        return tuple(ages)

    def _normalize_for_eviction(self, ages: Tuple[int, ...]) -> Tuple[int, ...]:
        """Increment every age until some line reaches the maximal age."""
        while self.max_age not in ages:
            ages = tuple(age + 1 for age in ages)
        return ages

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        ages = self._normalize_for_eviction(tuple(state))
        victim = ages.index(self.max_age)
        new_ages = list(ages)
        new_ages[victim] = self.insert_age
        return tuple(new_ages), victim

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        ages = list(state)
        ages[line] = self.insert_age
        return tuple(ages)


class BRRIPPolicy(SRRIPPolicy):
    """Bimodal RRIP with a deterministic insertion throttle (control state carries a counter)."""

    def __init__(self, associativity: int, variant: str = "HP", bits: int = 2, throttle: int = 4) -> None:
        super().__init__(associativity, variant, bits)
        if throttle < 1:
            raise PolicyError(f"BRRIP throttle must be >= 1, got {throttle}")
        self.throttle = throttle
        self.name = f"BRRIP-{variant}"

    def initial_state(self) -> PolicyState:
        return ((self.max_age,) * self.associativity, 0)

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        ages, counter = state
        return (super().on_hit(ages, line), counter)

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        ages, counter = state
        ages = self._normalize_for_eviction(tuple(ages))
        victim = ages.index(self.max_age)
        new_ages = list(ages)
        if counter == self.throttle - 1:
            new_ages[victim] = self.insert_age
        else:
            new_ages[victim] = self.max_age
        next_counter = (counter + 1) % self.throttle
        return (tuple(new_ages), next_counter), victim

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        ages, counter = state
        new_ages = list(ages)
        if counter == self.throttle - 1:
            new_ages[line] = self.insert_age
        else:
            new_ages[line] = self.max_age
        return (tuple(new_ages), (counter + 1) % self.throttle)

"""Bit-based policies: MRU (bit-PLRU) and NRU.

**MRU** here follows the usage of the paper (citing the Malamy et al. patent,
also known as *bit-PLRU*): each line has a single "recently used" bit.  An
access sets the bit; when that would make every bit 1, all *other* bits are
cleared so the accessed line remains the only recently-used one.  The victim
is the left-most line whose bit is 0.  The reachable control states are all
bit vectors with at least one 0 and at least one 1, i.e. ``2^n - 2`` states —
14, 62, 254, 1022 and 4094 for associativities 4..12, matching Table 2.

**NRU** (Not Recently Used, as used e.g. in older Intel L2 caches and as the
1-bit special case of RRIP) differs only in the normalization: when all bits
become 1 they are *all* cleared, including the just-accessed line's bit.
"""

from __future__ import annotations

from typing import Tuple

from repro.policies.base import PolicyState, ReplacementPolicy


class MRUPolicy(ReplacementPolicy):
    """Bit-PLRU / MRU: one used-bit per line, keep the accessed line marked."""

    name = "MRU"

    def initial_state(self) -> PolicyState:
        # Line 0 starts as the only recently-used line.  Any state with at
        # least one 0 and one 1 bit would do; this choice makes the initial
        # state part of the recurrent state space so the minimal machine has
        # exactly 2^n - 2 states.
        return (1,) + (0,) * (self.associativity - 1)

    def _mark(self, bits: Tuple[int, ...], line: int) -> Tuple[int, ...]:
        marked = tuple(1 if i == line else bit for i, bit in enumerate(bits))
        if all(marked):
            # Normalize: clear every bit except the one just accessed.
            return tuple(1 if i == line else 0 for i in range(len(bits)))
        return marked

    def _victim(self, bits: Tuple[int, ...]) -> int:
        # For associativity 1 the single line is always the victim.
        return bits.index(0) if 0 in bits else 0

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        return self._mark(state, line)

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        victim = self._victim(state)
        return self._mark(state, victim), victim


class NRUPolicy(MRUPolicy):
    """Not Recently Used: like MRU but normalization clears *all* bits."""

    name = "NRU"

    def initial_state(self) -> PolicyState:
        return (0,) * self.associativity

    def _mark(self, bits: Tuple[int, ...], line: int) -> Tuple[int, ...]:
        marked = tuple(1 if i == line else bit for i, bit in enumerate(bits))
        if all(marked):
            return (0,) * len(bits)
        return marked

"""CLOCK / second-chance replacement.

CLOCK approximates LRU with a single reference bit per line plus a rotating
hand.  On a hit the line's bit is set.  On a miss the hand sweeps forward:
lines with the bit set get a "second chance" (the bit is cleared and the hand
advances); the first line found with a cleared bit is evicted, the new block
is installed with its bit cleared, and the hand moves past it.

The control state is ``(bits, hand)``.  CLOCK is not part of the paper's
evaluation, but it is a classic OS/page-replacement policy that exercises the
learning and synthesis pipelines with a structurally different state space
(per-line bits *plus* a global pointer), so it is included in the extended
test-suite and in the scalability benchmarks.
"""

from __future__ import annotations

from typing import Tuple

from repro.policies.base import PolicyState, ReplacementPolicy


class CLOCKPolicy(ReplacementPolicy):
    """Second-chance replacement with a rotating hand and one reference bit per line."""

    name = "CLOCK"

    def initial_state(self) -> PolicyState:
        return ((0,) * self.associativity, 0)

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        bits, hand = state
        new_bits = tuple(1 if i == line else bit for i, bit in enumerate(bits))
        return (new_bits, hand)

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        bits, hand = state
        bits = list(bits)
        n = self.associativity
        # The sweep terminates within 2n steps because each set bit is cleared
        # at most once before a clear bit is found.
        for _ in range(2 * n + 1):
            if bits[hand] == 0:
                victim = hand
                bits[victim] = 0  # The new block starts without a second chance.
                hand = (hand + 1) % n
                return ((tuple(bits), hand)), victim
            bits[hand] = 0
            hand = (hand + 1) % n
        raise AssertionError("CLOCK sweep did not terminate")  # pragma: no cover

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        bits, hand = state
        new_bits = tuple(0 if i == line else bit for i, bit in enumerate(bits))
        return (new_bits, (line + 1) % self.associativity)

"""Recency-stack policies: LRU, LIP and BIP.

All three share the same control state, a *recency stack* encoded as a tuple
``ranks`` where ``ranks[i]`` is the recency rank of line ``i`` (0 = most
recently used, ``n-1`` = least recently used).  They differ only in the
*insertion* position of a freshly missed block:

* **LRU** inserts at the MRU position (rank 0);
* **LIP** (LRU Insertion Policy, Qureshi et al. 2007) inserts at the LRU
  position, which protects the cache from thrashing workloads;
* **BIP** (Bimodal Insertion Policy) behaves like LIP except that every
  ``throttle``-th miss inserts at the MRU position.  The original proposal
  flips a coin; to stay within the paper's deterministic-policy model we use
  a modular miss counter, which is itself part of the control state.

The minimal machines of LRU and LIP have ``n!`` states (24 for associativity
4, 720 for 6), matching Table 2.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import PolicyError
from repro.policies.base import PolicyState, ReplacementPolicy


def _promote(ranks: Tuple[int, ...], line: int) -> Tuple[int, ...]:
    """Move ``line`` to rank 0, shifting more-recent lines down by one."""
    pivot = ranks[line]
    return tuple(
        0 if i == line else (rank + 1 if rank < pivot else rank)
        for i, rank in enumerate(ranks)
    )


def _demote(ranks: Tuple[int, ...], line: int) -> Tuple[int, ...]:
    """Move ``line`` to the LRU rank, shifting less-recent lines up by one."""
    pivot = ranks[line]
    last = len(ranks) - 1
    return tuple(
        last if i == line else (rank - 1 if rank > pivot else rank)
        for i, rank in enumerate(ranks)
    )


class LRUPolicy(ReplacementPolicy):
    """Least Recently Used: evict the line whose last use is the oldest."""

    name = "LRU"

    def initial_state(self) -> PolicyState:
        # Line 0 is most recent, line n-1 least recent.
        return tuple(range(self.associativity))

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        return _promote(state, line)

    def _victim(self, state: Tuple[int, ...]) -> int:
        return state.index(len(state) - 1)

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        victim = self._victim(state)
        return _promote(state, victim), victim


class LIPPolicy(LRUPolicy):
    """LRU Insertion Policy: like LRU, but new blocks enter at the LRU position."""

    name = "LIP"

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        victim = self._victim(state)
        # The incoming block keeps the LRU rank, so the recency stack does not
        # change at all on a miss: the victim already holds rank n-1.
        return state, victim

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        # LIP inserts at the LRU position even when filling an invalid way.
        return _demote(state, line)


class BIPPolicy(LRUPolicy):
    """Bimodal Insertion Policy with a deterministic throttle counter.

    The control state is ``(ranks, counter)``: every ``throttle``-th miss the
    new block is promoted to MRU (LRU behaviour), otherwise it stays at the
    LRU position (LIP behaviour).
    """

    name = "BIP"

    def __init__(self, associativity: int, throttle: int = 4) -> None:
        super().__init__(associativity)
        if throttle < 1:
            raise PolicyError(f"BIP throttle must be >= 1, got {throttle}")
        self.throttle = throttle

    def initial_state(self) -> PolicyState:
        return (tuple(range(self.associativity)), 0)

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        ranks, counter = state
        return (_promote(ranks, line), counter)

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        ranks, counter = state
        victim = self._victim(ranks)
        if counter == self.throttle - 1:
            ranks = _promote(ranks, victim)
        next_counter = (counter + 1) % self.throttle
        return (ranks, next_counter), victim

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        ranks, counter = state
        if counter == self.throttle - 1:
            ranks = _promote(ranks, line)
        else:
            ranks = _demote(ranks, line)
        return (ranks, (counter + 1) % self.throttle)

"""The two previously undocumented Intel policies discovered by the paper.

Section 8.2 and Appendix C give high-level, synthesized descriptions of the
policies that CacheQuery + Polca learned from recent Intel CPUs:

* **New1** — the L2 policy of Skylake (i5-6500) and Kaby Lake (i7-8550U).
* **New2** — the policy of the L3 *leader* sets of the same CPUs (the
  thrash-vulnerable fixed sets used by the adaptive set-dueling mechanism).

Both are SRRIP-HP-like age policies; they differ from SRRIP-HP in *when* the
ages are normalized (after every hit and miss, instead of only before a miss)
and in the promotion rule of New2.  These implementations follow Appendix C
verbatim and are used as the ground-truth policies inside the simulated
Skylake/Kaby Lake CPUs, so the full hardware-learning pipeline (Table 4) must
re-discover them.
"""

from __future__ import annotations

from typing import Tuple

from repro.policies.base import PolicyState, ReplacementPolicy

_MAX_AGE = 3


def _has_max_age(ages: Tuple[int, ...]) -> bool:
    return _MAX_AGE in ages


class New1Policy(ReplacementPolicy):
    """Skylake / Kaby Lake L2 policy (paper's ``New1``).

    Rules (Appendix C, Figure 5a):

    * initial control state ``{3, 3, 3, 0}`` (generalised to ``3 ... 3 0``);
    * *promotion*: the accessed line's age becomes 0;
    * *eviction*: the left-most line with age 3;
    * *insertion*: the evicted line's age becomes 1;
    * *normalization* (after a hit or a miss): while no line has age 3,
      increment the age of every line **except** the just accessed/evicted one.
    """

    name = "New1"

    def initial_state(self) -> PolicyState:
        return (_MAX_AGE,) * (self.associativity - 1) + (0,)

    def _normalize(self, ages: Tuple[int, ...], skip: int) -> Tuple[int, ...]:
        # The loop terminates because every iteration increments at least one
        # line (for associativity >= 2) and ages are bounded by 3.
        if self.associativity == 1:
            return ages
        while not _has_max_age(ages):
            ages = tuple(
                age if i == skip else age + 1 for i, age in enumerate(ages)
            )
        return ages

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        ages = list(state)
        ages[line] = 0
        return self._normalize(tuple(ages), skip=line)

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        ages = tuple(state)
        victim = ages.index(_MAX_AGE) if _has_max_age(ages) else 0
        new_ages = list(ages)
        new_ages[victim] = 1
        return self._normalize(tuple(new_ages), skip=victim), victim

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        # Filling an invalid way applies the insertion rule (age 1) followed
        # by the usual normalization, just like a miss-driven insertion.
        ages = list(state)
        ages[line] = 1
        return self._normalize(tuple(ages), skip=line)


class New2Policy(ReplacementPolicy):
    """Skylake / Kaby Lake L3 leader-set policy (paper's ``New2``).

    Rules (Appendix C, Figure 5b):

    * initial control state ``{3, 3, 3, 3}``;
    * *promotion*: if the accessed line has age 1 it becomes 0, otherwise 1;
    * *eviction*: the left-most line with age 3;
    * *insertion*: the evicted line's age becomes 1;
    * *normalization* (after a hit or a miss): while no line has age 3,
      increment the age of **every** line.
    """

    name = "New2"

    def initial_state(self) -> PolicyState:
        return (_MAX_AGE,) * self.associativity

    def _normalize(self, ages: Tuple[int, ...]) -> Tuple[int, ...]:
        while not _has_max_age(ages):
            ages = tuple(age + 1 for age in ages)
        return ages

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        ages = list(state)
        if ages[line] == 1:
            ages[line] = 0
        else:
            ages[line] = 1
        return self._normalize(tuple(ages))

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        ages = tuple(state)
        victim = ages.index(_MAX_AGE) if _has_max_age(ages) else 0
        new_ages = list(ages)
        new_ages[victim] = 1
        return self._normalize(tuple(new_ages)), victim

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        ages = list(state)
        ages[line] = 1
        return self._normalize(tuple(ages))

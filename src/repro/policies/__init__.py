"""Deterministic cache replacement policies.

Every policy is a :class:`~repro.policies.base.ReplacementPolicy`: a small
object with an initial control state and two pure transition functions
(``on_hit`` and ``on_miss``).  Policies can be stepped directly (that is how
the software-simulated caches of Section 6 use them), or enumerated into an
explicit Mealy machine (``policy.to_mealy()``) to obtain ground-truth models
and state counts.

The package includes every policy evaluated in the paper (FIFO, LRU, PLRU,
MRU, LIP, SRRIP-HP, SRRIP-FP) plus the two previously undocumented Intel
policies the paper discovered (New1, New2) and a few extra classics (BIP,
NRU, CLOCK, BRRIP) used by the adaptive-cache substrate and the extended
test-suite.
"""

from repro.policies.base import PolicyStepper, ReplacementPolicy
from repro.policies.fifo import FIFOPolicy
from repro.policies.lru import BIPPolicy, LIPPolicy, LRUPolicy
from repro.policies.plru import PLRUPolicy
from repro.policies.mru import MRUPolicy, NRUPolicy
from repro.policies.srrip import BRRIPPolicy, SRRIPPolicy
from repro.policies.clock import CLOCKPolicy
from repro.policies.new_intel import New1Policy, New2Policy
from repro.policies.registry import (
    available_policies,
    make_policy,
    register_policy,
)

__all__ = [
    "PolicyStepper",
    "ReplacementPolicy",
    "FIFOPolicy",
    "LRUPolicy",
    "LIPPolicy",
    "BIPPolicy",
    "PLRUPolicy",
    "MRUPolicy",
    "NRUPolicy",
    "SRRIPPolicy",
    "BRRIPPolicy",
    "CLOCKPolicy",
    "New1Policy",
    "New2Policy",
    "available_policies",
    "make_policy",
    "register_policy",
]

"""Tree-based Pseudo-LRU (PLRU).

PLRU arranges the ``n`` lines of a set (``n`` must be a power of two) as the
leaves of a complete binary tree with ``n - 1`` internal nodes.  Each internal
node holds one bit pointing towards the subtree that should be victimised
next.  On an access (hit or fill), every node on the path from the root to
the accessed leaf is flipped to point *away* from that leaf; on a miss the
victim is found by following the pointers from the root.

The control state is the tuple of the ``n - 1`` node bits, so the machine has
``2^(n-1)`` states: 2, 8, 128 and 32768 for associativities 2, 4, 8 and 16 —
exactly the numbers in Table 2.  The tree is stored in heap layout: node 0 is
the root and node ``k`` has children ``2k + 1`` and ``2k + 2``.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import PolicyError
from repro.policies.base import PolicyState, ReplacementPolicy


class PLRUPolicy(ReplacementPolicy):
    """Tree-based Pseudo-LRU for power-of-two associativities."""

    name = "PLRU"

    def __init__(self, associativity: int) -> None:
        super().__init__(associativity)
        if associativity & (associativity - 1) != 0:
            raise PolicyError(
                f"PLRU requires a power-of-two associativity, got {associativity}"
            )
        self._levels = associativity.bit_length() - 1

    def initial_state(self) -> PolicyState:
        return tuple(0 for _ in range(self.associativity - 1))

    # A bit value of 0 means "the victim is in the left subtree", 1 means right.

    def _touch(self, bits: Tuple[int, ...], line: int) -> Tuple[int, ...]:
        """Point every node on the path to ``line`` away from it."""
        if self.associativity == 1:
            return bits
        new_bits = list(bits)
        node = 0
        low, high = 0, self.associativity
        while high - low > 1:
            mid = (low + high) // 2
            if line < mid:
                # Accessed leaf is on the left: point the node to the right.
                new_bits[node] = 1
                node = 2 * node + 1
                high = mid
            else:
                new_bits[node] = 0
                node = 2 * node + 2
                low = mid
        return tuple(new_bits)

    def _victim(self, bits: Tuple[int, ...]) -> int:
        """Follow the pointer bits from the root to the victim leaf."""
        if self.associativity == 1:
            return 0
        node = 0
        low, high = 0, self.associativity
        while high - low > 1:
            mid = (low + high) // 2
            if bits[node] == 0:
                node = 2 * node + 1
                high = mid
            else:
                node = 2 * node + 2
                low = mid
        return low

    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        return self._touch(state, line)

    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        victim = self._victim(state)
        return self._touch(state, victim), victim

"""Base classes for replacement policies.

A replacement policy (Definition 2.1) is a Mealy machine over the alphabet
``{Ln(0), ..., Ln(n-1), Evct}``.  Rather than writing transition tables by
hand, concrete policies implement two pure functions over an opaque, hashable
control state:

* ``on_hit(state, line)`` — the update performed when the block in ``line``
  is accessed (the policy outputs ``⊥``);
* ``on_miss(state)`` — the update performed when a block must be evicted;
  it returns the new state *and* the index of the victim line.

:meth:`ReplacementPolicy.step` adapts these to the policy alphabet, and
:meth:`ReplacementPolicy.to_mealy` enumerates the reachable control states
into an explicit :class:`~repro.core.mealy.MealyMachine`.
"""

from __future__ import annotations

import abc
from typing import Hashable, Optional, Tuple

from repro.core.alphabet import (
    EVICT,
    MISS_OUTPUT,
    Evict,
    Line,
    PolicyInput,
    PolicyOutput,
    policy_input_alphabet,
)
from repro.core.mealy import MealyMachine, mealy_from_step_function
from repro.errors import PolicyError

PolicyState = Hashable


class ReplacementPolicy(abc.ABC):
    """Abstract deterministic replacement policy of a fixed associativity."""

    #: Short, human-readable policy name (e.g. ``"LRU"``); set by subclasses.
    name: str = "policy"

    #: Whether this policy may be compiled into a flat transition table
    #: (:meth:`tabulate`).  Policies whose control state space is unbounded
    #: or data-dependent set this to ``False``; ``kernel="auto"`` consumers
    #: then fall back to the scalar stepper.
    supports_tabulation: bool = True

    #: Reachable-state budget for :meth:`tabulate`.  ``None`` defers to
    #: :data:`repro.simkernel.tables.DEFAULT_STATE_BOUND`; policies with a
    #: known large-but-bounded state space can raise it.
    tabulation_state_bound: Optional[int] = None

    def __init__(self, associativity: int) -> None:
        if associativity < 1:
            raise PolicyError(f"associativity must be >= 1, got {associativity}")
        self.associativity = associativity

    # ------------------------------------------------------------- interface

    @abc.abstractmethod
    def initial_state(self) -> PolicyState:
        """Return the initial control state (after a cache reset)."""

    @abc.abstractmethod
    def on_hit(self, state: PolicyState, line: int) -> PolicyState:
        """Return the control state after a hit on ``line``."""

    @abc.abstractmethod
    def on_miss(self, state: PolicyState) -> Tuple[PolicyState, int]:
        """Return ``(new_state, victim_line)`` for a miss."""

    def on_fill(self, state: PolicyState, line: int) -> PolicyState:
        """Return the control state after a miss is served by filling an *invalid* line.

        Real caches allocate invalid ways before evicting valid ones; the
        replacement metadata of the filled way is then updated with the
        policy's *insertion* rule.  The default treats the fill like an
        access to that line, which is correct for recency-style policies
        (LRU, PLRU, MRU); age-based policies override it to apply their
        insertion age.  This hook is only used by the hardware cache model
        (:mod:`repro.cache.cacheset`); the abstract cache of Definition 2.3
        always starts full and never calls it.
        """
        return self.on_hit(state, line)

    # ------------------------------------------------------------- derived

    def step(self, state: PolicyState, symbol: PolicyInput) -> Tuple[PolicyState, PolicyOutput]:
        """Advance the policy by one input symbol of the policy alphabet."""
        if isinstance(symbol, Line):
            if not 0 <= symbol.index < self.associativity:
                raise PolicyError(
                    f"{self.name}: line {symbol.index} out of range for associativity "
                    f"{self.associativity}"
                )
            return self.on_hit(state, symbol.index), MISS_OUTPUT
        if isinstance(symbol, Evict):
            new_state, victim = self.on_miss(state)
            if not 0 <= victim < self.associativity:
                raise PolicyError(
                    f"{self.name}: on_miss returned invalid victim line {victim}"
                )
            return new_state, victim
        raise PolicyError(f"{self.name}: unknown policy input {symbol!r}")

    def input_alphabet(self) -> Tuple[PolicyInput, ...]:
        """Return the policy's input alphabet ``Ln(0)..Ln(n-1), Evct``."""
        return policy_input_alphabet(self.associativity)

    def to_mealy(self, *, max_states: int = 1_000_000) -> MealyMachine:
        """Enumerate the policy into an explicit Mealy machine.

        The result is the reachable fragment from the initial state; call
        ``.minimize()`` on it to obtain the canonical state count (the numbers
        reported in Table 2 of the paper).
        """
        return mealy_from_step_function(
            self.initial_state(),
            self.input_alphabet(),
            self.step,
            max_states=max_states,
            name=f"{self.name}-{self.associativity}",
        )

    def state_count(self, *, max_states: int = 1_000_000) -> int:
        """Return the number of states of the minimal machine for this policy."""
        return self.to_mealy(max_states=max_states).minimize().size

    def stepper(self) -> "PolicyStepper":
        """Return a mutable cursor over this policy, starting at the initial state."""
        return PolicyStepper(self)

    def tabulate(self, *, max_states: Optional[int] = None):
        """Compile this policy into a flat transition table.

        Returns a :class:`~repro.simkernel.tables.TabulatedPolicy` for the
        execution kernels in :mod:`repro.simkernel`.  The state bound is
        ``max_states`` if given, else :attr:`tabulation_state_bound`, else
        the subsystem default; exceeding it, or
        ``supports_tabulation = False``, raises a clean
        :class:`~repro.errors.PolicyError`.
        """
        from repro.simkernel.tables import tabulate_policy

        return tabulate_policy(self, max_states=max_states)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(associativity={self.associativity})"


class PolicyStepper:
    """A mutable cursor over a policy's control state.

    The software-simulated caches use one stepper per cache set; the policy
    object itself stays immutable and can be shared.
    """

    def __init__(self, policy: ReplacementPolicy) -> None:
        self.policy = policy
        self.state: PolicyState = policy.initial_state()

    def hit(self, line: int) -> None:
        """Record a hit on ``line``."""
        self.state = self.policy.on_hit(self.state, line)

    def miss(self) -> int:
        """Record a miss; return the victim line chosen by the policy."""
        self.state, victim = self.policy.on_miss(self.state)
        return victim

    def evict_output(self) -> int:
        """Peek at the victim the policy would choose now, without stepping."""
        _, victim = self.policy.on_miss(self.state)
        return victim

    def reset(self) -> None:
        """Return to the policy's initial state."""
        self.state = self.policy.initial_state()

    def apply(self, symbol: PolicyInput) -> PolicyOutput:
        """Apply one policy-alphabet symbol and return its output."""
        self.state, output = self.policy.step(self.state, symbol)
        return output

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PolicyStepper({self.policy.name}, state={self.state!r})"


def evict_alphabet_symbol() -> PolicyInput:
    """Return the eviction-request symbol (convenience re-export)."""
    return EVICT

"""Deterministic Mealy machines.

This module provides the automaton model used everywhere in the library:

* replacement policies are Mealy machines (Definition 2.1 in the paper);
* the learner (our LearnLib substitute) produces hypotheses as Mealy machines;
* the synthesizer checks candidate programs by Mealy trace-equivalence.

The implementation favours explicit data structures over cleverness: a
machine is a set of states with a transition map ``(state, input) -> state``
and an output map ``(state, input) -> output``.  States can be arbitrary
hashable objects (policy control states, observation-table rows, age
vectors), which keeps the rest of the code free of encoding concerns.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core.trace import Trace
from repro.errors import ReproError

State = Hashable
Input = Hashable
Output = Hashable

StateT = TypeVar("StateT", bound=Hashable)


class MealyDefinitionError(ReproError):
    """The machine definition is incomplete or inconsistent."""


@dataclass
class MealyMachine:
    """A deterministic, complete Mealy machine.

    Parameters
    ----------
    states:
        Collection of states.  Order is preserved and used for display.
    initial_state:
        The initial state; must be a member of ``states``.
    inputs:
        The input alphabet.
    transitions:
        Mapping ``(state, input) -> successor state``.
    outputs:
        Mapping ``(state, input) -> output symbol``.
    """

    states: List[State]
    initial_state: State
    inputs: List[Input]
    transitions: Dict[Tuple[State, Input], State]
    outputs: Dict[Tuple[State, Input], Output]
    name: str = ""
    _state_set: set = field(init=False, repr=False, default_factory=set)

    def __post_init__(self) -> None:
        self.states = list(self.states)
        self.inputs = list(self.inputs)
        self._state_set = set(self.states)
        if len(self._state_set) != len(self.states):
            raise MealyDefinitionError("duplicate states in machine definition")
        if self.initial_state not in self._state_set:
            raise MealyDefinitionError(f"initial state {self.initial_state!r} not in states")
        for state in self.states:
            for symbol in self.inputs:
                key = (state, symbol)
                if key not in self.transitions:
                    raise MealyDefinitionError(f"missing transition for {key!r}")
                if key not in self.outputs:
                    raise MealyDefinitionError(f"missing output for {key!r}")
                if self.transitions[key] not in self._state_set:
                    raise MealyDefinitionError(
                        f"transition {key!r} leads to unknown state {self.transitions[key]!r}"
                    )

    # ------------------------------------------------------------------ basic

    @property
    def size(self) -> int:
        """Number of states."""
        return len(self.states)

    def step(self, state: State, symbol: Input) -> Tuple[State, Output]:
        """Return ``(successor, output)`` for one input symbol."""
        key = (state, symbol)
        try:
            return self.transitions[key], self.outputs[key]
        except KeyError as exc:
            raise MealyDefinitionError(f"no transition for {key!r}") from exc

    def run(self, word: Sequence[Input], state: Optional[State] = None) -> Tuple[Output, ...]:
        """Return the output word produced when reading ``word``.

        This is the "output query" used by the learner: the machine is reset
        to ``state`` (the initial state by default) and the outputs of every
        input symbol are collected.
        """
        current = self.initial_state if state is None else state
        produced: List[Output] = []
        for symbol in word:
            current, output = self.step(current, symbol)
            produced.append(output)
        return tuple(produced)

    def state_after(self, word: Sequence[Input], state: Optional[State] = None) -> State:
        """Return the state reached after reading ``word``."""
        current = self.initial_state if state is None else state
        for symbol in word:
            current, _ = self.step(current, symbol)
        return current

    def trace(self, word: Sequence[Input]) -> Trace:
        """Return the full input/output trace for ``word`` from the initial state."""
        return Trace.from_pairs(tuple(word), self.run(word))

    def accepts_trace(self, trace: Trace) -> bool:
        """Return ``True`` iff ``trace`` belongs to the machine's trace semantics."""
        return self.run(trace.inputs) == trace.outputs

    # ------------------------------------------------------- transformations

    def reachable(self) -> "MealyMachine":
        """Return the sub-machine restricted to states reachable from the initial state."""
        seen = {self.initial_state}
        order = [self.initial_state]
        queue = deque(order)
        while queue:
            state = queue.popleft()
            for symbol in self.inputs:
                successor = self.transitions[(state, symbol)]
                if successor not in seen:
                    seen.add(successor)
                    order.append(successor)
                    queue.append(successor)
        transitions = {
            (state, symbol): self.transitions[(state, symbol)]
            for state in order
            for symbol in self.inputs
        }
        outputs = {
            (state, symbol): self.outputs[(state, symbol)]
            for state in order
            for symbol in self.inputs
        }
        return MealyMachine(order, self.initial_state, list(self.inputs), transitions, outputs, self.name)

    def minimize(self) -> "MealyMachine":
        """Return the minimal machine equivalent to this one.

        Uses Moore-style partition refinement: states start partitioned by
        their output row (the outputs they produce for every input) and the
        partition is refined until successor blocks stabilise.  The result is
        relabelled with consecutive integers, the initial state becoming the
        block containing the original initial state.
        """
        machine = self.reachable()
        # Initial partition by output signature.
        signature: Dict[State, Tuple[Output, ...]] = {
            state: tuple(machine.outputs[(state, symbol)] for symbol in machine.inputs)
            for state in machine.states
        }
        blocks: Dict[Tuple, List[State]] = {}
        for state in machine.states:
            blocks.setdefault(signature[state], []).append(state)
        partition = list(blocks.values())
        block_of: Dict[State, int] = {}
        for index, block in enumerate(partition):
            for state in block:
                block_of[state] = index

        while True:
            new_blocks: Dict[Tuple, List[State]] = {}
            for state in machine.states:
                key = (
                    block_of[state],
                    tuple(
                        block_of[machine.transitions[(state, symbol)]]
                        for symbol in machine.inputs
                    ),
                )
                new_blocks.setdefault(key, []).append(state)
            if len(new_blocks) == len(partition):
                break
            partition = list(new_blocks.values())
            block_of = {}
            for index, block in enumerate(partition):
                for state in block:
                    block_of[state] = index

        # Build the quotient machine with stable (BFS from initial) numbering.
        representative = {block_of[state]: state for block in partition for state in block}
        initial_block = block_of[machine.initial_state]
        numbering: Dict[int, int] = {}
        order: List[int] = []
        queue = deque([initial_block])
        numbering[initial_block] = 0
        order.append(initial_block)
        while queue:
            block = queue.popleft()
            state = representative[block]
            for symbol in machine.inputs:
                succ_block = block_of[machine.transitions[(state, symbol)]]
                if succ_block not in numbering:
                    numbering[succ_block] = len(numbering)
                    order.append(succ_block)
                    queue.append(succ_block)

        states = [numbering[block] for block in order]
        transitions: Dict[Tuple[State, Input], State] = {}
        outputs: Dict[Tuple[State, Input], Output] = {}
        for block in order:
            state = representative[block]
            for symbol in machine.inputs:
                transitions[(numbering[block], symbol)] = numbering[
                    block_of[machine.transitions[(state, symbol)]]
                ]
                outputs[(numbering[block], symbol)] = machine.outputs[(state, symbol)]
        return MealyMachine(states, 0, list(machine.inputs), transitions, outputs, machine.name)

    def relabel(self) -> "MealyMachine":
        """Return an isomorphic machine whose states are ``0..n-1`` in BFS order."""
        machine = self.reachable()
        numbering: Dict[State, int] = {machine.initial_state: 0}
        order = [machine.initial_state]
        queue = deque(order)
        while queue:
            state = queue.popleft()
            for symbol in machine.inputs:
                successor = machine.transitions[(state, symbol)]
                if successor not in numbering:
                    numbering[successor] = len(numbering)
                    order.append(successor)
                    queue.append(successor)
        transitions = {
            (numbering[state], symbol): numbering[machine.transitions[(state, symbol)]]
            for state in order
            for symbol in machine.inputs
        }
        outputs = {
            (numbering[state], symbol): machine.outputs[(state, symbol)]
            for state in order
            for symbol in machine.inputs
        }
        return MealyMachine(
            [numbering[state] for state in order], 0, list(machine.inputs), transitions, outputs, machine.name
        )

    # ------------------------------------------------------------ comparison

    def find_counterexample(self, other: "MealyMachine") -> Optional[Tuple[Input, ...]]:
        """Return a shortest input word on which the two machines disagree.

        Returns ``None`` if the machines are trace-equivalent.  Both machines
        must share the same input alphabet (as a set); the output alphabets
        may differ.
        """
        if set(self.inputs) != set(other.inputs):
            raise MealyDefinitionError("machines have different input alphabets")
        start = (self.initial_state, other.initial_state)
        visited = {start}
        queue: deque = deque([(start, ())])
        while queue:
            (state_a, state_b), word = queue.popleft()
            for symbol in self.inputs:
                next_a, out_a = self.step(state_a, symbol)
                next_b, out_b = other.step(state_b, symbol)
                extended = word + (symbol,)
                if out_a != out_b:
                    return extended
                pair = (next_a, next_b)
                if pair not in visited:
                    visited.add(pair)
                    queue.append((pair, extended))
        return None

    def equivalent(self, other: "MealyMachine") -> bool:
        """Return ``True`` iff the two machines have the same trace semantics."""
        return self.find_counterexample(other) is None

    # --------------------------------------------------------------- exports

    def to_dot(self) -> str:
        """Render the machine in Graphviz DOT format (for inspection/docs)."""
        lines = ["digraph mealy {", "  rankdir=LR;", '  __start [shape=point, label=""];']
        index = {state: i for i, state in enumerate(self.states)}
        for state in self.states:
            lines.append(f'  s{index[state]} [shape=circle, label="{state}"];')
        lines.append(f"  __start -> s{index[self.initial_state]};")
        for state in self.states:
            for symbol in self.inputs:
                succ = self.transitions[(state, symbol)]
                out = self.outputs[(state, symbol)]
                lines.append(
                    f'  s{index[state]} -> s{index[succ]} [label="{symbol}/{out}"];'
                )
        lines.append("}")
        return "\n".join(lines)

    def transition_table(self) -> List[Tuple[State, Input, Output, State]]:
        """Return the machine as a flat list of ``(state, input, output, successor)`` rows."""
        rows = []
        for state in self.states:
            for symbol in self.inputs:
                rows.append(
                    (state, symbol, self.outputs[(state, symbol)], self.transitions[(state, symbol)])
                )
        return rows


def mealy_from_step_function(
    initial_state: StateT,
    inputs: Iterable[Input],
    step: Callable[[StateT, Input], Tuple[StateT, Output]],
    *,
    max_states: int = 1_000_000,
    name: str = "",
) -> MealyMachine:
    """Enumerate the Mealy machine induced by a step function.

    ``step(state, input) -> (next_state, output)`` must be deterministic and
    produce hashable states.  The exploration is a breadth-first search from
    ``initial_state``; it raises :class:`MealyDefinitionError` when more than
    ``max_states`` states are discovered, which guards against accidentally
    enumerating an unbounded system.

    This is how concrete replacement-policy implementations (``repro.policies``)
    are converted into explicit automata, e.g. to obtain ground-truth state
    counts for Table 2 or reference machines for conformance checks.
    """
    input_list = list(inputs)
    states: List[StateT] = [initial_state]
    seen = {initial_state}
    transitions: Dict[Tuple[State, Input], State] = {}
    outputs: Dict[Tuple[State, Input], Output] = {}
    queue = deque([initial_state])
    while queue:
        state = queue.popleft()
        for symbol in input_list:
            successor, output = step(state, symbol)
            transitions[(state, symbol)] = successor
            outputs[(state, symbol)] = output
            if successor not in seen:
                if len(seen) >= max_states:
                    raise MealyDefinitionError(
                        f"state enumeration exceeded max_states={max_states}"
                    )
                seen.add(successor)
                states.append(successor)
                queue.append(successor)
    return MealyMachine(states, initial_state, input_list, transitions, outputs, name)

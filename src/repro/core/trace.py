"""Input/output traces shared by the cache model, Polca and the learner."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Iterable, Iterator, Sequence, Tuple, TypeVar

InputT = TypeVar("InputT")
OutputT = TypeVar("OutputT")


@dataclass(frozen=True)
class TraceStep(Generic[InputT, OutputT]):
    """A single input/output pair of a trace."""

    input: InputT
    output: OutputT

    def __iter__(self) -> Iterator:
        return iter((self.input, self.output))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"<{self.input}, {self.output}>"


class Trace(Generic[InputT, OutputT]):
    """An immutable sequence of input/output pairs.

    Traces are the elements of the policy semantics ``[[P]]`` and of the cache
    semantics ``[[C]]`` from Section 2.  They behave like tuples of
    :class:`TraceStep` but offer convenient projections.
    """

    __slots__ = ("_steps",)

    def __init__(self, steps: Iterable[Tuple[InputT, OutputT]] = ()) -> None:
        self._steps: Tuple[TraceStep[InputT, OutputT], ...] = tuple(
            step if isinstance(step, TraceStep) else TraceStep(step[0], step[1])
            for step in steps
        )

    @classmethod
    def from_pairs(cls, inputs: Sequence[InputT], outputs: Sequence[OutputT]) -> "Trace":
        """Zip parallel input/output sequences into a trace."""
        if len(inputs) != len(outputs):
            raise ValueError(
                f"inputs and outputs must have equal length ({len(inputs)} != {len(outputs)})"
            )
        return cls(zip(inputs, outputs))

    @property
    def inputs(self) -> Tuple[InputT, ...]:
        """The projection of the trace onto inputs."""
        return tuple(step.input for step in self._steps)

    @property
    def outputs(self) -> Tuple[OutputT, ...]:
        """The projection of the trace onto outputs."""
        return tuple(step.output for step in self._steps)

    def append(self, input_symbol: InputT, output_symbol: OutputT) -> "Trace":
        """Return a new trace extended by one step."""
        return Trace(tuple(self._steps) + (TraceStep(input_symbol, output_symbol),))

    def prefix(self, length: int) -> "Trace":
        """Return the prefix consisting of the first ``length`` steps."""
        return Trace(self._steps[:length])

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[TraceStep[InputT, OutputT]]:
        return iter(self._steps)

    def __getitem__(self, index):
        result = self._steps[index]
        if isinstance(index, slice):
            return Trace(result)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._steps == other._steps

    def __hash__(self) -> int:
        return hash(self._steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        body = " ".join(str(step) for step in self._steps)
        return f"Trace[{body}]"

"""Policy input/output alphabets (Table 1 of the paper).

A replacement policy of associativity ``n`` consumes inputs

* ``Ln(i)`` — "the block stored in cache line *i* was accessed (a hit)", and
* ``Evct`` — "a miss happened, pick a line to evict",

and produces outputs

* ``⊥`` (here :data:`MISS_OUTPUT`, rendered ``"-"``) for ``Ln(i)`` inputs, and
* a line index in ``0..n-1`` for ``Evct`` inputs.

Inputs are modelled as small frozen dataclasses so they are hashable (the
learner uses them as observation-table keys) and have readable ``repr``s in
learned models and error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True, order=True)
class Line:
    """Input symbol ``Ln(i)``: access the block currently stored in line ``i``."""

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"line index must be non-negative, got {self.index}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Ln({self.index})"

    __repr__ = __str__


@dataclass(frozen=True, order=True)
class Evict:
    """Input symbol ``Evct``: request that the policy frees one line."""

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "Evct"

    __repr__ = __str__


#: The singleton eviction-request input.
EVICT = Evict()

#: Output produced for ``Ln(i)`` inputs (the paper's ``⊥``).
MISS_OUTPUT = "-"

PolicyInput = Union[Line, Evict]
#: Policy outputs are either :data:`MISS_OUTPUT` or a line index.
PolicyOutput = Union[str, int]


def policy_input_alphabet(associativity: int) -> Tuple[PolicyInput, ...]:
    """Return the full policy input alphabet for the given associativity.

    The order is ``Ln(0), ..., Ln(n-1), Evct`` which matches the order used in
    the paper's examples and keeps learned models stable across runs.
    """
    if associativity < 1:
        raise ValueError(f"associativity must be >= 1, got {associativity}")
    return tuple(Line(i) for i in range(associativity)) + (EVICT,)


def policy_output_alphabet(associativity: int) -> Tuple[PolicyOutput, ...]:
    """Return the full policy output alphabet for the given associativity."""
    if associativity < 1:
        raise ValueError(f"associativity must be >= 1, got {associativity}")
    return (MISS_OUTPUT,) + tuple(range(associativity))


def is_line_input(symbol: PolicyInput) -> bool:
    """Return ``True`` when ``symbol`` is an ``Ln(i)`` access."""
    return isinstance(symbol, Line)


def is_evict_input(symbol: PolicyInput) -> bool:
    """Return ``True`` when ``symbol`` is the ``Evct`` request."""
    return isinstance(symbol, Evict)


def validate_output(symbol: PolicyInput, output: PolicyOutput, associativity: int) -> None:
    """Check the well-formedness conditions of Definition 2.1.

    ``Ln(i)`` inputs must produce ``⊥``; ``Evct`` must produce a line index in
    range.  Raises :class:`ValueError` on violation.
    """
    if isinstance(symbol, Line):
        if output != MISS_OUTPUT:
            raise ValueError(f"Ln({symbol.index}) must output {MISS_OUTPUT!r}, got {output!r}")
    else:
        if not isinstance(output, int) or not 0 <= output < associativity:
            raise ValueError(
                f"Evct must output a line index in [0, {associativity}), got {output!r}"
            )

"""Core formal models: policy alphabets, traces, and Mealy machines.

The classes in this package implement Section 2 of the paper: the policy
alphabet (Table 1), the Mealy-machine model of replacement policies
(Definition 2.1) and the trace machinery shared by the learner, Polca and the
synthesizer.
"""

from repro.core.alphabet import (
    EVICT,
    MISS_OUTPUT,
    Evict,
    Line,
    PolicyInput,
    PolicyOutput,
    policy_input_alphabet,
    policy_output_alphabet,
)
from repro.core.mealy import MealyMachine, mealy_from_step_function
from repro.core.trace import Trace, TraceStep

__all__ = [
    "EVICT",
    "MISS_OUTPUT",
    "Evict",
    "Line",
    "PolicyInput",
    "PolicyOutput",
    "policy_input_alphabet",
    "policy_output_alphabet",
    "MealyMachine",
    "mealy_from_step_function",
    "Trace",
    "TraceStep",
]

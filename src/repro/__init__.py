"""repro — a reproduction of *CacheQuery: Learning Replacement Policies from
Hardware Caches* (Vila, Ganty, Guarnieri, Köpf; PLDI 2020).

The package is organised as the paper's pipeline (Figure 1):

``repro.policies`` / ``repro.cache``
    Replacement policies and the cache substrates they drive (software
    simulated caches and a full multi-level hierarchy).
``repro.hardware``
    Simulated silicon CPUs (Haswell / Skylake / Kaby Lake profiles) with a
    timing model, noise, slicing, adaptive L3 sets and CAT — the stand-in for
    the paper's real hardware.
``repro.mbl`` / ``repro.cachequery``
    The MemBlockLang DSL and the CacheQuery frontend/backend that expose a
    single cache set as a hit/miss oracle.
``repro.polca`` / ``repro.learning``
    The Polca abstraction (Algorithm 1) and the Mealy-machine learner
    (observation-table L* plus Wp-method conformance testing) that together
    learn replacement policies.
``repro.synthesis``
    Template-based synthesis of human-readable policy explanations.
``repro.experiments``
    The harness regenerating every table and figure of the evaluation.
"""

from repro.version import __version__

__all__ = ["__version__"]

"""Tabulated simulator kernels: flat-array policy execution for the hot loop.

The simulated oracle used to answer every policy symbol by stepping a
pure-Python :class:`~repro.cache.cacheset.CacheSet` one block at a time —
the inner loop that dominates every Table 2 wall clock.  This subsystem
replaces that loop for bounded policies:

* :mod:`~repro.simkernel.tables` compiles any registered policy into dense
  ``next_state`` / ``output`` transition arrays via the existing
  ``to_mealy`` enumeration;
* :mod:`~repro.simkernel.steppers` provides two interchangeable chunk
  steppers over those arrays — a vectorized numpy kernel (lockstep gathers
  over a states vector) and a dependency-free pure-Python fallback;
* :mod:`~repro.simkernel.batch` wraps table + stepper into the
  :class:`BatchSimulator` facade, which speaks the learning stack's
  batched/resumable oracle protocol.

Consumers pick a kernel with the ``kernel=`` knob threaded through
:class:`~repro.polca.algorithm.PolcaMembershipOracle`,
:class:`~repro.polca.pipeline.PolicyLearningPipeline`, the worker factories
and the experiment CLI (``--kernel {auto,python,numpy,scalar}``); answers
and statistics are bit-identical across kernels and the legacy scalar path
by construction, a property ``tests/test_property_fuzz.py`` enforces.
"""

from repro.simkernel.batch import BatchSimulator
from repro.simkernel.steppers import (
    KERNEL_NAMES,
    NumpyKernel,
    PythonKernel,
    numpy_available,
    resolve_kernel,
)
from repro.simkernel.tables import (
    DEFAULT_STATE_BOUND,
    TabulatedPolicy,
    tabulate_policy,
)

__all__ = [
    "BatchSimulator",
    "DEFAULT_STATE_BOUND",
    "KERNEL_NAMES",
    "NumpyKernel",
    "PythonKernel",
    "TabulatedPolicy",
    "numpy_available",
    "resolve_kernel",
    "tabulate_policy",
]

"""Interchangeable execution kernels over a :class:`TabulatedPolicy`.

A kernel answers *chunks* of policy words: given a list of encoded words
(and optionally one start state per word), it returns every word's encoded
output word plus the control state each word ends in.  Two implementations
share that contract:

* :class:`NumpyKernel` — the throughput kernel: a chunk is padded into a
  dense ``(words, max_length)`` ``int32`` matrix and stepped column by
  column, so one gather (``outputs[states, column]`` /
  ``next_state[states, column]``) advances *every word in the chunk in
  lockstep*.  Finished words are masked out of the state update, which
  keeps their end states exact; their padded output cells are garbage by
  construction and sliced away on decode.

* :class:`PythonKernel` — the dependency-free fallback: a tight per-word
  loop over the same flat tuples.  Still several times faster than the
  scalar policy objects (no isinstance dispatch, no per-step object
  churn), and bit-identical to the numpy kernel by construction.

Both kernels are pure functions of the table: interleaving chunk calls,
splitting a chunk in two, or moving words between kernels can never change
an answer — the property the differential tests
(``tests/test_simkernel.py``, ``tests/test_property_fuzz.py``) pin down.

:func:`resolve_kernel` implements the selection policy shared by every
consumer: ``"numpy"`` and ``"python"`` force a kernel (raising
:class:`~repro.errors.PolicyError` when numpy is unavailable), ``"auto"``
picks numpy when importable and the pure-Python kernel otherwise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import PolicyError
from repro.simkernel.tables import TabulatedPolicy

#: Kernel names accepted by :func:`resolve_kernel` (and, with ``"scalar"``,
#: by every ``kernel=`` knob up the stack).
KERNEL_NAMES = ("auto", "numpy", "python")

CodeWord = Tuple[int, ...]


def numpy_available() -> bool:
    """True when numpy can be imported in this interpreter."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


class PythonKernel:
    """The dependency-free tabulated stepper: flat-tuple lookups per symbol."""

    name = "python"

    def __init__(self, table: TabulatedPolicy) -> None:
        self.table = table
        self._next = table.next_state
        self._outputs = table.outputs
        self._width = table.num_symbols

    def run_chunk(
        self,
        code_words: Sequence[CodeWord],
        start_states: Optional[Sequence[int]] = None,
    ) -> Tuple[List[CodeWord], List[int]]:
        """Step every word of a chunk; return (output code words, end states)."""
        next_state = self._next
        outputs = self._outputs
        width = self._width
        answered: List[CodeWord] = []
        end_states: List[int] = []
        for row, codes in enumerate(code_words):
            state = 0 if start_states is None else start_states[row]
            word_out = []
            append = word_out.append
            for code in codes:
                base = state * width + code
                append(outputs[base])
                state = next_state[base]
            answered.append(tuple(word_out))
            end_states.append(state)
        return answered, end_states


class NumpyKernel:
    """The vectorized stepper: one gather advances a whole chunk in lockstep."""

    name = "numpy"

    def __init__(self, table: TabulatedPolicy) -> None:
        try:
            import numpy
        except ImportError as exc:  # pragma: no cover - exercised via resolve_kernel
            raise PolicyError(
                "the numpy kernel was requested but numpy is not importable; "
                "install the [fast] extra or use kernel='python'"
            ) from exc
        self._np = numpy
        self.table = table
        self._width = numpy.int32(table.num_symbols)
        # Kept flat: the stepping loop gathers through one fused index
        # (state * width + symbol), so row-major 1-D take() is all we need.
        self._next = numpy.asarray(table.next_state, dtype=numpy.int32)
        self._outputs = numpy.asarray(table.outputs, dtype=numpy.int32)

    def run_chunk(
        self,
        code_words: Sequence[CodeWord],
        start_states: Optional[Sequence[int]] = None,
    ) -> Tuple[List[CodeWord], List[int]]:
        """Step every word of a chunk; return (output code words, end states).

        Words are padded to the chunk's maximum length and masked: a word
        that has already finished keeps its state frozen through the
        remaining columns, so end states are exact for every word no matter
        how ragged the chunk is.
        """
        np = self._np
        count = len(code_words)
        if count == 0:
            return [], []
        word_lengths = [len(word) for word in code_words]
        max_length = max(word_lengths)
        if start_states is None:
            states = np.zeros(count, dtype=np.int32)
        else:
            states = np.asarray(start_states, dtype=np.int32).copy()
        if max_length == 0:
            return [() for _ in code_words], [int(state) for state in states]
        lengths = np.asarray(word_lengths, dtype=np.int32)
        # One dense (count, max_length) matrix: scatter every word's codes
        # into its row prefix in one masked assignment (mask rows are
        # prefix-true, so C-order fill matches concatenation order).
        mask = lengths[:, None] > np.arange(max_length, dtype=np.int32)
        codes = np.zeros((count, max_length), dtype=np.int32)
        codes[mask] = np.fromiter(
            (code for word in code_words for code in word),
            dtype=np.int32,
            count=int(lengths.sum()),
        )
        produced = np.empty((count, max_length), dtype=np.int32)
        next_state = self._next
        outputs = self._outputs
        width = self._width
        for column in range(max_length):
            base = states * width + codes[:, column]
            produced[:, column] = outputs.take(base)
            states = np.where(mask[:, column], next_state.take(base), states)
        rows = produced.tolist()  # plain Python ints, one C pass
        answered = [
            tuple(row[:length]) for row, length in zip(rows, word_lengths)
        ]
        return answered, [int(state) for state in states]


def resolve_kernel(table: TabulatedPolicy, kernel: str = "auto"):
    """Build the stepper named by ``kernel`` over ``table``.

    ``"auto"`` prefers numpy and silently falls back to the pure-Python
    kernel; the explicit names are strict (a missing numpy raises
    :class:`~repro.errors.PolicyError` instead of degrading quietly).
    """
    if kernel not in KERNEL_NAMES:
        raise PolicyError(
            f"unknown simulator kernel {kernel!r}; choose one of {KERNEL_NAMES}"
        )
    if kernel == "numpy" or (kernel == "auto" and numpy_available()):
        if not numpy_available():
            raise PolicyError(
                "the numpy kernel was requested but numpy is not importable; "
                "install the [fast] extra or use kernel='python'"
            )
        return NumpyKernel(table)
    return PythonKernel(table)

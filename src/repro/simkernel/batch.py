"""The :class:`BatchSimulator` facade: a policy-word oracle over a kernel.

This is the execution core the rest of the stack plugs into: it owns one
compiled :class:`~repro.simkernel.tables.TabulatedPolicy` and one stepper
(numpy or pure Python, see :mod:`repro.simkernel.steppers`) and answers
whole chunks of policy words at once.  On top of the chunk primitive it
implements the learning stack's full batched-oracle protocol
(:mod:`repro.learning.query_engine`):

* ``output_query(word)`` / ``output_query_batch(words)`` — answer words
  from the initial state;
* ``output_query_resume(prefix, suffix)`` with ``supports_resume`` —
  answer ``prefix + suffix`` while *stepping* only ``suffix``, resuming
  from the table state ``prefix`` reaches (computed by a table walk, never
  by re-answering the prefix).

That means a ``BatchSimulator`` can sit directly behind a
:class:`~repro.learning.oracles.CachedMembershipOracle` as a white-box
system under learning, or inside
:class:`~repro.polca.algorithm.PolcaMembershipOracle` as the fast path that
replaces per-symbol cache probing for simulated targets (where the
interface guarantees policy-exact semantics).

Outputs are always plain Python values (``"-"`` or ``int``), never numpy
scalars: answers must be bit-identical to the scalar path — including
through pickling, the prefix store codec and machine equality — no matter
which kernel produced them.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.alphabet import PolicyInput, PolicyOutput
from repro.learning.oracles import QueryStatistics
from repro.simkernel.steppers import resolve_kernel
from repro.simkernel.tables import TabulatedPolicy, tabulate_policy

Word = Sequence[PolicyInput]
OutputWord = Tuple[PolicyOutput, ...]


class BatchSimulator:
    """Answer chunks of policy words through a tabulated execution kernel."""

    supports_resume = True

    def __init__(
        self,
        policy,
        *,
        kernel: str = "auto",
        max_states: Optional[int] = None,
    ) -> None:
        """Compile ``policy`` (or adopt a ready :class:`TabulatedPolicy`)
        and bind the requested kernel.

        Raises :class:`~repro.errors.PolicyError` when the policy does not
        tabulate within its state bound or the forced kernel is
        unavailable — ``kernel="auto"`` consumers catch it and fall back to
        scalar stepping.
        """
        if isinstance(policy, TabulatedPolicy):
            self.table = policy
        else:
            self.table = tabulate_policy(policy, max_states=max_states)
        self._stepper = resolve_kernel(self.table, kernel)
        #: The kernel actually bound ("numpy" or "python").
        self.kernel = self._stepper.name
        self.associativity = self.table.associativity
        self.statistics = QueryStatistics()

    # -------------------------------------------------------------- chunk API

    def answer_words(self, words: Sequence[Word]) -> List[OutputWord]:
        """Answer a chunk of policy words from the initial state, in order."""
        outputs, _ = self._run([self.table.encode_word(word) for word in words], None)
        return outputs

    def answer_words_from_states(
        self, words: Sequence[Word], states: Sequence[int]
    ) -> Tuple[List[OutputWord], List[int]]:
        """Answer a chunk resuming each word from its own table state."""
        return self._run([self.table.encode_word(word) for word in words], list(states))

    def state_after(self, word: Word, state: int = 0) -> int:
        """Return the table state reached after reading ``word`` from ``state``."""
        current = state
        table = self.table
        for code in table.encode_word(word):
            current, _ = table.step(current, code)
        return current

    def _run(
        self, code_words: List[Tuple[int, ...]], states: Optional[List[int]]
    ) -> Tuple[List[OutputWord], List[int]]:
        answered, end_states = self._stepper.run_chunk(code_words, states)
        decode = self.table.decode_outputs
        for word in code_words:
            self.statistics.record_query(len(word))
        return [decode(codes) for codes in answered], end_states

    # ----------------------------------------------------- oracle protocol

    def output_query(self, word: Word) -> OutputWord:
        """Answer one policy word (the membership-oracle entry point)."""
        return self.answer_words([tuple(word)])[0]

    def output_query_batch(self, words: Sequence[Word]) -> List[OutputWord]:
        """Answer a batch of policy words, one output word per input word."""
        return self.answer_words([tuple(word) for word in words])

    def output_query_resume(
        self,
        prefix: Word,
        suffix: Word,
        prefix_outputs: Optional[Sequence[Hashable]] = None,
    ) -> OutputWord:
        """Answer ``prefix + suffix`` stepping only ``suffix``.

        ``prefix_outputs`` is accepted for protocol compatibility and
        ignored: like a machine-backed oracle, the simulator re-derives the
        resume state directly from the table (an O(|prefix|) walk that
        executes nothing).
        """
        state = self.state_after(tuple(prefix))
        outputs, _ = self.answer_words_from_states([tuple(suffix)], [state])
        self.statistics.resumed_symbols += len(tuple(prefix))
        return outputs[0]

"""Compiling bounded replacement policies into flat transition arrays.

A deterministic replacement policy of associativity ``n`` is a Mealy machine
over the alphabet ``Ln(0), ..., Ln(n-1), Evct`` (Definition 2.1).  The
policies in :mod:`repro.policies` expose that machine through pure step
functions over opaque control states — ideal for clarity, hopeless for
throughput: every simulated access pays attribute lookups, isinstance
dispatch and a fresh Python object per state.

:func:`tabulate_policy` trades memory for speed once per policy instance: it
enumerates the reachable control states via the existing
:meth:`~repro.policies.base.ReplacementPolicy.to_mealy` machinery and lays
the machine out as two dense row-major arrays

* ``next_state[state * num_symbols + symbol] -> state`` and
* ``outputs[state * num_symbols + symbol] -> encoded output``,

with states numbered ``0 .. num_states - 1`` in BFS discovery order (the
initial state is always ``0``), input symbols numbered ``Ln(i) -> i`` and
``Evct -> associativity``, and outputs encoded as ``-1`` for the paper's
``⊥`` (:data:`~repro.core.alphabet.MISS_OUTPUT`) or the victim line index.
The encoding is shared by both execution kernels
(:mod:`repro.simkernel.steppers`): the pure-Python stepper indexes the flat
tuples directly and the numpy stepper reshapes them into ``int32``
``(num_states, num_symbols)`` gather tables.

Tables are immutable, hashable-free plain data and therefore picklable —
though the worker pools deliberately *rebuild* them from the policy name at
pool init instead of shipping them (see
:class:`~repro.learning.parallel.SimulatedPolicyOracleFactory`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.alphabet import (
    MISS_OUTPUT,
    Evict,
    Line,
    PolicyInput,
    PolicyOutput,
)
from repro.core.mealy import MealyDefinitionError
from repro.errors import PolicyError

#: Reachable-state budget used when neither the caller nor the policy
#: declares one.  Generous enough for every Table 2 configuration (PLRU-16
#: tops out at 32768 control states) while still catching runaway state
#: spaces quickly.
DEFAULT_STATE_BOUND = 1 << 17


@dataclass(frozen=True)
class TabulatedPolicy:
    """A replacement policy compiled to flat transition/output arrays.

    ``next_state`` and ``outputs`` are row-major flat tuples of length
    ``num_states * num_symbols``; see the module docstring for the symbol
    and output encodings.  Instances are produced by
    :func:`tabulate_policy` (or the
    :meth:`~repro.policies.base.ReplacementPolicy.tabulate` hook) and
    consumed by the kernels in :mod:`repro.simkernel.steppers`.
    """

    name: str
    associativity: int
    num_states: int
    next_state: Tuple[int, ...]
    outputs: Tuple[int, ...]

    #: Encoded output standing for the paper's ``⊥`` (a hit: no eviction).
    MISS_CODE = -1

    @property
    def num_symbols(self) -> int:
        """Size of the input alphabet: ``Ln(0..n-1)`` plus ``Evct``."""
        return self.associativity + 1

    @property
    def initial_state(self) -> int:
        """The compiled id of the policy's initial control state."""
        return 0

    # ------------------------------------------------------------- encodings

    def encode_symbol(self, symbol: PolicyInput) -> int:
        """Map a policy input to its column index (``Ln(i) -> i``, ``Evct -> n``)."""
        if isinstance(symbol, Line):
            if not 0 <= symbol.index < self.associativity:
                raise PolicyError(
                    f"{self.name}: line {symbol.index} out of range for "
                    f"associativity {self.associativity}"
                )
            return symbol.index
        if isinstance(symbol, Evict):
            return self.associativity
        raise PolicyError(f"{self.name}: unknown policy input {symbol!r}")

    def encode_word(self, word: Sequence[PolicyInput]) -> Tuple[int, ...]:
        """Encode a whole policy word into symbol indices."""
        return tuple(self.encode_symbol(symbol) for symbol in word)

    def decode_output(self, code: int) -> PolicyOutput:
        """Map an encoded output back to ``⊥`` or a victim line index."""
        return MISS_OUTPUT if code == self.MISS_CODE else code

    def decode_outputs(self, codes: Sequence[int]) -> Tuple[PolicyOutput, ...]:
        """Decode a whole output word (always plain Python ints/str)."""
        miss = self.MISS_CODE
        return tuple(MISS_OUTPUT if code == miss else code for code in codes)

    # -------------------------------------------------------------- stepping

    def step(self, state: int, code: int) -> Tuple[int, int]:
        """Scalar reference step: ``(state, symbol code) -> (state', output code)``."""
        base = state * self.num_symbols + code
        return self.next_state[base], self.outputs[base]


def _encode_output(output: PolicyOutput, associativity: int, name: str) -> int:
    if output == MISS_OUTPUT:
        return TabulatedPolicy.MISS_CODE
    if isinstance(output, int) and not isinstance(output, bool):
        if 0 <= output < associativity:
            return output
    raise PolicyError(
        f"{name}: output {output!r} is not a policy output "
        f"(expected {MISS_OUTPUT!r} or a line index below {associativity})"
    )


def tabulate_policy(policy, *, max_states: int = None) -> TabulatedPolicy:
    """Compile ``policy`` into a :class:`TabulatedPolicy`.

    The state bound is, in order of precedence: the ``max_states`` argument,
    the policy's declared ``tabulation_state_bound``, then
    :data:`DEFAULT_STATE_BOUND`.  Exceeding it — or a policy that opts out
    with ``supports_tabulation = False`` — raises a clean
    :class:`~repro.errors.PolicyError`, which ``kernel="auto"`` consumers
    (:class:`~repro.polca.algorithm.PolcaMembershipOracle`) treat as "fall
    back to the scalar stepper".
    """
    if not getattr(policy, "supports_tabulation", True):
        raise PolicyError(
            f"{getattr(policy, 'name', policy)!r} declares "
            "supports_tabulation=False and cannot be compiled to a "
            "transition table"
        )
    bound = max_states
    if bound is None:
        bound = getattr(policy, "tabulation_state_bound", None)
    if bound is None:
        bound = DEFAULT_STATE_BOUND
    if bound < 1:
        raise PolicyError(f"tabulation state bound must be >= 1, got {bound}")
    try:
        machine = policy.to_mealy(max_states=bound)
    except MealyDefinitionError as exc:
        raise PolicyError(
            f"{policy.name}: policy does not tabulate within the "
            f"{bound}-state bound ({exc}); raise tabulation_state_bound or "
            "use the scalar stepper"
        ) from exc
    associativity = policy.associativity
    symbols = policy.input_alphabet()
    index = {state: i for i, state in enumerate(machine.states)}
    if index[machine.initial_state] != 0:  # pragma: no cover - BFS invariant
        raise PolicyError(f"{policy.name}: initial state was not enumerated first")
    next_state = []
    outputs = []
    for state in machine.states:
        for symbol in symbols:
            key = (state, symbol)
            next_state.append(index[machine.transitions[key]])
            outputs.append(_encode_output(machine.outputs[key], associativity, policy.name))
    return TabulatedPolicy(
        name=f"{policy.name}-{associativity}",
        associativity=associativity,
        num_states=len(machine.states),
        next_state=tuple(next_state),
        outputs=tuple(outputs),
    )

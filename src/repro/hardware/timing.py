"""Timing and measurement-noise model.

On real hardware CacheQuery classifies each profiled load as a hit or a miss
from its latency (``rdtsc`` cycles or performance counters).  The simulated
CPUs reproduce the essential structure of those measurements: every level
has a base latency, and each measurement is perturbed by additive noise
drawn from a seeded Gaussian (plus occasional larger outliers standing in
for interrupts / TLB misses).  The classification layer then has to recover
the hit/miss signal by thresholding and repetition, exactly as the real
backend does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import CacheError


@dataclass
class NoiseModel:
    """Additive measurement noise: Gaussian jitter plus rare positive outliers."""

    std: float = 2.0
    outlier_probability: float = 0.002
    outlier_magnitude: float = 200.0
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.std < 0:
            raise CacheError(f"noise std must be non-negative, got {self.std}")
        if self.std == 0:
            # std == 0 means "noise-free measurements" (used by deterministic
            # experiments and tests); outliers are disabled as well.
            self.outlier_probability = 0.0
        self._random = random.Random(self.seed)

    def sample(self) -> float:
        """Return one noise sample in cycles (can be negative for jitter)."""
        noise = self._random.gauss(0.0, self.std) if self.std > 0 else 0.0
        if self.outlier_probability > 0 and self._random.random() < self.outlier_probability:
            noise += self.outlier_magnitude * self._random.random()
        return noise

    def reseed(self, seed: int) -> None:
        """Restart the noise stream from ``seed`` (for reproducible experiments)."""
        self.seed = seed
        self._random = random.Random(seed)


class TimingModel:
    """Per-level load latencies plus measurement noise."""

    def __init__(
        self,
        level_latencies: Dict[str, int],
        memory_latency: int,
        noise: Optional[NoiseModel] = None,
    ) -> None:
        if memory_latency <= max(level_latencies.values(), default=0):
            raise CacheError("memory latency must exceed every cache hit latency")
        self.level_latencies = dict(level_latencies)
        self.memory_latency = memory_latency
        self.noise = noise if noise is not None else NoiseModel()

    def latency(self, hit_level: Optional[str]) -> float:
        """Return a noisy latency for a load served by ``hit_level`` (None = DRAM)."""
        base = self.memory_latency if hit_level is None else self.level_latencies[hit_level]
        return max(1.0, base + self.noise.sample())

    def base_latency(self, hit_level: Optional[str]) -> int:
        """Return the noise-free latency for a load served by ``hit_level``."""
        return self.memory_latency if hit_level is None else self.level_latencies[hit_level]

    def hit_threshold(self, level: str) -> float:
        """Return a cycle threshold separating "hit in ``level`` or closer" from slower loads.

        The threshold is the midpoint between the level's own latency and the
        latency of the next slower level (or DRAM), the same calibration the
        real tool performs once per machine.
        """
        if level not in self.level_latencies:
            raise CacheError(f"unknown cache level {level!r}")
        own = self.level_latencies[level]
        slower = [value for value in self.level_latencies.values() if value > own]
        next_latency = min(slower) if slower else self.memory_latency
        return (own + next_latency) / 2.0

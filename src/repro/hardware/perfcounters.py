"""Performance counters of the simulated CPU.

CacheQuery can profile accesses with performance counters instead of the
time-stamp counter; the simulated CPU keeps per-level demand hit/miss
counters so that both profiling modes are available to the backend and the
tests can cross-check the timing-based classification against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class PerformanceCounters:
    """Simple demand-load counters, per cache level."""

    loads: int = 0
    flushes: int = 0
    level_hits: Dict[str, int] = field(default_factory=dict)
    memory_accesses: int = 0
    prefetches: int = 0

    def record_load(self, hit_level: Optional[str]) -> None:
        """Record one demand load served by ``hit_level`` (None = DRAM)."""
        self.loads += 1
        if hit_level is None:
            self.memory_accesses += 1
        else:
            self.level_hits[hit_level] = self.level_hits.get(hit_level, 0) + 1

    def record_flush(self) -> None:
        """Record one ``clflush``."""
        self.flushes += 1

    def record_prefetch(self) -> None:
        """Record one prefetcher-issued load."""
        self.prefetches += 1

    def snapshot(self) -> Dict[str, int]:
        """Return a flat dictionary of all counters (for reports)."""
        flat = {
            "loads": self.loads,
            "flushes": self.flushes,
            "memory_accesses": self.memory_accesses,
            "prefetches": self.prefetches,
        }
        for level, hits in self.level_hits.items():
            flat[f"{level}_hits"] = hits
        return flat

    def reset(self) -> None:
        """Zero every counter."""
        self.loads = 0
        self.flushes = 0
        self.memory_accesses = 0
        self.prefetches = 0
        self.level_hits.clear()

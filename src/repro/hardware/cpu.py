"""The simulated CPU: memory hierarchy + timing + prefetcher + V2P mapping.

:class:`SimulatedCPU` is the object the CacheQuery backend drives.  It only
exposes what user- or kernel-mode measurement code could use on real
hardware:

* ``load(virtual_address)`` — perform a load and return its (noisy) latency
  in cycles;
* ``clflush(virtual_address)`` / ``wbinvd()`` — invalidate one line / all
  caches;
* ``translate(virtual_address)`` — the virtual→physical mapping (available
  to the backend because, like the paper's tool, it runs as a kernel
  module);
* knobs for the prefetcher and for CAT way masks.

The virtual→physical mapping is a deterministic pseudo-random page
permutation, so contiguous virtual buffers are scattered over physical page
frames — the reason the backend cannot simply use virtual addresses to pick
congruent blocks for L2/L3 and has to translate, exactly as on Linux.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.cache import AdaptiveConfig
from repro.cache.cat import CATConfig
from repro.cache.hierarchy import CacheHierarchy, CacheLevelConfig
from repro.errors import CacheError
from repro.hardware.perfcounters import PerformanceCounters
from repro.hardware.prefetcher import NextLinePrefetcher
from repro.hardware.profiles import CPUProfile
from repro.hardware.timing import NoiseModel, TimingModel

PAGE_SIZE = 4096
_PAGE_MIX_PRIME = 0x9E3779B97F4A7C15


class SimulatedCPU:
    """A small, deterministic model of one core plus its cache hierarchy."""

    def __init__(
        self,
        profile: CPUProfile,
        *,
        noise: Optional[NoiseModel] = None,
        physical_pages: int = 1 << 18,
    ) -> None:
        self.profile = profile
        self.physical_pages = physical_pages
        self.hierarchy = self._build_hierarchy(profile)
        self.timing = TimingModel(
            {spec.name: spec.hit_latency for spec in profile.levels},
            profile.memory_latency,
            noise if noise is not None else NoiseModel(std=profile.noise_std),
        )
        self.prefetcher = NextLinePrefetcher()
        self.counters = PerformanceCounters()
        self._page_table: Dict[int, int] = {}
        self._used_frames: Dict[int, int] = {}

    # ------------------------------------------------------------- construction

    @staticmethod
    def _build_hierarchy(profile: CPUProfile) -> CacheHierarchy:
        configs: List[CacheLevelConfig] = []
        for spec in profile.levels:
            adaptive = None
            if spec.adaptive is not None:
                adaptive = AdaptiveConfig(
                    selector=spec.adaptive.selector(),
                    leader_a_policy=spec.adaptive.leader_a_policy,
                    leader_b_policy=spec.adaptive.leader_b_policy,
                )
            configs.append(
                CacheLevelConfig(
                    name=spec.name,
                    associativity=spec.associativity,
                    sets_per_slice=spec.sets_per_slice,
                    slices=spec.slices,
                    hit_latency=spec.hit_latency,
                    policy=spec.policy,
                    adaptive=adaptive,
                    supports_cat=spec.supports_cat,
                )
            )
        return CacheHierarchy(configs, memory_latency=profile.memory_latency)

    # ------------------------------------------------------------- translation

    def translate(self, virtual_address: int) -> int:
        """Return the physical address backing ``virtual_address``.

        Pages are assigned lazily with a deterministic pseudo-random
        permutation seeded by the profile, mimicking the scattered physical
        layout of a freshly allocated user buffer.
        """
        if virtual_address < 0:
            raise CacheError(f"negative virtual address {virtual_address:#x}")
        page = virtual_address // PAGE_SIZE
        offset = virtual_address % PAGE_SIZE
        frame = self._page_table.get(page)
        if frame is None:
            frame = self._pick_frame(page)
            self._page_table[page] = frame
            self._used_frames[frame] = page
        return frame * PAGE_SIZE + offset

    def _pick_frame(self, page: int) -> int:
        candidate = ((page + 1) * _PAGE_MIX_PRIME ^ self.profile.v2p_seed) % self.physical_pages
        for attempt in range(self.physical_pages):
            frame = (candidate + attempt) % self.physical_pages
            if frame not in self._used_frames:
                return frame
        raise CacheError("physical memory exhausted in the simulated CPU")

    # ----------------------------------------------------------------- actions

    def load(self, virtual_address: int) -> float:
        """Execute one load; return its measured latency in cycles."""
        physical = self.translate(virtual_address)
        result = self.hierarchy.load(physical)
        self.counters.record_load(result.hit_level)
        prefetch_target = self.prefetcher.observe(physical)
        if prefetch_target is not None:
            # Prefetches fill the hierarchy but are not timed.
            self.hierarchy.load(prefetch_target)
            self.counters.record_prefetch()
        return self.timing.latency(result.hit_level)

    def load_physical(self, physical_address: int) -> float:
        """Execute one load given a physical address (backend-internal use)."""
        result = self.hierarchy.load(physical_address)
        self.counters.record_load(result.hit_level)
        return self.timing.latency(result.hit_level)

    def probe_level(self, virtual_address: int) -> Optional[str]:
        """Return the closest level currently holding the address (no side effects)."""
        return self.hierarchy.peek(self.translate(virtual_address))

    def clflush(self, virtual_address: int) -> None:
        """Invalidate the line containing ``virtual_address`` in every level."""
        self.hierarchy.clflush(self.translate(virtual_address))
        self.counters.record_flush()

    def clflush_physical(self, physical_address: int) -> None:
        """Invalidate the line containing a physical address (backend-internal use)."""
        self.hierarchy.clflush(physical_address)
        self.counters.record_flush()

    def wbinvd(self) -> None:
        """Invalidate all caches."""
        self.hierarchy.wbinvd()

    # ------------------------------------------------------------------- knobs

    def set_prefetcher(self, enabled: bool) -> None:
        """Enable or disable the hardware prefetcher (MSR 0x1A4 on real CPUs)."""
        self.prefetcher.enabled = enabled
        if not enabled:
            self.prefetcher.reset()

    def configure_cat(self, level: str, ways: int) -> None:
        """Restrict allocation in ``level`` to ``ways`` ways via a CAT mask."""
        spec = self.profile.level(level)
        if not spec.supports_cat:
            raise CacheError(f"{self.profile.name} does not support CAT on {level}")
        self.hierarchy.level(level).configure_cat(CATConfig.reduce_to(ways))

    def clear_cat(self, level: str) -> None:
        """Remove any CAT restriction on ``level``."""
        self.hierarchy.level(level).configure_cat(CATConfig(supported=True, way_mask=0))

    def effective_associativity(self, level: str) -> int:
        """Return the associativity visible to allocations in ``level``."""
        return self.hierarchy.level(level).effective_associativity

    # ------------------------------------------------------------------ helpers

    def level_geometry(self, level: str) -> Tuple[int, int, int]:
        """Return ``(associativity, slices, sets_per_slice)`` for ``level``."""
        spec = self.profile.level(level)
        return spec.associativity, spec.slices, spec.sets_per_slice

    def reset_measurement_state(self) -> None:
        """Flush all caches, reset counters and the prefetcher history."""
        self.wbinvd()
        self.counters.reset()
        self.prefetcher.reset()

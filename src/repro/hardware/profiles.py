"""CPU profiles: the cache geometries of Table 3 plus the discovered policies.

Each profile records, for every cache level, the associativity, slice count,
sets per slice, hit latency and — crucially — the replacement policy the
paper eventually discovered on that level (PLRU on the L1s and Haswell's L2,
New1 on Skylake/Kaby Lake L2, New2 on the L3 leader sets with the adaptive
set-dueling mechanism around it).  The simulated CPUs are built from these
profiles, so the learning experiments of Section 7 must re-discover exactly
these policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.cache.adaptive import AdaptiveSetSelector
from repro.errors import CacheError


@dataclass(frozen=True)
class AdaptiveSpec:
    """Static description of an adaptive (set-dueling) cache level."""

    scheme: str
    leader_a_policy: str
    leader_b_policy: str

    def selector(self) -> AdaptiveSetSelector:
        """Return the set selector implementing this scheme."""
        return AdaptiveSetSelector(scheme=self.scheme)


@dataclass(frozen=True)
class CacheLevelSpec:
    """Geometry and policy of one cache level of a CPU profile."""

    name: str
    associativity: int
    slices: int
    sets_per_slice: int
    hit_latency: int
    policy: str
    adaptive: Optional[AdaptiveSpec] = None
    supports_cat: bool = True

    @property
    def total_sets(self) -> int:
        """Total number of sets across all slices."""
        return self.sets_per_slice * self.slices

    @property
    def size_bytes(self) -> int:
        """Cache capacity in bytes (64-byte lines)."""
        return self.total_sets * self.associativity * 64


@dataclass(frozen=True)
class CPUProfile:
    """A complete simulated-CPU description."""

    name: str
    microarchitecture: str
    levels: Tuple[CacheLevelSpec, ...]
    memory_latency: int = 230
    noise_std: float = 2.0
    v2p_seed: int = 0xC0FFEE

    def level(self, name: str) -> CacheLevelSpec:
        """Return the level spec called ``name`` (e.g. ``"L2"``)."""
        for spec in self.levels:
            if spec.name == name:
                return spec
        raise CacheError(f"{self.name} has no cache level {name!r}")

    def with_level(self, name: str, **changes) -> "CPUProfile":
        """Return a copy of the profile with one level's fields replaced.

        Used by the fast benchmark profiles, e.g. to shrink an associativity
        while keeping the rest of the machine identical.
        """
        new_levels = tuple(
            replace(spec, **changes) if spec.name == name else spec for spec in self.levels
        )
        return replace(self, levels=new_levels)


_L1_LATENCY = 4
_L2_LATENCY = 12
_L3_LATENCY = 42

HASWELL_I7_4790 = CPUProfile(
    name="i7-4790",
    microarchitecture="Haswell",
    levels=(
        CacheLevelSpec("L1", 8, 1, 64, _L1_LATENCY, "PLRU"),
        CacheLevelSpec("L2", 8, 1, 512, _L2_LATENCY, "PLRU"),
        CacheLevelSpec(
            "L3",
            16,
            4,
            2048,
            _L3_LATENCY,
            "NEW2",
            adaptive=AdaptiveSpec("haswell", "NEW2", "BRRIP-HP"),
            supports_cat=False,
        ),
    ),
)

SKYLAKE_I5_6500 = CPUProfile(
    name="i5-6500",
    microarchitecture="Skylake",
    levels=(
        CacheLevelSpec("L1", 8, 1, 64, _L1_LATENCY, "PLRU"),
        CacheLevelSpec("L2", 4, 1, 1024, _L2_LATENCY, "NEW1"),
        CacheLevelSpec(
            "L3",
            12,
            8,
            1024,
            _L3_LATENCY,
            "NEW2",
            adaptive=AdaptiveSpec("skylake", "NEW2", "BRRIP-HP"),
            supports_cat=True,
        ),
    ),
)

KABY_LAKE_I7_8550U = CPUProfile(
    name="i7-8550U",
    microarchitecture="Kaby Lake",
    levels=(
        CacheLevelSpec("L1", 8, 1, 64, _L1_LATENCY, "PLRU"),
        CacheLevelSpec("L2", 4, 1, 1024, _L2_LATENCY, "NEW1"),
        CacheLevelSpec(
            "L3",
            16,
            8,
            1024,
            _L3_LATENCY,
            "NEW2",
            adaptive=AdaptiveSpec("skylake", "NEW2", "BRRIP-HP"),
            supports_cat=True,
        ),
    ),
)

_PROFILES: Dict[str, CPUProfile] = {
    "i7-4790": HASWELL_I7_4790,
    "haswell": HASWELL_I7_4790,
    "i5-6500": SKYLAKE_I5_6500,
    "skylake": SKYLAKE_I5_6500,
    "i7-8550u": KABY_LAKE_I7_8550U,
    "kaby lake": KABY_LAKE_I7_8550U,
    "kabylake": KABY_LAKE_I7_8550U,
}


def cpu_profile(name: str) -> CPUProfile:
    """Return a known CPU profile by model number or microarchitecture name."""
    try:
        return _PROFILES[name.lower()]
    except KeyError:
        known = ", ".join(sorted({profile.name for profile in _PROFILES.values()}))
        raise CacheError(f"unknown CPU profile {name!r}; known profiles: {known}") from None


def known_profiles() -> Tuple[CPUProfile, ...]:
    """Return the three CPU profiles of Table 3."""
    return (HASWELL_I7_4790, SKYLAKE_I5_6500, KABY_LAKE_I7_8550U)

"""Simulated silicon CPUs — the stand-in for the paper's Intel machines.

The paper measures real Haswell (i7-4790), Skylake (i5-6500) and Kaby Lake
(i7-8550U) processors.  This package provides cycle-level *simulated* CPUs
with the same cache geometries (Table 3), per-level latencies, timing noise,
an optional next-line prefetcher, sliced and adaptive L3 caches, CAT way
masking and a scrambled virtual-to-physical mapping.  The CacheQuery backend
drives these CPUs exactly as it would drive hardware: through loads,
``clflush`` and cycle measurements.
"""

from repro.hardware.profiles import (
    HASWELL_I7_4790,
    KABY_LAKE_I7_8550U,
    SKYLAKE_I5_6500,
    CPUProfile,
    CacheLevelSpec,
    cpu_profile,
    known_profiles,
)
from repro.hardware.timing import NoiseModel, TimingModel
from repro.hardware.prefetcher import NextLinePrefetcher
from repro.hardware.perfcounters import PerformanceCounters
from repro.hardware.cpu import SimulatedCPU

__all__ = [
    "HASWELL_I7_4790",
    "KABY_LAKE_I7_8550U",
    "SKYLAKE_I5_6500",
    "CPUProfile",
    "CacheLevelSpec",
    "cpu_profile",
    "known_profiles",
    "NoiseModel",
    "TimingModel",
    "NextLinePrefetcher",
    "PerformanceCounters",
    "SimulatedCPU",
]

"""Hardware prefetcher model.

Intel cores ship several prefetchers; the one that most disturbs per-set
experiments is the *adjacent line* / *streamer* prefetcher, which pulls
neighbouring lines into the cache when it detects sequential accesses.
CacheQuery disables prefetching during measurements (Section 4.3); the
simulated CPU therefore implements a simple next-line prefetcher so that
"forgetting" to disable it visibly corrupts experiments, and exposes the
enable/disable switch the backend flips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class NextLinePrefetcher:
    """Fetches line ``x + 1`` after two consecutive line accesses ``x-1, x``."""

    enabled: bool = True
    line_size: int = 64
    _last_line: Optional[int] = field(default=None, repr=False)
    issued: int = 0

    def observe(self, physical_address: int) -> Optional[int]:
        """Observe a demand load; return a prefetch address or ``None``.

        The prefetch is only triggered when the previous demand access
        touched the immediately preceding line, which keeps the model from
        flooding the hierarchy on random access patterns.
        """
        line = physical_address // self.line_size
        previous, self._last_line = self._last_line, line
        if not self.enabled:
            return None
        if previous is not None and line == previous + 1:
            self.issued += 1
            return (line + 1) * self.line_size
        return None

    def reset(self) -> None:
        """Forget the access history (e.g. after a context switch)."""
        self._last_line = None

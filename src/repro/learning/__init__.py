"""Active automata learning for Mealy machines.

This package is the library's substitute for LearnLib (Section 3.4): an
observation-table L* learner for Mealy machines (Angluin's algorithm in
Niese's Mealy formulation), Rivest–Schapire counterexample processing, and
W-/Wp-method conformance testing used to approximate equivalence queries
with the ``(|H| + k)``-completeness guarantee of Theorem 3.3.

All membership queries flow through the batched, trie-backed query engine
(:mod:`repro.learning.query_engine`): the observation table and the
conformance tester stage whole rounds of words, and the
:class:`~repro.learning.oracles.CachedMembershipOracle` dedupes,
prefix-subsumes and caches them in a response trie before anything reaches
the system under learning.

Both query sides additionally scale across processes
(:mod:`repro.learning.parallel`): with ``workers=N`` a shared
:class:`~repro.learning.parallel.WorkerPool` answers the observation
table's round batches *and* the
:class:`~repro.learning.equivalence.ConformanceEquivalenceOracle`'s
lazily streamed Wp-suite chunks (bounded in-flight window); workers
rebuild the system under test from a picklable oracle factory and answers
merge back through the shared trie in deterministic order, keeping learned
machines bit-identical to serial runs.
"""

from repro.learning.query_engine import (
    ResponseTrie,
    dedupe_and_subsume,
    output_query_batch,
    partition_batch,
    supports_batching,
    supports_resume,
)
from repro.learning.oracles import (
    CachedMembershipOracle,
    DictCachedMembershipOracle,
    FunctionOracle,
    MealyMachineOracle,
    MembershipOracle,
    QueryStatistics,
)
from repro.learning.observation_table import ObservationTable
from repro.learning.counterexample import (
    process_counterexample_prefixes,
    process_counterexample_rivest_schapire,
)
from repro.learning.wpmethod import (
    characterization_set,
    iter_w_method_suite,
    iter_wp_method_suite,
    state_cover,
    transition_cover,
    w_method_suite,
    wp_method_suite,
)
from repro.learning.parallel import (
    CacheInterfaceOracleFactory,
    FunctionOracleFactory,
    MealyMachineOracleFactory,
    OracleFactory,
    SimulatedPolicyOracleFactory,
    WorkerPool,
    oracle_factory_for_cache,
)
from repro.learning.equivalence import (
    ConformanceEquivalenceOracle,
    EquivalenceOracle,
    PerfectEquivalenceOracle,
    RandomWalkEquivalenceOracle,
)
from repro.learning.learner import (
    ActiveLearner,
    LEARNER_NAMES,
    LearningResult,
    MealyLearner,
    learn_mealy_machine,
    make_learner,
)
from repro.learning.kv import ClassificationTree, KVLearner
from repro.learning.ttt import TTTLearner, TTTTree

__all__ = [
    "ResponseTrie",
    "dedupe_and_subsume",
    "output_query_batch",
    "partition_batch",
    "supports_batching",
    "supports_resume",
    "CachedMembershipOracle",
    "DictCachedMembershipOracle",
    "FunctionOracle",
    "MealyMachineOracle",
    "MembershipOracle",
    "QueryStatistics",
    "ObservationTable",
    "process_counterexample_prefixes",
    "process_counterexample_rivest_schapire",
    "characterization_set",
    "iter_w_method_suite",
    "iter_wp_method_suite",
    "state_cover",
    "transition_cover",
    "w_method_suite",
    "wp_method_suite",
    "CacheInterfaceOracleFactory",
    "FunctionOracleFactory",
    "MealyMachineOracleFactory",
    "OracleFactory",
    "SimulatedPolicyOracleFactory",
    "WorkerPool",
    "oracle_factory_for_cache",
    "ConformanceEquivalenceOracle",
    "EquivalenceOracle",
    "PerfectEquivalenceOracle",
    "RandomWalkEquivalenceOracle",
    "ActiveLearner",
    "LEARNER_NAMES",
    "LearningResult",
    "MealyLearner",
    "learn_mealy_machine",
    "make_learner",
    "ClassificationTree",
    "KVLearner",
    "TTTLearner",
    "TTTTree",
]

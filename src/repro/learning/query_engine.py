"""The batched, trie-backed query engine of the learning hot path.

Membership queries dominate the cost of every experiment the paper reports
(Tables 2 and 4 count them precisely), so this module centralises the three
optimisations every consumer of the oracle protocol shares:

* :class:`ResponseTrie` — a prefix tree over input words storing one output
  symbol per node.  Lookup and insertion are O(|w|); storing an answer
  automatically stores the answer of every prefix (Mealy output queries are
  prefix-closed), and inserting an answer that disagrees with a previously
  stored prefix raises :class:`~repro.errors.NonDeterminismError`, the
  signal the paper uses to reject broken reset sequences (Section 7.1).

* :func:`dedupe_and_subsume` — batch pre-processing: duplicate words are
  collapsed and words that are proper prefixes of other words in the batch
  are *subsumed* (answered by slicing the longer word's answer), so a batch
  executes only its maximal words.

* :func:`output_query_batch` — the dispatch helper: oracles that implement
  the batched protocol (``output_query_batch``) receive the whole batch at
  once; plain single-query oracles are driven word by word.  This is what
  lets the observation table, the conformance tester and the Polca pipeline
  talk to any oracle without caring whether it batches natively.

The batched-oracle protocol
---------------------------

An oracle *may* implement any of the following extensions on top of the
mandatory ``output_query(word)``:

``output_query_batch(words)``
    Answer many words in one call.  Implementations are expected to dedupe
    and prefix-subsume before touching the system under learning.

``output_query_resume(prefix, suffix, prefix_outputs=None)``
    Answer ``prefix + suffix`` while only *executing* ``suffix``, resuming
    from the state reached by ``prefix`` (the oracle must have answered a
    word extending ``prefix`` before).  ``prefix_outputs`` is the caller's
    cached answer for ``prefix``: machine-backed oracles ignore it (they
    recompute their state directly), while measurement-backed oracles
    (Polca with ``resume=True``) rebuild their resume state from it without
    touching the system under learning.  Oracles advertise the capability
    with a truthy ``supports_resume`` attribute.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.alphabet import EVICT, Evict, Line
from repro.store import PrefixStore, register_symbol_codec

Input = Hashable
Output = Hashable
Word = Tuple[Input, ...]
OutputWord = Tuple[Output, ...]

#: Namespace key the learning trie uses when none is given explicitly.
DEFAULT_LEARNING_NAMESPACE = ("learning",)

# Teach the shared store codec to persist policy-input symbols, so a
# learning trie living in a path-backed PrefixStore survives across runs
# (the --cache-path flag of the experiment CLI).
register_symbol_codec("Ln", Line, lambda s: str(s.index), lambda t: Line(int(t)))
register_symbol_codec("Ev", Evict, lambda s: "", lambda t: EVICT)


class ResponseTrie:
    """A prefix tree mapping input words to output words.

    Since PR 5 this is a thin learning-flavoured view over a
    :class:`~repro.store.PrefixStore` namespace — the same substrate the
    CacheQuery frontend's ``QueryCache`` uses — so one store instance (and
    one on-disk file) can back both caching stacks.  ``store`` may equally
    be a directory-backed :class:`~repro.store.ShardedStore`, which places
    this trie's namespace in its own append-log shard (its own writer
    lock), so concurrent learning jobs over disjoint targets share one
    corpus without contending.  The semantics are unchanged: caching the
    answer of ``u·v`` caches the answer of every prefix of ``u·v`` in the
    same O(|u·v|) nodes, and inserting an answer that disagrees with a
    stored prefix raises :class:`~repro.errors.NonDeterminismError`.
    """

    def __init__(
        self,
        store: Optional[PrefixStore] = None,
        namespace: Sequence[Hashable] = DEFAULT_LEARNING_NAMESPACE,
    ) -> None:
        # Any object with the PrefixStore namespace surface works here —
        # in particular a ShardedStore (see the class docstring).
        self.store = store if store is not None else PrefixStore()
        self._namespace = self.store.namespace(namespace)

    def __len__(self) -> int:
        return self._namespace.node_count

    def lookup(self, word: Sequence[Input]) -> Optional[OutputWord]:
        """Return the cached output word for ``word``, or ``None``."""
        if not word:
            return ()
        return self._namespace.lookup(word)

    def longest_cached_prefix(self, word: Sequence[Input]) -> Tuple[int, OutputWord]:
        """Return ``(k, outputs)`` for the longest cached prefix ``word[:k]``."""
        return self._namespace.lookup_prefix(word)

    def insert(self, word: Sequence[Input], outputs: Sequence[Output]) -> None:
        """Store ``outputs`` for ``word`` (and thereby for all its prefixes).

        Raises :class:`~repro.errors.NonDeterminismError` when a stored
        prefix disagrees with the new observation — the system under
        learning answered the same input prefix differently across runs.
        """
        word = tuple(word)
        outputs = tuple(outputs)
        if len(word) != len(outputs):
            raise ValueError(
                f"word of length {len(word)} needs exactly {len(word)} outputs, "
                f"got {len(outputs)}"
            )
        self._namespace.record(word, outputs, terminal=False)

    def clear(self) -> None:
        """Drop every cached response."""
        self._namespace.clear()


def dedupe_and_subsume(words: Sequence[Sequence[Input]]) -> List[Word]:
    """Return the *maximal* words of a batch, deduplicated, in first-seen order.

    A word is dropped when it is a duplicate or a proper prefix of another
    word in the batch: its answer is a slice of the longer word's answer, so
    executing the maximal words answers the whole batch.  The empty word is
    always dropped (its answer is the empty output word).
    """
    unique: List[Word] = []
    seen = set()
    for word in words:
        word = tuple(word)
        if word and word not in seen:
            seen.add(word)
            unique.append(word)
    if len(unique) <= 1:
        return unique
    # Map symbols to integer ids so words become comparable key lists
    # (symbols themselves need not be orderable), then sort: in
    # lexicographic order every proper prefix sits immediately before one
    # of its extensions, so a single next-neighbour check per word replaces
    # materializing (and hashing) every prefix of every word — the
    # difference between O(total symbols) and O(total symbols * length) on
    # the deep batches of the tabulated kernels.
    symbol_ids: dict = {}
    keys: List[List[int]] = []
    for word in unique:
        key: List[int] = []
        for symbol in word:
            code = symbol_ids.get(symbol)
            if code is None:
                code = symbol_ids[symbol] = len(symbol_ids)
            key.append(code)
        keys.append(key)
    order = sorted(range(len(unique)), key=keys.__getitem__)
    dropped = set()
    for here, there in zip(order, order[1:]):
        key = keys[here]
        longer = keys[there]
        if len(key) < len(longer) and longer[: len(key)] == key:
            dropped.add(here)
    return [word for index, word in enumerate(unique) if index not in dropped]


def partition_batch(words: Sequence[Word], lookup):
    """Partition a batch by what a cache can already answer.

    ``lookup`` is a pure peek (``word -> outputs or None``).  Returns
    ``(already_cached, cached, missing)``: ``already_cached`` counts the
    batch's words (duplicates included) fully answered by the cache as it
    stands *before* anything executes — the cache-hit count; ``cached`` is
    the ``(word, outputs)`` pairs among the deduped, prefix-subsumed maximal
    words the cache serves; ``missing`` the maximal words it cannot.  The
    serial engine (:class:`~repro.learning.oracles.CachedMembershipOracle`)
    and the parallel fill (:meth:`~repro.learning.parallel.WorkerPool.\
answer_batch`) both partition through here, so their hit/subsumption
    accounting can never drift apart.
    """
    already_cached = sum(1 for word in words if lookup(word) is not None)
    cached: List[Tuple[Word, OutputWord]] = []
    missing: List[Word] = []
    for word in dedupe_and_subsume(words):
        outputs = lookup(word)
        if outputs is not None:
            cached.append((word, outputs))
        else:
            missing.append(word)
    return already_cached, cached, missing


def supports_batching(oracle) -> bool:
    """True when ``oracle`` implements the batched-oracle protocol."""
    return callable(getattr(oracle, "output_query_batch", None))


def supports_resume(oracle) -> bool:
    """True when ``oracle`` can resume execution from a previously run prefix."""
    return bool(getattr(oracle, "supports_resume", False)) and callable(
        getattr(oracle, "output_query_resume", None)
    )


def output_query_batch(oracle, words: Sequence[Sequence[Input]]) -> List[OutputWord]:
    """Answer ``words`` through ``oracle``, batching when it supports it.

    The result has exactly one output word per input word, in input order
    (duplicates and prefixes included) — batching is transparent to callers.
    """
    words = [tuple(word) for word in words]
    if supports_batching(oracle):
        return [tuple(outputs) for outputs in oracle.output_query_batch(words)]
    return batch_via_single_queries(oracle, words)


def batch_via_single_queries(oracle, words: Sequence[Word]) -> List[OutputWord]:
    """Answer a batch through ``oracle.output_query``, executing only its
    maximal words and serving duplicates/prefixes by slicing.

    This is both the fallback for oracles without a native batch entry
    point and the shared implementation behind the simple batching oracles
    (:class:`~repro.learning.oracles.FunctionOracle`,
    :class:`~repro.learning.oracles.MealyMachineOracle`, Polca).
    """
    answers = ResponseTrie()
    for word in dedupe_and_subsume(words):
        answers.insert(word, oracle.output_query(word))
    return serve_from_trie(words, answers)


def serve_from_trie(words: Sequence[Word], answers: ResponseTrie) -> List[OutputWord]:
    """Answer every word of a batch from a trie holding its maximal answers."""
    results: List[OutputWord] = []
    for word in words:
        outputs = answers.lookup(word)
        if outputs is None:  # pragma: no cover - guarded by dedupe_and_subsume
            raise KeyError(f"word {word!r} was not answered by the batch")
        results.append(outputs)
    return results

"""The observation table of L* for Mealy machines.

The table is indexed by a prefix-closed set of access words ``S`` (rows),
their one-symbol extensions ``S·Σ`` (the "long" rows), and a set of
distinguishing suffixes ``E`` (columns, initialised to the single-symbol
suffixes so outputs are observable immediately).  A cell ``T[u][e]`` holds
the outputs the system produces for the suffix ``e`` after the access word
``u`` — i.e. the last ``|e|`` symbols of the answer to the output query
``u · e``.

Two rows with equal content are assumed to reach the same state of the
system; the table is *closed* when every long row equals some short row, and
*consistent* when equal short rows stay equal under every one-symbol
extension.  A closed and consistent table induces a hypothesis Mealy machine
(:meth:`ObservationTable.hypothesis`).

Suffix-closedness of ``E``
--------------------------

The classic minimality argument — a closed, consistent table induces a
hypothesis whose behaviour from state ``row(u)`` on any suffix ``e ∈ E``
equals the observed cell ``T[u][e]``, so distinct rows are inequivalent
states — holds only when ``E`` is *suffix-closed* (the inductive step peels
one symbol off ``e`` and needs the tail to be a column too).  The
single-symbol initial columns are trivially closed and the inconsistency
repair prepends a symbol to an existing column, but Rivest–Schapire
counterexample processing adds one *arbitrary* distinguishing suffix; a
lone suffix whose tails are missing silently broke the argument and
produced hypotheses with equivalent states on deep BRRIP runs (the
non-minimal-hypothesis ROADMAP item).  :meth:`ObservationTable.add_suffix`
therefore restores the invariant by inserting every missing tail of a new
suffix, and :meth:`ObservationTable.hypothesis` guards it with an
assertion.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.errors import LearningError
from repro.learning.oracles import MembershipOracle
from repro.learning.query_engine import output_query_batch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.learning.parallel import WorkerPool

Input = Hashable
Output = Hashable
Word = Tuple[Input, ...]

EMPTY: Word = ()


class ObservationTable:
    """An L* observation table over a fixed input alphabet.

    Cell queries go through the batched query engine: :meth:`fill` collects
    every missing ``(prefix, suffix)`` cell and issues **one** batch per
    stabilisation round, letting the oracle dedupe and prefix-subsume before
    a single word reaches the system under learning.  Row contents are
    memoised per prefix and invalidated when the suffix set changes.

    With a parallel :class:`~repro.learning.parallel.WorkerPool` (``pool=``,
    more than one worker), each round's deduped batch is split into
    ``chunk_size`` chunks answered by worker processes and merged back in
    chunk-index order — the membership side of learning runs on the same
    pool as conformance testing, and the filled cells are bit-identical to
    a serial fill.
    """

    def __init__(
        self,
        alphabet: Sequence[Input],
        oracle: MembershipOracle,
        *,
        pool: Optional["WorkerPool"] = None,
        chunk_size: int = 64,
    ) -> None:
        if not alphabet:
            raise LearningError("the input alphabet must not be empty")
        if chunk_size < 1:
            raise LearningError(f"chunk_size must be >= 1, got {chunk_size}")
        self.alphabet: Tuple[Input, ...] = tuple(alphabet)
        self.oracle = oracle
        self.pool = pool
        self.chunk_size = chunk_size
        # Short prefixes (access words); prefix-closed, starts with epsilon.
        self.short_prefixes: List[Word] = [EMPTY]
        # Distinguishing suffixes; starts with every single input symbol so
        # the hypothesis outputs are defined from the first round.
        self.suffixes: List[Word] = [(symbol,) for symbol in self.alphabet]
        # Cell storage: (prefix, suffix) -> outputs of the suffix part.
        self._cells: Dict[Tuple[Word, Word], Tuple[Output, ...]] = {}
        # Memoised row contents, keyed by prefix; valid for the current
        # suffix list only (add_suffix invalidates).
        self._row_cache: Dict[Word, Tuple[Tuple[Output, ...], ...]] = {}
        self.fill()

    # ------------------------------------------------------------------ cells

    def _query_cell(self, prefix: Word, suffix: Word) -> Tuple[Output, ...]:
        key = (prefix, suffix)
        if key not in self._cells:
            outputs = self.oracle.output_query(prefix + suffix)
            self._cells[key] = tuple(outputs[len(prefix):])
        return self._cells[key]

    def row(self, prefix: Word) -> Tuple[Tuple[Output, ...], ...]:
        """Return the (memoised) row contents of ``prefix`` over the current suffixes."""
        row = self._row_cache.get(prefix)
        if row is None:
            row = tuple(self._query_cell(prefix, suffix) for suffix in self.suffixes)
            self._row_cache[prefix] = row
        return row

    def missing_cells(self) -> List[Tuple[Word, Word]]:
        """Return every (prefix, suffix) cell that has not been queried yet."""
        return [
            (prefix, suffix)
            for prefix in self.all_prefixes()
            for suffix in self.suffixes
            if (prefix, suffix) not in self._cells
        ]

    def fill(self) -> None:
        """Ensure every (short and long) row has a value for every suffix.

        All missing cells are collected and answered by a single batched
        query, so the oracle sees the whole round at once and can dedupe,
        prefix-subsume and (for caches) reuse earlier answers.  With a
        parallel pool the batch fans out over worker processes instead
        (deterministic chunk-index-order merge keeps the cells identical).
        """
        missing = self.missing_cells()
        if not missing:
            return
        words = [prefix + suffix for prefix, suffix in missing]
        if self.pool is not None and self.pool.parallel:
            answers = self.pool.answer_batch(
                self.oracle, words, chunk_size=self.chunk_size
            )
        else:
            answers = output_query_batch(self.oracle, words)
        for (prefix, suffix), outputs in zip(missing, answers):
            self._cells[(prefix, suffix)] = tuple(outputs[len(prefix):])

    def all_prefixes(self) -> List[Word]:
        """Return short prefixes followed by their one-symbol extensions."""
        prefixes = list(self.short_prefixes)
        short = set(self.short_prefixes)
        for prefix in self.short_prefixes:
            for symbol in self.alphabet:
                extended = prefix + (symbol,)
                if extended not in short:
                    prefixes.append(extended)
        return prefixes

    # ------------------------------------------------------- closed/consistent

    def find_unclosed(self) -> Optional[Word]:
        """Return a long prefix whose row matches no short row, or ``None``."""
        self.fill()
        short_rows = {self.row(prefix) for prefix in self.short_prefixes}
        for prefix in self.short_prefixes:
            for symbol in self.alphabet:
                extended = prefix + (symbol,)
                if self.row(extended) not in short_rows:
                    return extended
        return None

    def find_inconsistency(self) -> Optional[Word]:
        """Return a new suffix witnessing an inconsistency, or ``None``.

        An inconsistency is a pair of short prefixes with equal rows whose
        one-symbol extensions differ for some suffix; the returned suffix is
        the extension symbol prepended to the distinguishing suffix.
        """
        self.fill()
        by_row: Dict[Tuple, List[Word]] = {}
        for prefix in self.short_prefixes:
            by_row.setdefault(self.row(prefix), []).append(prefix)
        for prefixes in by_row.values():
            if len(prefixes) < 2:
                continue
            base = prefixes[0]
            for other in prefixes[1:]:
                for symbol in self.alphabet:
                    for suffix in self.suffixes:
                        left = self._query_cell(base + (symbol,), suffix)
                        right = self._query_cell(other + (symbol,), suffix)
                        if left != right:
                            return (symbol,) + suffix
        return None

    # -------------------------------------------------------------- mutation

    def add_short_prefix(self, prefix: Word) -> bool:
        """Add ``prefix`` (and, implicitly, its extensions) as a short row."""
        prefix = tuple(prefix)
        if prefix in self.short_prefixes:
            return False
        self.short_prefixes.append(prefix)
        self.fill()
        return True

    def add_suffix(self, suffix: Word) -> bool:
        """Add a distinguishing suffix (column), keeping ``E`` suffix-closed.

        Every missing tail of ``suffix`` is added too (shortest first):
        without them the correspondence between table rows and hypothesis
        states breaks and a "consistent" table can emit hypotheses with
        equivalent states.  Returns True when ``suffix`` itself was new —
        the signal Rivest–Schapire processing uses to detect that its
        distinguishing suffix brought no new column.
        """
        suffix = tuple(suffix)
        if not suffix:
            raise LearningError("the empty suffix carries no information for Mealy machines")
        added_full = False
        added_any = False
        for start in range(len(suffix) - 1, -1, -1):
            tail = suffix[start:]
            if tail in self.suffixes:
                continue
            self.suffixes.append(tail)
            added_any = True
            if tail == suffix:
                added_full = True
        if added_any:
            # Row contents gained columns: every memoised row is stale.
            self._row_cache.clear()
            self.fill()
        return added_full

    def _assert_suffix_closed(self) -> None:
        """Debug guard: every tail of every column must itself be a column."""
        present = frozenset(self.suffixes)
        for suffix in self.suffixes:
            for start in range(1, len(suffix)):
                assert suffix[start:] in present, (
                    f"suffix set lost closure: {suffix[start:]!r} (tail of "
                    f"{suffix!r}) is not a column — hypotheses may be non-minimal"
                )

    def make_closed_and_consistent(self, *, max_rounds: int = 100_000) -> None:
        """Repeatedly repair closedness and consistency until both hold."""
        for _ in range(max_rounds):
            unclosed = self.find_unclosed()
            if unclosed is not None:
                self.add_short_prefix(unclosed)
                continue
            new_suffix = self.find_inconsistency()
            if new_suffix is not None:
                self.add_suffix(new_suffix)
                continue
            return
        raise LearningError("observation table failed to stabilise")  # pragma: no cover

    # ------------------------------------------------------------- hypothesis

    def hypothesis(self) -> MealyMachine:
        """Build the hypothesis Mealy machine from a closed, consistent table.

        With a suffix-closed column set (maintained by :meth:`add_suffix`)
        the hypothesis is minimal: distinct rows differ on some column
        ``e``, and the machine's behaviour from the corresponding states on
        ``e`` reproduces the differing cells.
        """
        if __debug__:
            self._assert_suffix_closed()
        row_to_state: Dict[Tuple, int] = {}
        state_access: List[Word] = []
        for prefix in self.short_prefixes:
            row = self.row(prefix)
            if row not in row_to_state:
                row_to_state[row] = len(state_access)
                state_access.append(prefix)

        states = list(range(len(state_access)))
        transitions: Dict[Tuple[int, Input], int] = {}
        outputs: Dict[Tuple[int, Input], Output] = {}
        suffix_index = {suffix: position for position, suffix in enumerate(self.suffixes)}

        for state, access in enumerate(state_access):
            for symbol in self.alphabet:
                extended = access + (symbol,)
                target_row = self.row(extended)
                if target_row not in row_to_state:
                    raise LearningError(
                        "hypothesis construction on a non-closed table"
                    )  # pragma: no cover - guarded by make_closed_and_consistent
                transitions[(state, symbol)] = row_to_state[target_row]
                outputs[(state, symbol)] = self._query_cell(access, (symbol,))[0]
                # The single-symbol suffix is guaranteed to exist because the
                # suffix set is initialised with the full alphabet.
                assert (symbol,) in suffix_index
        initial_state = row_to_state[self.row(EMPTY)]
        return MealyMachine(states, initial_state, list(self.alphabet), transitions, outputs)

    # ------------------------------------------------------------- inspection

    @property
    def num_short_rows(self) -> int:
        """Number of access words (short rows)."""
        return len(self.short_prefixes)

    @property
    def num_suffixes(self) -> int:
        """Number of distinguishing suffixes (columns)."""
        return len(self.suffixes)

    def to_text(self) -> str:
        """Render the table for debugging and documentation."""
        lines = []
        header = "prefix".ljust(24) + " | " + " | ".join(str(s) for s in self.suffixes)
        lines.append(header)
        lines.append("-" * len(header))
        for prefix in self.all_prefixes():
            marker = "*" if prefix in self.short_prefixes else " "
            cells = " | ".join(str(self._query_cell(prefix, s)) for s in self.suffixes)
            lines.append(f"{marker}{str(prefix):23s} | {cells}")
        return "\n".join(lines)

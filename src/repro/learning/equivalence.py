"""Equivalence oracles: finding counterexamples to a hypothesis.

Three implementations are provided:

* :class:`ConformanceEquivalenceOracle` — the paper's approach (Section 3.3):
  generate a Wp-/W-method test suite of configurable depth ``k`` for the
  hypothesis and compare the system's answers against the hypothesis' own
  predictions.  Yields the ``(|H| + k)``-completeness guarantee of
  Theorem 3.3 / Corollary 3.4.
* :class:`RandomWalkEquivalenceOracle` — random word testing, mentioned in
  Section 6 as an alternative heuristic for deeper counterexample search.
* :class:`PerfectEquivalenceOracle` — compares against a known reference
  machine; used in tests and when learning from white-box simulators to
  measure learner performance independently of conformance-testing cost.
"""

from __future__ import annotations

import multiprocessing
import random
from concurrent.futures import Executor, Future, ProcessPoolExecutor
from typing import Dict, Hashable, List, Optional, Protocol, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.errors import LearningError, OutputLengthMismatchError
from repro.learning.oracles import MembershipOracle, QueryStatistics
from repro.learning.parallel import (
    OracleFactory,
    answer_words_in_worker,
    initialize_worker,
)
from repro.learning.query_engine import output_query_batch
from repro.learning.wpmethod import w_method_suite, wp_method_suite

Input = Hashable
Word = Tuple[Input, ...]
OutputWord = Tuple[Hashable, ...]


class EquivalenceOracle(Protocol):
    """Protocol for equivalence oracles."""

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        """Return an input word on which the SUL and ``hypothesis`` disagree, or ``None``."""
        ...  # pragma: no cover - protocol


class ConformanceEquivalenceOracle:
    """Wp-/W-method conformance testing against a membership oracle.

    The suite is executed in batches of ``batch_size`` words, each answered
    through the batched-oracle protocol so duplicate and prefix-subsumed
    test words never reach the system under learning twice.  For
    simulator-backed oracles whose ``output_query`` is safe to call
    concurrently (e.g. :class:`~repro.learning.oracles.MealyMachineOracle`),
    an optional :class:`concurrent.futures.Executor` fans a batch out over
    workers; stateful oracles (Polca over one cache set) must keep the
    default serial execution.

    When ``max_tests`` truncates the suite, the dropped words are counted in
    ``statistics.tests_skipped``: a truncated suite voids the
    ``(|H| + k)``-completeness guarantee of Corollary 3.4, and the learner
    surfaces the counter so reports can flag the caveat instead of silently
    claiming completeness.

    Process-parallel execution
    --------------------------

    With ``workers=N`` (N > 1) and a picklable ``oracle_factory`` (see
    :mod:`repro.learning.parallel`), suite chunks are shipped to a
    :class:`~concurrent.futures.ProcessPoolExecutor` whose workers each
    rebuild a fresh system under test from the factory.  Chunks are
    submitted eagerly but consumed *in suite order*, so the returned
    counterexample is always the first mismatching word — identical to a
    serial run, which keeps learned machines bit-identical across worker
    counts.  Worker answers are merged back into the shared
    :class:`~repro.learning.oracles.CachedMembershipOracle` trie when the
    oracle is one, so they feed the learner's cache and still trip
    non-determinism detection; words the shared trie already knows are
    never shipped.  Per-worker executed-query counts are accumulated in
    ``worker_query_counts`` / ``worker_symbol_counts`` (keyed by worker
    PID).  Call :meth:`close` (or use the oracle as a context manager) to
    shut the pool down.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        *,
        depth: int = 1,
        method: str = "wp",
        max_tests: Optional[int] = None,
        batch_size: int = 64,
        executor: Optional[Executor] = None,
        workers: Optional[int] = None,
        oracle_factory: Optional[OracleFactory] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if method not in ("w", "wp"):
            raise ValueError(f"method must be 'w' or 'wp', got {method!r}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers is not None and workers > 1:
            if oracle_factory is None:
                raise LearningError(
                    "workers > 1 needs an oracle_factory so pool workers can "
                    "rebuild the system under test (see repro.learning.parallel)"
                )
            if executor is not None:
                raise LearningError(
                    "pass either a thread executor or workers/oracle_factory, not both"
                )
        self.oracle = oracle
        self.depth = depth
        self.method = method
        self.max_tests = max_tests
        self.batch_size = batch_size
        self.executor = executor
        self.workers = workers
        self.oracle_factory = oracle_factory
        self.start_method = start_method
        self.statistics = QueryStatistics()
        #: Executed queries per pool worker, keyed by worker PID.
        self.worker_query_counts: Dict[int, int] = {}
        #: Executed symbols per pool worker, keyed by worker PID.
        self.worker_symbol_counts: Dict[int, int] = {}
        self._pool: Optional[ProcessPoolExecutor] = None

    # -------------------------------------------------------- pool lifecycle

    @property
    def _parallel(self) -> bool:
        return self.workers is not None and self.workers > 1

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method is not None
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=initialize_worker,
                initargs=(self.oracle_factory,),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; a no-op for serial oracles)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ConformanceEquivalenceOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- the suite

    def _suite(self, hypothesis: MealyMachine):
        generate = w_method_suite if self.method == "w" else wp_method_suite
        try:
            return generate(hypothesis, self.depth)
        except LearningError:
            # The W-set construction requires a minimal machine; observation
            # tables occasionally hand over hypotheses with equivalent rows
            # (seen with deep suites on BRRIP).  The minimized machine is
            # trace-equivalent, so its suite tests the same behaviours.
            return generate(hypothesis.minimize(), self.depth)

    def _answer_chunk(self, chunk: Sequence[Word]) -> List[Tuple]:
        if self.executor is not None:
            return [tuple(o) for o in self.executor.map(self.oracle.output_query, chunk)]
        return output_query_batch(self.oracle, chunk)

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        self.statistics.equivalence_queries += 1
        suite = self._suite(hypothesis)
        if self.max_tests is not None and len(suite) > self.max_tests:
            self.statistics.tests_skipped += len(suite) - self.max_tests
            suite = suite[: self.max_tests]
        if self._parallel:
            return self._find_counterexample_parallel(hypothesis, suite)
        for start in range(0, len(suite), self.batch_size):
            chunk = suite[start : start + self.batch_size]
            self.statistics.test_words += len(chunk)
            actuals = self._answer_chunk(chunk)
            for word, actual in zip(chunk, actuals):
                if actual != hypothesis.run(word):
                    return word
        return None

    # --------------------------------------------------------- parallel path

    def _find_counterexample_parallel(
        self, hypothesis: MealyMachine, suite: Sequence[Word]
    ) -> Optional[Word]:
        pool = self._ensure_pool()
        cached_answer = getattr(self.oracle, "cached_answer", None)
        record_external = getattr(self.oracle, "record_external", None)
        # Ship each chunk's un-cached, not-yet-assigned words; duplicates
        # across chunks ride with the first chunk that contains them.
        chunks: List[Tuple[List[Word], List[Word], Optional[Future]]] = []
        assigned: set = set()
        for start in range(0, len(suite), self.batch_size):
            chunk = [tuple(word) for word in suite[start : start + self.batch_size]]
            missing: List[Word] = []
            for word in chunk:
                if word in assigned:
                    continue
                if cached_answer is not None and cached_answer(word) is not None:
                    continue
                assigned.add(word)
                missing.append(word)
            future = pool.submit(answer_words_in_worker, missing) if missing else None
            chunks.append((chunk, missing, future))
        answers: Dict[Word, OutputWord] = {}
        for index, (chunk, missing, future) in enumerate(chunks):
            self.statistics.test_words += len(chunk)
            if future is not None:
                worker_id, worker_answers, queries, symbols = future.result()
                self.statistics.parallel_chunks += 1
                self.statistics.parallel_words += len(missing)
                self.worker_query_counts[worker_id] = (
                    self.worker_query_counts.get(worker_id, 0) + queries
                )
                self.worker_symbol_counts[worker_id] = (
                    self.worker_symbol_counts.get(worker_id, 0) + symbols
                )
                for word, outputs in zip(missing, worker_answers):
                    outputs = tuple(outputs)
                    if len(outputs) != len(word):
                        raise OutputLengthMismatchError(word, outputs)
                    if record_external is not None:
                        # Feed the shared trie; raises NonDeterminismError
                        # when a worker disagrees with a cached prefix.
                        record_external(word, outputs)
                    answers[word] = outputs
            for word in chunk:
                actual = answers.get(word)
                if actual is None:
                    # Cached before this call (or merged via the trie by an
                    # earlier chunk): a guaranteed hit on the shared cache.
                    actual = tuple(self.oracle.output_query(word))
                if actual != hypothesis.run(word):
                    for _, _, later in chunks[index + 1 :]:
                        if later is not None:
                            later.cancel()
                    return word
        return None


class RandomWalkEquivalenceOracle:
    """Random-word conformance testing (a cheaper, incomplete alternative).

    Test words are generated in batches of ``batch_size`` and answered
    through :func:`~repro.learning.query_engine.output_query_batch`, so a
    trie-backed oracle dedupes and prefix-subsumes random words exactly
    like Wp-suite words instead of receiving them one ``output_query`` at
    a time.  Within a batch the first mismatching word (in generation
    order) is returned, so for a given seed the *first*
    ``find_counterexample`` call returns the same counterexample at every
    batch size.  Later calls may diverge across batch sizes: a round that
    finds a counterexample mid-batch still consumed the whole batch from
    the RNG, while smaller batches consume fewer words.

    The tradeoff of batching: a whole batch is executed before any of it
    is compared, so a round that finds a counterexample runs (and counts
    in ``statistics.test_words``) up to ``batch_size - 1`` words the old
    word-by-word loop would have skipped.  Against cheap simulator
    oracles the trie sharing wins; for expensive hardware-backed oracles
    where every execution is seconds, pick a small ``batch_size`` (1
    restores the seed's stop-at-first-mismatch cost exactly).
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        alphabet: Sequence[Input],
        *,
        num_words: int = 1000,
        min_length: int = 3,
        max_length: int = 30,
        seed: int = 0,
        batch_size: int = 64,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.oracle = oracle
        self.alphabet = tuple(alphabet)
        self.num_words = num_words
        self.min_length = min_length
        self.max_length = max_length
        self.batch_size = batch_size
        self._random = random.Random(seed)
        self.statistics = QueryStatistics()

    def _next_word(self) -> Word:
        length = self._random.randint(self.min_length, self.max_length)
        return tuple(self._random.choice(self.alphabet) for _ in range(length))

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        self.statistics.equivalence_queries += 1
        remaining = self.num_words
        while remaining > 0:
            batch = [self._next_word() for _ in range(min(self.batch_size, remaining))]
            remaining -= len(batch)
            self.statistics.test_words += len(batch)
            actuals = output_query_batch(self.oracle, batch)
            for word, actual in zip(batch, actuals):
                if tuple(actual) != hypothesis.run(word):
                    return word
        return None


class PerfectEquivalenceOracle:
    """Exact equivalence against a known reference machine (white-box testing)."""

    def __init__(self, reference: MealyMachine) -> None:
        self.reference = reference
        self.statistics = QueryStatistics()

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        self.statistics.equivalence_queries += 1
        return self.reference.find_counterexample(hypothesis)

"""Equivalence oracles: finding counterexamples to a hypothesis.

Three implementations are provided:

* :class:`ConformanceEquivalenceOracle` — the paper's approach (Section 3.3):
  generate a Wp-/W-method test suite of configurable depth ``k`` for the
  hypothesis and compare the system's answers against the hypothesis' own
  predictions.  Yields the ``(|H| + k)``-completeness guarantee of
  Theorem 3.3 / Corollary 3.4.
* :class:`RandomWalkEquivalenceOracle` — random word testing, mentioned in
  Section 6 as an alternative heuristic for deeper counterexample search.
* :class:`PerfectEquivalenceOracle` — compares against a known reference
  machine; used in tests and when learning from white-box simulators to
  measure learner performance independently of conformance-testing cost.
"""

from __future__ import annotations

import random
import warnings
from collections import deque
from concurrent.futures import Executor, Future
from itertools import islice
from typing import (
    Deque,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.core.mealy import MealyMachine
from repro.errors import LearningError
from repro.learning.oracles import MembershipOracle, QueryStatistics
from repro.learning.parallel import OracleFactory, WorkerPool
from repro.learning.query_engine import dedupe_and_subsume, output_query_batch
from repro.learning.wpmethod import iter_w_method_suite, iter_wp_method_suite

Input = Hashable
Word = Tuple[Input, ...]
OutputWord = Tuple[Hashable, ...]


def _chunks(words: Iterator[Word], size: int) -> Iterator[List[Word]]:
    """Yield successive ``size``-word lists from a (lazy) word stream."""
    while True:
        chunk = list(islice(words, size))
        if not chunk:
            return
        yield chunk


class EquivalenceOracle(Protocol):
    """Protocol for equivalence oracles."""

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        """Return an input word on which the SUL and ``hypothesis`` disagree, or ``None``."""
        ...  # pragma: no cover - protocol


class ConformanceEquivalenceOracle:
    """Wp-/W-method conformance testing against a membership oracle.

    The suite is **streamed**: :func:`~repro.learning.wpmethod.\
iter_wp_method_suite` generates test words lazily and the oracle consumes
    them in batches of ``batch_size`` words, so the parent process never
    materialises the full suite (at depth ≥ 2 PLRU-8's suite is ~350k
    words) before the first chunk executes.  Each batch is answered
    through the batched-oracle protocol so duplicate and prefix-subsumed
    test words never reach the system under learning twice.  For
    simulator-backed oracles whose ``output_query`` is safe to call
    concurrently (e.g. :class:`~repro.learning.oracles.MealyMachineOracle`),
    an optional :class:`concurrent.futures.Executor` fans a batch out over
    threads; stateful oracles (Polca over one cache set) must keep the
    default serial execution.

    When ``max_tests`` truncates the suite, the dropped words are counted in
    ``statistics.tests_skipped``: a truncated suite voids the
    ``(|H| + k)``-completeness guarantee of Corollary 3.4, and the learner
    surfaces the counter so reports can flag the caveat instead of silently
    claiming completeness.

    Process-parallel execution
    --------------------------

    With ``workers=N`` (N > 1) and a picklable ``oracle_factory`` (see
    :mod:`repro.learning.parallel`) — or a shared
    :class:`~repro.learning.parallel.WorkerPool` via ``pool=`` — suite
    chunks are shipped to a process pool whose workers each rebuild a fresh
    system under test from the factory.  At most ``max_inflight`` chunks
    are in flight at once (a bounded window over the lazy suite: the
    parent holds no more than ``max_inflight × batch_size`` queued words,
    tracked in :attr:`peak_inflight_words`), and chunks are consumed *in
    suite order*, so the returned counterexample is always the first
    mismatching word — identical to a serial run, which keeps learned
    machines bit-identical across worker counts.  Worker answers are
    merged back into the shared
    :class:`~repro.learning.oracles.CachedMembershipOracle` trie when the
    oracle is one, so they feed the learner's cache and still trip
    non-determinism detection; words the shared trie already knows are
    never shipped.  Per-worker executed-query counts accumulate on the
    pool's ``worker_query_counts`` / ``worker_symbol_counts`` (keyed by
    worker PID) — shared with the observation-table fill when the pool is.
    Call :meth:`close` (or use the oracle as a context manager) to shut an
    *owned* pool down; a pool passed in via ``pool=`` belongs to the
    caller and is left running.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        *,
        depth: int = 1,
        method: str = "wp",
        max_tests: Optional[int] = None,
        batch_size: int = 64,
        executor: Optional[Executor] = None,
        workers: Optional[int] = None,
        oracle_factory: Optional[OracleFactory] = None,
        start_method: Optional[str] = None,
        pool: Optional[WorkerPool] = None,
        max_inflight: int = 4,
    ) -> None:
        if method not in ("w", "wp"):
            raise ValueError(f"method must be 'w' or 'wp', got {method!r}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pool is not None:
            if workers is not None or oracle_factory is not None:
                raise LearningError(
                    "pass either a shared pool or workers/oracle_factory, not both"
                )
            if executor is not None:
                raise LearningError(
                    "pass either a thread executor or a worker pool, not both"
                )
            workers = pool.workers
            oracle_factory = pool.oracle_factory
        elif workers is not None and workers > 1:
            if oracle_factory is None:
                raise LearningError(
                    "workers > 1 needs an oracle_factory so pool workers can "
                    "rebuild the system under test (see repro.learning.parallel)"
                )
            if executor is not None:
                raise LearningError(
                    "pass either a thread executor or workers/oracle_factory, not both"
                )
        self.oracle = oracle
        self.depth = depth
        self.method = method
        self.max_tests = max_tests
        self.batch_size = batch_size
        self.executor = executor
        self.workers = workers
        self.oracle_factory = oracle_factory
        self.start_method = start_method
        self.max_inflight = max_inflight
        self.statistics = QueryStatistics()
        #: Peak number of suite words queued in the parent at once (parallel
        #: path): bounded by ``max_inflight * batch_size`` by construction.
        self.peak_inflight_words = 0
        self._shared_pool = pool
        self._pool: Optional[WorkerPool] = None  # owned pool, created lazily

    # -------------------------------------------------------- pool lifecycle

    @property
    def _parallel(self) -> bool:
        if self._shared_pool is not None:
            return self._shared_pool.parallel
        return self.workers is not None and self.workers > 1

    def _active_pool(self) -> WorkerPool:
        if self._shared_pool is not None:
            return self._shared_pool
        if self._pool is None:
            self._pool = WorkerPool(
                self.oracle_factory, self.workers, start_method=self.start_method
            )
        return self._pool

    @property
    def worker_query_counts(self) -> Dict[int, int]:
        """Executed queries per pool worker (shared with the fill when the pool is)."""
        pool = self._shared_pool or self._pool
        return pool.worker_query_counts if pool is not None else {}

    @property
    def worker_symbol_counts(self) -> Dict[int, int]:
        """Executed symbols per pool worker (shared with the fill when the pool is)."""
        pool = self._shared_pool or self._pool
        return pool.worker_symbol_counts if pool is not None else {}

    def close(self) -> None:
        """Shut down an *owned* worker pool (idempotent; shared pools stay up).

        The pool object is kept so its per-worker accounting stays readable
        after the run; only its executor is torn down (and lazily recreated
        if the oracle is used again).
        """
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ConformanceEquivalenceOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- the suite

    def _suite(self, hypothesis: MealyMachine) -> Iterator[Word]:
        generate = iter_w_method_suite if self.method == "w" else iter_wp_method_suite
        try:
            return generate(hypothesis, self.depth)
        except LearningError:
            # The W-set construction requires a minimal machine.  Since the
            # observation table keeps its suffix set suffix-closed, its
            # hypotheses are minimal by construction and this fallback
            # should be unreachable from the learner — keep it as a guarded
            # safety net for hand-built hypotheses, but make it loud.
            warnings.warn(
                "conformance suite requested for a non-minimal hypothesis; "
                "falling back to the minimized machine (suffix-closed "
                "observation tables should never produce one)",
                RuntimeWarning,
                stacklevel=2,
            )
            return generate(hypothesis.minimize(), self.depth)

    def _truncated(self, suite: Iterator[Word]) -> Iterator[Word]:
        """Yield the first ``max_tests`` words; count the rest as skipped.

        Draining the generator to count the dropped words costs generation
        time but no executions — the exact ``tests_skipped`` accounting is
        what voids (or certifies) the Corollary 3.4 guarantee.
        """
        yielded = 0
        for word in suite:
            if yielded < self.max_tests:
                yielded += 1
                yield word
            else:
                self.statistics.tests_skipped += 1

    def _answer_chunk(self, chunk: Sequence[Word]) -> List[Tuple]:
        if self.executor is not None:
            return [tuple(o) for o in self.executor.map(self.oracle.output_query, chunk)]
        return output_query_batch(self.oracle, chunk)

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        self.statistics.equivalence_queries += 1
        suite: Iterator[Word] = iter(self._suite(hypothesis))
        if self.max_tests is not None:
            suite = self._truncated(suite)
        if self._parallel:
            return self._find_counterexample_parallel(hypothesis, suite)
        for chunk in _chunks(suite, self.batch_size):
            self.statistics.test_words += len(chunk)
            actuals = self._answer_chunk(chunk)
            for word, actual in zip(chunk, actuals):
                if actual != hypothesis.run(word):
                    # Finish the truncation accounting: the generator is
                    # abandoned mid-stream, but words beyond the cap were
                    # never going to run regardless of this counterexample.
                    if self.max_tests is not None:
                        for _ in suite:
                            pass
                    return word
        return None

    # --------------------------------------------------------- parallel path

    def _find_counterexample_parallel(
        self, hypothesis: MealyMachine, suite: Iterator[Word]
    ) -> Optional[Word]:
        cached_answer = getattr(self.oracle, "cached_answer", None)
        record_external = getattr(self.oracle, "record_external", None)
        if cached_answer is not None and record_external is not None:
            return self._parallel_with_shared_trie(hypothesis, suite)
        return self._parallel_without_trie(hypothesis, suite)

    def _drain_and_cancel(self, suite: Iterator[Word], pending) -> None:
        """Counterexample found: cancel queued chunks, finish truncation accounting."""
        for item in pending:
            future = item[2]  # (chunk, missing, future, ...) in both paths
            if future is not None:
                future.cancel()
        # Words beyond a max_tests cap were never going to run regardless of
        # this counterexample — count them exactly like a serial run.
        if self.max_tests is not None:
            for _ in suite:
                pass

    def _parallel_with_shared_trie(
        self, hypothesis: MealyMachine, suite: Iterator[Word]
    ) -> Optional[Word]:
        """The engine-backed parallel path, accounting-identical to serial.

        Each chunk is partitioned exactly like the serial engine partitions
        its batches — duplicates, already-cached words and intra-chunk
        prefix subsumption recorded through the same
        ``QueryStatistics.record_batch`` — so the cache-hit and
        subsumed-word columns cannot drift between ``--workers 0`` and
        ``--workers N``.  Words covered by a chunk still *in flight*
        (equal to, or a proper prefix of, a shipped word) are not shipped
        again: chunks are consumed in suite order, so by the time their
        own chunk is compared the covering answers have merged into the
        shared trie — exactly the words a serial run would have found
        cached.
        """
        pool = self._active_pool()
        cached_answer = self.oracle.cached_answer
        record_external = self.oracle.record_external
        # Worker executions are real queries against the system under
        # learning: fold them into the membership oracle's statistics so
        # query counts stay comparable across worker counts (a serial run
        # executes the same missing words through the same oracle).
        oracle_statistics = getattr(self.oracle, "statistics", None)
        # A bounded window of in-flight chunks over the lazy suite: chunks
        # are submitted as the generator produces them and consumed in
        # suite order, so the first mismatching word wins deterministically
        # while the parent queues at most max_inflight * batch_size words.
        pending: Deque[Tuple[List[Word], List[Word], Optional[Future], int]] = deque()
        # Reference-counted cover of every in-flight shipped word and its
        # proper prefixes — bounded by the in-flight window, released as
        # chunks merge into the trie.
        inflight_cover: Dict[Word, int] = {}
        inflight_words = 0
        exhausted = False

        def covered(word: Word) -> bool:
            return cached_answer(word) is not None or word in inflight_cover

        def submit_next() -> bool:
            """Pull one more chunk from the suite and ship its missing words."""
            nonlocal inflight_words
            chunk = [tuple(word) for word in islice(suite, self.batch_size)]
            if not chunk:
                return False
            already_covered = sum(1 for word in chunk if covered(word))
            missing = [
                word for word in dedupe_and_subsume(chunk) if not covered(word)
            ]
            future = pool.submit(missing) if missing else None
            for word in missing:
                for length in range(1, len(word) + 1):
                    prefix = word[:length]
                    inflight_cover[prefix] = inflight_cover.get(prefix, 0) + 1
            pending.append((chunk, missing, future, already_covered))
            inflight_words += len(chunk)
            self.peak_inflight_words = max(self.peak_inflight_words, inflight_words)
            return True

        while True:
            while not exhausted and len(pending) < self.max_inflight:
                if not submit_next():
                    exhausted = True
            if not pending:
                return None
            chunk, missing, future, already_covered = pending.popleft()
            inflight_words -= len(chunk)
            self.statistics.test_words += len(chunk)
            if oracle_statistics is not None:
                # The same accounting a serial engine batch records — done at
                # *consume* time, so chunks cancelled by a counterexample
                # (which a serial run never reaches) are never counted.
                oracle_statistics.record_batch(len(chunk), already_covered, len(missing))
            if future is not None:
                worker_answers = pool.collect(
                    future, missing, statistics=oracle_statistics
                )
                self.statistics.parallel_chunks += 1
                self.statistics.parallel_words += len(missing)
                for word, outputs in zip(missing, worker_answers):
                    # Feed the shared trie; raises NonDeterminismError when
                    # a worker disagrees with a cached prefix.
                    record_external(word, outputs)
            for word in missing:
                for length in range(1, len(word) + 1):
                    prefix = word[:length]
                    remaining = inflight_cover[prefix] - 1
                    if remaining:
                        inflight_cover[prefix] = remaining
                    else:
                        del inflight_cover[prefix]
            for word in chunk:
                actual = cached_answer(word)
                if actual is None:  # pragma: no cover - every word is covered
                    raise LearningError(
                        f"suite word {word!r} was neither cached nor answered "
                        "by its chunk"
                    )
                if actual != hypothesis.run(word):
                    self._drain_and_cancel(suite, pending)
                    return word

    def _parallel_without_trie(
        self, hypothesis: MealyMachine, suite: Iterator[Word]
    ) -> Optional[Word]:
        """Parallel path for plain oracles (no shared cache to merge into).

        Answers for worker-executed words ride in a parent-side dictionary:
        duplicates across chunks ride with the first chunk that contains
        them, so later chunks may need them again.
        """
        pool = self._active_pool()
        pending: Deque[Tuple[List[Word], List[Word], Optional[Future]]] = deque()
        assigned: set = set()
        inflight_words = 0
        answers: Dict[Word, OutputWord] = {}
        exhausted = False

        def submit_next() -> bool:
            nonlocal inflight_words
            chunk = [tuple(word) for word in islice(suite, self.batch_size)]
            if not chunk:
                return False
            missing: List[Word] = []
            for word in chunk:
                if word in assigned:
                    continue
                assigned.add(word)
                missing.append(word)
            future = pool.submit(missing) if missing else None
            pending.append((chunk, missing, future))
            inflight_words += len(chunk)
            self.peak_inflight_words = max(self.peak_inflight_words, inflight_words)
            return True

        while True:
            while not exhausted and len(pending) < self.max_inflight:
                if not submit_next():
                    exhausted = True
            if not pending:
                return None
            chunk, missing, future = pending.popleft()
            inflight_words -= len(chunk)
            self.statistics.test_words += len(chunk)
            if future is not None:
                worker_answers = pool.collect(future, missing)
                self.statistics.parallel_chunks += 1
                self.statistics.parallel_words += len(missing)
                for word, outputs in zip(missing, worker_answers):
                    answers[word] = outputs
            for word in chunk:
                actual = answers.get(word)
                if actual is None:
                    actual = tuple(self.oracle.output_query(word))
                if actual != hypothesis.run(word):
                    self._drain_and_cancel(suite, pending)
                    return word


class RandomWalkEquivalenceOracle:
    """Random-word conformance testing (a cheaper, incomplete alternative).

    Test words are generated in batches of ``batch_size`` and answered
    through :func:`~repro.learning.query_engine.output_query_batch`, so a
    trie-backed oracle dedupes and prefix-subsumes random words exactly
    like Wp-suite words instead of receiving them one ``output_query`` at
    a time.  Within a batch the first mismatching word (in generation
    order) is returned, so for a given seed the *first*
    ``find_counterexample`` call returns the same counterexample at every
    batch size.  Later calls may diverge across batch sizes: a round that
    finds a counterexample mid-batch still consumed the whole batch from
    the RNG, while smaller batches consume fewer words.

    The tradeoff of batching: a whole batch is executed before any of it
    is compared, so a round that finds a counterexample runs (and counts
    in ``statistics.test_words``) up to ``batch_size - 1`` words the old
    word-by-word loop would have skipped.  Against cheap simulator
    oracles the trie sharing wins; for expensive hardware-backed oracles
    where every execution is seconds, pick a small ``batch_size`` (1
    restores the seed's stop-at-first-mismatch cost exactly).
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        alphabet: Sequence[Input],
        *,
        num_words: int = 1000,
        min_length: int = 3,
        max_length: int = 30,
        seed: int = 0,
        batch_size: int = 64,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.oracle = oracle
        self.alphabet = tuple(alphabet)
        self.num_words = num_words
        self.min_length = min_length
        self.max_length = max_length
        self.batch_size = batch_size
        self._random = random.Random(seed)
        self.statistics = QueryStatistics()

    def _next_word(self) -> Word:
        length = self._random.randint(self.min_length, self.max_length)
        return tuple(self._random.choice(self.alphabet) for _ in range(length))

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        self.statistics.equivalence_queries += 1
        remaining = self.num_words
        while remaining > 0:
            batch = [self._next_word() for _ in range(min(self.batch_size, remaining))]
            remaining -= len(batch)
            self.statistics.test_words += len(batch)
            actuals = output_query_batch(self.oracle, batch)
            for word, actual in zip(batch, actuals):
                if tuple(actual) != hypothesis.run(word):
                    return word
        return None


class PerfectEquivalenceOracle:
    """Exact equivalence against a known reference machine (white-box testing)."""

    def __init__(self, reference: MealyMachine) -> None:
        self.reference = reference
        self.statistics = QueryStatistics()

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        self.statistics.equivalence_queries += 1
        return self.reference.find_counterexample(hypothesis)

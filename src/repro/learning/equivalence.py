"""Equivalence oracles: finding counterexamples to a hypothesis.

Three implementations are provided:

* :class:`ConformanceEquivalenceOracle` — the paper's approach (Section 3.3):
  generate a Wp-/W-method test suite of configurable depth ``k`` for the
  hypothesis and compare the system's answers against the hypothesis' own
  predictions.  Yields the ``(|H| + k)``-completeness guarantee of
  Theorem 3.3 / Corollary 3.4.
* :class:`RandomWalkEquivalenceOracle` — random word testing, mentioned in
  Section 6 as an alternative heuristic for deeper counterexample search.
* :class:`PerfectEquivalenceOracle` — compares against a known reference
  machine; used in tests and when learning from white-box simulators to
  measure learner performance independently of conformance-testing cost.
"""

from __future__ import annotations

import random
from concurrent.futures import Executor
from typing import Hashable, List, Optional, Protocol, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.learning.oracles import MembershipOracle, QueryStatistics
from repro.learning.query_engine import output_query_batch
from repro.learning.wpmethod import w_method_suite, wp_method_suite

Input = Hashable
Word = Tuple[Input, ...]


class EquivalenceOracle(Protocol):
    """Protocol for equivalence oracles."""

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        """Return an input word on which the SUL and ``hypothesis`` disagree, or ``None``."""
        ...  # pragma: no cover - protocol


class ConformanceEquivalenceOracle:
    """Wp-/W-method conformance testing against a membership oracle.

    The suite is executed in batches of ``batch_size`` words, each answered
    through the batched-oracle protocol so duplicate and prefix-subsumed
    test words never reach the system under learning twice.  For
    simulator-backed oracles whose ``output_query`` is safe to call
    concurrently (e.g. :class:`~repro.learning.oracles.MealyMachineOracle`),
    an optional :class:`concurrent.futures.Executor` fans a batch out over
    workers; stateful oracles (Polca over one cache set) must keep the
    default serial execution.

    When ``max_tests`` truncates the suite, the dropped words are counted in
    ``statistics.tests_skipped``: a truncated suite voids the
    ``(|H| + k)``-completeness guarantee of Corollary 3.4, and the learner
    surfaces the counter so reports can flag the caveat instead of silently
    claiming completeness.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        *,
        depth: int = 1,
        method: str = "wp",
        max_tests: Optional[int] = None,
        batch_size: int = 64,
        executor: Optional[Executor] = None,
    ) -> None:
        if method not in ("w", "wp"):
            raise ValueError(f"method must be 'w' or 'wp', got {method!r}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.oracle = oracle
        self.depth = depth
        self.method = method
        self.max_tests = max_tests
        self.batch_size = batch_size
        self.executor = executor
        self.statistics = QueryStatistics()

    def _suite(self, hypothesis: MealyMachine):
        if self.method == "w":
            return w_method_suite(hypothesis, self.depth)
        return wp_method_suite(hypothesis, self.depth)

    def _answer_chunk(self, chunk: Sequence[Word]) -> List[Tuple]:
        if self.executor is not None:
            return [tuple(o) for o in self.executor.map(self.oracle.output_query, chunk)]
        return output_query_batch(self.oracle, chunk)

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        self.statistics.equivalence_queries += 1
        suite = self._suite(hypothesis)
        if self.max_tests is not None and len(suite) > self.max_tests:
            self.statistics.tests_skipped += len(suite) - self.max_tests
            suite = suite[: self.max_tests]
        for start in range(0, len(suite), self.batch_size):
            chunk = suite[start : start + self.batch_size]
            self.statistics.test_words += len(chunk)
            actuals = self._answer_chunk(chunk)
            for word, actual in zip(chunk, actuals):
                if actual != hypothesis.run(word):
                    return word
        return None


class RandomWalkEquivalenceOracle:
    """Random-word conformance testing (a cheaper, incomplete alternative)."""

    def __init__(
        self,
        oracle: MembershipOracle,
        alphabet: Sequence[Input],
        *,
        num_words: int = 1000,
        min_length: int = 3,
        max_length: int = 30,
        seed: int = 0,
    ) -> None:
        self.oracle = oracle
        self.alphabet = tuple(alphabet)
        self.num_words = num_words
        self.min_length = min_length
        self.max_length = max_length
        self._random = random.Random(seed)
        self.statistics = QueryStatistics()

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        self.statistics.equivalence_queries += 1
        for _ in range(self.num_words):
            length = self._random.randint(self.min_length, self.max_length)
            word = tuple(self._random.choice(self.alphabet) for _ in range(length))
            self.statistics.test_words += 1
            if tuple(self.oracle.output_query(word)) != hypothesis.run(word):
                return word
        return None


class PerfectEquivalenceOracle:
    """Exact equivalence against a known reference machine (white-box testing)."""

    def __init__(self, reference: MealyMachine) -> None:
        self.reference = reference
        self.statistics = QueryStatistics()

    def find_counterexample(self, hypothesis: MealyMachine) -> Optional[Word]:
        self.statistics.equivalence_queries += 1
        return self.reference.find_counterexample(hypothesis)

"""Counterexample processing strategies.

When the equivalence oracle returns an input word on which the hypothesis
and the system under learning disagree, the observation table must be
refined so the next hypothesis fixes the disagreement.  Two classic
strategies are provided:

* :func:`process_counterexample_prefixes` — Angluin's original treatment:
  add every prefix of the counterexample as a short row.  Simple, but adds
  up to ``|cex|`` rows per counterexample.

* :func:`process_counterexample_rivest_schapire` — the Rivest–Schapire
  refinement: binary-search the counterexample for the position where the
  hypothesis "loses track" of the system and add a single distinguishing
  suffix instead.  This keeps the table small and is the default used by the
  learner (LearnLib's ``RivestSchapire`` handler plays the same role).
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.errors import LearningError
from repro.learning.observation_table import ObservationTable
from repro.learning.oracles import MembershipOracle

Input = Hashable
Word = Tuple[Input, ...]


def process_counterexample_prefixes(
    table: ObservationTable,
    counterexample: Sequence[Input],
) -> None:
    """Add every proper prefix of ``counterexample`` as a short row."""
    counterexample = tuple(counterexample)
    if not counterexample:
        raise LearningError("a counterexample must contain at least one input symbol")
    for length in range(1, len(counterexample) + 1):
        table.add_short_prefix(counterexample[:length])
    table.make_closed_and_consistent()


def _access_word(hypothesis: MealyMachine, table: ObservationTable, word: Word) -> Word:
    """Return the table access word of the hypothesis state reached by ``word``."""
    state = hypothesis.state_after(word)
    # The hypothesis states are numbered in the order the table's short rows
    # were turned into states, and the table keeps the access word of each.
    for prefix in table.short_prefixes:
        if hypothesis.state_after(prefix) == state and _row_state(hypothesis, table, prefix) == state:
            return prefix
    raise LearningError("hypothesis state has no access word in the table")  # pragma: no cover


def _row_state(hypothesis: MealyMachine, table: ObservationTable, prefix: Word) -> int:
    return hypothesis.state_after(prefix)


def process_counterexample_rivest_schapire(
    table: ObservationTable,
    hypothesis: MealyMachine,
    oracle: MembershipOracle,
    counterexample: Sequence[Input],
) -> None:
    """Extract one distinguishing suffix from ``counterexample`` (Rivest–Schapire).

    For a counterexample ``w`` define, for every split position ``i``, the
    word ``alpha_i = access(state(w[:i])) + w[i:]`` — the counterexample with
    its prefix replaced by the hypothesis' access word for the state that
    prefix reaches.  ``alpha_0`` behaves like the real system (it *is* the
    counterexample) and ``alpha_|w|`` behaves like the hypothesis, so there
    is an index where the behaviour flips; the suffix ``w[i:]`` at that index
    distinguishes two states the hypothesis currently merges and is added as
    a new column.
    """
    word = tuple(counterexample)
    if not word:
        raise LearningError("a counterexample must contain at least one input symbol")

    def disagrees(split: int) -> bool:
        """Return True when the 'patched' word still exposes the bug."""
        prefix, suffix = word[:split], word[split:]
        access = _access_word(hypothesis, table, prefix)
        patched = access + suffix
        if not patched:
            return False
        system_outputs = oracle.output_query(patched)
        hypothesis_outputs = hypothesis.run(patched)
        return system_outputs != hypothesis_outputs

    if not disagrees(0):
        # The "counterexample" does not actually distinguish the machines
        # (can happen when the equivalence oracle raced a cached answer).
        raise LearningError(f"spurious counterexample {list(word)}")

    low, high = 0, len(word)
    # Invariant: disagrees(low) is True, disagrees(high) is False.
    if disagrees(high):
        # The hypothesis disagrees with itself only if the access-word map is
        # broken; fall back to the prefix strategy which is always sound.
        process_counterexample_prefixes(table, word)
        return
    while high - low > 1:
        middle = (low + high) // 2
        if disagrees(middle):
            low = middle
        else:
            high = middle

    suffix = word[high:]
    if suffix:
        added = table.add_suffix(suffix)
    else:
        added = False
    if not added:
        # The suffix is already present: refine with prefixes to guarantee progress.
        process_counterexample_prefixes(table, word)
        return
    table.make_closed_and_consistent()

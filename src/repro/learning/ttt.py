"""TTT-style refinement of the Kearns–Vazirani classification tree.

PR 7's :class:`~repro.learning.kv.ClassificationTree` keeps every
Rivest–Schapire suffix verbatim, so discriminators grow with
counterexample length, and every :meth:`hypothesis` rebuild re-sifts
*all* transition words from the root.  Both costs are constants the tree
never earns back: sift probes pay the discriminator's length on every
descent, and the full re-sift repeats thousands of trie lookups per
rebuild just to land every word on the leaf it already occupied.

:class:`TTTTree` applies the two ideas of Isberner et al.'s TTT
algorithm (the successor of KV that AALpy ships — see SNIPPETS.md
snippet 1):

* **Discriminator finalization** — a split's Rivest–Schapire suffix is
  marked *temporary* and immediately challenged: single-symbol
  candidates are verified with one batched probe round (the probe words
  are the split leaves' output words, which the next hypothesis build
  needs anyway, so the verification is almost free), and one-symbol
  extensions of already-final discriminators are accepted when the
  response trie can decide them without executing anything.  A candidate
  replaces the temporary suffix only when real target answers prove it
  induces exactly the same child partition, so the tree invariant — the
  target separates the leaves at every inner node — survives every
  re-keying.  Temporary nodes that resist finalization are retried
  (trie-only) after each later split, when new answers may have made a
  short candidate decidable.

* **Incremental sifting** — the tree keeps a residency map from each
  leaf to the transition words parked on it plus a persistent transition
  and output table.  After a split only the words resident in the split
  subtree re-sift (they descend exactly one level, through the — ideally
  just finalized — new discriminator); everything else keeps its entry.
  ``hypothesis()`` therefore costs O(new evidence), not O(all
  transitions), which removes the constant fan-in re-sift overhead
  ``tests/test_kv.py`` pins on NRU.

The learned machines stay bit-identical to L*'s and KV's: every learner
converges on the canonical minimal machine of the target, whatever
refinement trajectory it takes (the same argument that lets KV and L*
disagree on every intermediate hypothesis yet return ``==``-equal
machines).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.learning.kv import ClassificationTree, KVLearner, _Inner, _Leaf, _Node
from repro.learning.oracles import MembershipOracle
from repro.learning.parallel import WorkerPool

Input = Hashable
Word = Tuple[Input, ...]
OutputWord = Tuple[Hashable, ...]


class TTTTree(ClassificationTree):
    """A classification tree with discriminator finalization and
    incremental sifting (see the module docstring for the algorithm)."""

    def __init__(
        self,
        alphabet: Sequence[Input],
        oracle: MembershipOracle,
        *,
        pool: Optional[WorkerPool] = None,
        chunk_size: int = 64,
    ) -> None:
        super().__init__(alphabet, oracle, pool=pool, chunk_size=chunk_size)
        # No seeded single-symbol chain: a TTT tree holds only the
        # discriminators its splits actually created (each finalized to the
        # shortest verified candidate), so a sift pays for the discriminators
        # on its path instead of answering every single-symbol suffix the way
        # the base class's L*-style seeding makes it.  The root is the one
        # unavoidable Mealy discriminator — some single symbol — and the
        # states the chain used to separate for free are discovered through
        # counterexamples, whose Rivest–Schapire suffixes the singles tier
        # then finalizes right back down to length one.
        self.root = _Inner((alphabet[0],), None, None, ())
        # Persistent hypothesis state: the transition/output tables survive
        # across rebuilds, and ``_pending`` holds the sift entries that still
        # have to descend ([state, symbol, word, node], exactly the base
        # class's shape).  ``_residents`` maps each leaf to the transition
        # words currently parked on it, so a split knows the *only* words its
        # new discriminator can re-route.
        self._transitions: Dict[Tuple[int, Input], int] = {}
        self._outputs: Dict[Tuple[int, Input], Hashable] = {}
        self._pending: List[List] = []
        self._residents: Dict[_Leaf, List[Tuple[int, Input]]] = {}
        self._scheduled_states = 0
        self._bootstrapped = False
        self._temporaries: List[_Inner] = []
        #: Temporary discriminators replaced by a verified shortest candidate
        #: (length-1 Rivest–Schapire suffixes count: they are already optimal).
        self.discriminators_finalized = 0
        #: ``(temporary length, finalized length)`` per finalization, in
        #: finalization order — the "finalized never longer" pin.
        self.finalization_shrinkage: List[Tuple[int, int]] = []
        #: Transition words re-enqueued per split, in split order.  Plain KV
        #: re-sifts every transition word on every rebuild; each entry here is
        #: bounded by the split leaf's fan-in instead.
        self.words_resifted_per_split: List[int] = []
        #: Probe words submitted (mostly trie hits) while verifying
        #: finalization candidates.
        self.finalization_probe_words = 0

    # ------------------------------------------------------------- inspection

    @property
    def temporary_discriminators(self) -> int:
        """Temporary discriminators still awaiting finalization."""
        return sum(1 for node in self._temporaries if node.temporary)

    # ------------------------------------------------------------- hypothesis

    def hypothesis(self) -> MealyMachine:
        """Rebuild the hypothesis by sifting only what moved.

        Identical level-synchronous batching to the base class, but the
        entry list persists across calls: a call after a split advances only
        the re-enqueued residents (plus the new state's fresh transitions),
        and a call with nothing pending builds the machine straight from the
        persistent tables without a single probe.
        """
        if not self._access and not self._bootstrapped:
            # The same ε-bootstrap as the base class: the initial state's
            # leaf is created by its sift, batched with state 0's transition
            # probes that prefix-subsume ε's bare chain probes.
            self._pending.append([None, None, (), self.root])
            for symbol in self.alphabet:
                self._pending.append([0, symbol, (symbol,), self.root])
            self._scheduled_states = 1
            self._bootstrapped = True

        while True:
            while self._scheduled_states < len(self._access):
                source = self._scheduled_states
                base = self._access[source]
                for symbol in self.alphabet:
                    self._pending.append([source, symbol, base + (symbol,), self.root])
                self._scheduled_states += 1

            still_sifting: List[List] = []
            for entry in self._pending:
                node = entry[3]
                if isinstance(node, _Leaf):
                    if entry[0] is not None:  # ε's bootstrap entry: no edge
                        self._transitions[(entry[0], entry[1])] = node.state
                        self._residents.setdefault(node, []).append(
                            (entry[0], entry[1])
                        )
                else:
                    still_sifting.append(entry)
            self._pending = still_sifting
            if not self._pending:
                if self._scheduled_states == len(self._access):
                    break
                continue

            probes = [entry[2] + entry[3].suffix for entry in self._pending]
            answers = self._answer_batch(probes)
            for entry, answer in zip(self._pending, answers):
                word, node = entry[2], entry[3]
                key = tuple(answer)[len(word):]
                child = node.children.get(key)
                if child is None:
                    child = self._create_child(word, node, key)
                entry[3] = child

        # Output rows are keyed by (source state, symbol) and source access
        # words never change, so only rows of newly discovered states are
        # asked for (the base class re-asks every row each rebuild and leans
        # on the trie to make the repeats free).
        missing = [
            (state, symbol)
            for state in range(len(self._access))
            for symbol in self.alphabet
            if (state, symbol) not in self._outputs
        ]
        if missing:
            words = [self._access[state] + (symbol,) for state, symbol in missing]
            answers = self._answer_batch(words)
            for (state, symbol), answer in zip(missing, answers):
                self._outputs[(state, symbol)] = answer[-1]

        return MealyMachine(
            states=list(range(len(self._access))),
            initial_state=0,
            inputs=list(self.alphabet),
            transitions=dict(self._transitions),
            outputs=dict(self._outputs),
        )

    # ------------------------------------------------------------------ split

    def _on_split(self, inner: _Inner, old_leaf: _Leaf, new_leaf: _Leaf) -> None:
        """Mark the split temporary, finalize what can be finalized, and
        re-enqueue exactly the split subtree's residents."""
        inner.temporary = True
        self._temporaries.append(inner)
        # Finalize the fresh node *before* re-sifting its residents, so the
        # re-sift probes pay the finalized (short) suffix instead of the
        # verbatim Rivest–Schapire one.  This is the ONLY finalization
        # window: right now the subtree holds exactly the two split leaves
        # and zero parked residents (the old leaf's are about to re-sift
        # through ``inner`` with fresh probes — ``resift_leaf``), so the
        # two-word partition check is exhaustive and re-keying is sound.
        # Re-keying later, once residents have parked below the node on the
        # strength of the *old* suffix, would need every one of them
        # re-verified — a retry pass that profiling showed costs more than
        # every split combined while (residents' answers under untried
        # suffixes being absent from the trie) never deciding a candidate.
        self._finalize_node(inner, paid=True, resift_leaf=old_leaf)

        residents = self._residents.pop(old_leaf, [])
        requeued = 0
        for state, symbol in residents:
            word = self._access[state] + (symbol,)
            if word == new_leaf.access:
                # The transition whose target the counterexample disproved:
                # its word *is* the new access word, so it lands on the new
                # leaf by construction — no probe needed.
                self._transitions[(state, symbol)] = new_leaf.state
                self._residents.setdefault(new_leaf, []).append((state, symbol))
            else:
                self._pending.append([state, symbol, word, inner])
                requeued += 1
        self.words_resifted_per_split.append(requeued)

    # ----------------------------------------------------------- finalization

    def _leaves_below(self, node: _Node) -> List[_Leaf]:
        leaves: List[_Leaf] = []
        stack: List[_Node] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, _Leaf):
                leaves.append(current)
            else:
                stack.extend(current.children.values())
        return leaves

    def _final_discriminators(self, shorter_than: int) -> List[Word]:
        """Distinct final discriminators usable as extension bases, i.e.
        those whose one-symbol extension would still shrink the suffix."""
        suffixes: List[Word] = []
        seen = set()
        stack: List[_Node] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                if (
                    not node.temporary
                    and node.children
                    and len(node.suffix) + 1 < shorter_than
                    and node.suffix not in seen
                ):
                    seen.add(node.suffix)
                    suffixes.append(node.suffix)
                stack.extend(node.children.values())
        suffixes.sort(key=lambda s: (len(s), tuple(repr(symbol) for symbol in s)))
        return suffixes

    def _adopt(
        self,
        node: _Inner,
        candidate: Word,
        tails_by_child: List[Tuple[_Node, OutputWord]],
    ) -> None:
        """Re-key ``node`` to the verified shorter discriminator."""
        self.finalization_shrinkage.append((len(node.suffix), len(candidate)))
        node.suffix = candidate
        node.temporary = False
        node.children = {}
        for child, tail in tails_by_child:
            child.key = tail
            node.children[tail] = child
        self.discriminators_finalized += 1
        # Any entry still sifting strictly below this node routed through it
        # via the *old* suffix; restart it here so its descent re-derives
        # from real answers to the new one.  (``refine`` only runs between
        # completed builds, so this list is empty in practice — pure
        # insurance.)
        for entry in self._pending:
            current = entry[3]
            while current is not None and current is not node:
                current = current.parent
            if current is node and entry[3] is not node:
                entry[3] = node

    def _words_below(
        self, node: _Inner, resift_leaf: Optional[_Leaf]
    ) -> List[Tuple[_Node, List[Word]]]:
        """Per-child words whose routing a candidate suffix must preserve.

        That is every leaf access word below the child *plus* every resident
        transition word parked on those leaves: a resident's target state may
        not be separated from its leaf's by the tree yet, so leaf answers
        alone cannot prove the resident keeps routing to the same side —
        and a mis-parked resident becomes a mis-placed access word at its
        leaf's next split, corrupting the tree.  ``resift_leaf`` (the leaf a
        split is about to re-sift) contributes only its access word: its
        residents re-route from fresh answers immediately afterwards.
        """
        words_by_child: List[Tuple[_Node, List[Word]]] = []
        for child in node.children.values():
            words: List[Word] = []
            for leaf in self._leaves_below(child):
                words.append(leaf.access)
                if leaf is resift_leaf:
                    continue
                for state, symbol in self._residents.get(leaf, ()):
                    word = self._access[state] + (symbol,)
                    if word != leaf.access:
                        words.append(word)
            words_by_child.append((child, words))
        return words_by_child

    def _partition(
        self,
        words_by_child: List[Tuple[_Node, List[Word]]],
        answer_for,
    ) -> Optional[List[Tuple[_Node, OutputWord]]]:
        """Child re-keying for a candidate, or None when the partition breaks.

        Valid iff every child subtree's words share one output tail and the
        tails stay pairwise distinct — exactly the condition under which
        swapping the suffix preserves which child every word below the node
        (leaf access words and parked residents alike) routes to.
        """
        tails_by_child: List[Tuple[_Node, OutputWord]] = []
        seen_tails = set()
        for child, words in words_by_child:
            tails = set()
            for word in words:
                answer = answer_for(word)
                if answer is None:
                    return None
                tails.add(tuple(answer)[len(word):])
            if len(tails) != 1:
                return None
            tail = tails.pop()
            if tail in seen_tails:
                return None
            seen_tails.add(tail)
            tails_by_child.append((child, tail))
        return tails_by_child

    def _finalize_node(
        self, node: _Inner, *, paid: bool, resift_leaf: Optional[_Leaf] = None
    ) -> None:
        """Try to replace ``node``'s temporary suffix with a shorter one.

        ``paid=True`` (the node's own split) verifies single-symbol
        candidates with one real batched probe round; retries are trie-only
        so a stubborn node never costs executions twice.
        """
        length = len(node.suffix)
        if length <= 1:
            # A one-symbol Rivest–Schapire suffix is already as short as a
            # Mealy discriminator can be.
            node.temporary = False
            self.discriminators_finalized += 1
            self.finalization_shrinkage.append((length, length))
            return
        words_by_child = self._words_below(node, resift_leaf)
        all_words = [word for _, words in words_by_child for word in words]
        cached_answer = getattr(self.oracle, "cached_answer", None)

        singles = [(symbol,) for symbol in self.alphabet]
        answers: Dict[Tuple[Word, Word], OutputWord] = {}
        if paid:
            # One deduped/prefix-subsumed batch: at a fresh split the words
            # are just the two leaves' access words, and their probe words
            # are output words the next hypothesis build needs anyway — so
            # this verification costs (almost) nothing beyond moving those
            # executions earlier.
            probes = [
                word + candidate for candidate in singles for word in all_words
            ]
            self.finalization_probe_words += len(probes)
            flat = self._answer_batch(probes)
            index = 0
            for candidate in singles:
                for word in all_words:
                    answers[(candidate, word)] = flat[index]
                    index += 1
        elif cached_answer is not None:
            for candidate in singles:
                for word in all_words:
                    answer = cached_answer(word + candidate)
                    if answer is not None:
                        answers[(candidate, word)] = answer

        for candidate in singles:
            tails = self._partition(
                words_by_child, lambda word: answers.get((candidate, word))
            )
            if tails is not None:
                self._adopt(node, candidate, tails)
                return

        if cached_answer is None:
            return
        # One-symbol extensions of already-final discriminators, shortest
        # first, decided purely from the response trie — no executions.
        for base in self._final_discriminators(shorter_than=length):
            for symbol in self.alphabet:
                candidate = (symbol,) + base
                tails = self._partition(
                    words_by_child,
                    lambda word: cached_answer(word + candidate),
                )
                if tails is not None:
                    self._adopt(node, candidate, tails)
                    return


class TTTLearner(KVLearner):
    """The Kearns–Vazirani loop over a :class:`TTTTree`.

    Everything — engine wrapping, pool semantics, Rivest–Schapire
    refinement, counterexample exhaustion, internal minimality repair and
    result shape — is inherited from :class:`~repro.learning.kv.KVLearner`;
    only the tree implementation differs, which is the point: TTT is a
    refinement layer on the classification tree, not a different learner.
    """

    name = "ttt"
    tree_class = TTTTree

"""The main learning loop (the student of Section 3.1).

:class:`MealyLearner` ties the pieces together: it maintains an observation
table against a membership oracle, builds hypotheses, asks the equivalence
oracle for counterexamples and refines until no counterexample is found.

The loop mirrors Section 3.4 of the paper: the membership oracle is Polca
(or any other output-query oracle), the equivalence oracle is the k-deep
Wp-method conformance test, and the result carries the completeness caveat
of Corollary 3.4 — the returned machine either equals the target policy or
the policy has more than ``|H| + k`` states.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.errors import BudgetExceeded, LearningError
from repro.learning.counterexample import (
    process_counterexample_prefixes,
    process_counterexample_rivest_schapire,
)
from repro.learning.equivalence import EquivalenceOracle
from repro.learning.observation_table import ObservationTable
from repro.learning.oracles import (
    CachedMembershipOracle,
    DictCachedMembershipOracle,
    MembershipOracle,
    QueryStatistics,
)
from repro.learning.parallel import OracleFactory, WorkerPool

Input = Hashable
Word = Tuple[Input, ...]

#: Cache backends selectable via ``MealyLearner(cache_backend=...)``.
CACHE_BACKENDS = ("trie", "dict")


@dataclass
class LearningResult:
    """Outcome of a learning run."""

    machine: MealyMachine
    rounds: int
    learning_seconds: float
    statistics: QueryStatistics
    counterexamples: List[Word] = field(default_factory=list)

    @property
    def num_states(self) -> int:
        """Number of states of the learned machine."""
        return self.machine.size

    @property
    def tests_skipped(self) -> int:
        """Conformance-suite words skipped because of a ``max_tests`` cap."""
        return self.statistics.tests_skipped

    @property
    def completeness_guaranteed(self) -> bool:
        """False when suite truncation voided the Corollary 3.4 guarantee."""
        return self.statistics.tests_skipped == 0


class MealyLearner:
    """Observation-table L* learner for Mealy machines.

    Membership queries flow through the batched query engine: unless
    ``cache_queries`` is off, the oracle is wrapped in a
    :class:`~repro.learning.oracles.CachedMembershipOracle` (trie backend)
    or, for baseline measurements, the legacy
    :class:`~repro.learning.oracles.DictCachedMembershipOracle`
    (``cache_backend="dict"``).  An oracle that is already one of the two
    cache types is used as-is, which lets callers share one engine between
    the learner and the equivalence oracle.

    With ``workers=N`` (N > 1) and a picklable ``oracle_factory`` — or an
    existing :class:`~repro.learning.parallel.WorkerPool` via ``pool=`` —
    the observation-table fill answers each stabilisation round's batch
    across worker processes; answers merge back through the shared query
    engine in chunk-index order, so parallel runs learn machines
    bit-identical to serial ones.  An owned pool (built from ``workers=``)
    is shut down when :meth:`learn` returns; a shared pool stays up for
    its owner (typically the pipeline, which hands the same pool to the
    conformance tester so one flag parallelizes the whole run).
    """

    def __init__(
        self,
        alphabet: Sequence[Input],
        membership_oracle: MembershipOracle,
        equivalence_oracle: EquivalenceOracle,
        *,
        counterexample_strategy: str = "rivest-schapire",
        max_rounds: int = 10_000,
        cache_queries: bool = True,
        cache_backend: str = "trie",
        workers: Optional[int] = None,
        oracle_factory: Optional[OracleFactory] = None,
        pool: Optional[WorkerPool] = None,
        fill_chunk_size: int = 64,
    ) -> None:
        if counterexample_strategy not in ("rivest-schapire", "prefixes"):
            raise LearningError(
                f"unknown counterexample strategy {counterexample_strategy!r}"
            )
        if cache_backend not in CACHE_BACKENDS:
            raise LearningError(
                f"unknown cache backend {cache_backend!r}; expected one of {CACHE_BACKENDS}"
            )
        if pool is not None and (workers is not None or oracle_factory is not None):
            raise LearningError(
                "pass either a shared pool or workers/oracle_factory, not both"
            )
        self.alphabet = tuple(alphabet)
        if not cache_queries or isinstance(
            membership_oracle, (CachedMembershipOracle, DictCachedMembershipOracle)
        ):
            self.membership_oracle: MembershipOracle = membership_oracle
        elif cache_backend == "dict":
            self.membership_oracle = DictCachedMembershipOracle(membership_oracle)
        else:
            self.membership_oracle = CachedMembershipOracle(membership_oracle)
        self.equivalence_oracle = equivalence_oracle
        self.counterexample_strategy = counterexample_strategy
        self.max_rounds = max_rounds
        self.fill_chunk_size = fill_chunk_size
        self._owns_pool = False
        self.pool = pool
        if pool is None and workers is not None and workers > 1:
            # WorkerPool validates workers >= 1 and the factory requirement.
            self.pool = WorkerPool(oracle_factory, workers)
            self._owns_pool = True
        elif workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")

    def _refine(self, table: ObservationTable, hypothesis: MealyMachine, counterexample: Word) -> None:
        if self.counterexample_strategy == "prefixes":
            process_counterexample_prefixes(table, counterexample)
            return
        try:
            process_counterexample_rivest_schapire(
                table, hypothesis, self.membership_oracle, counterexample
            )
        except LearningError:
            # Fall back to the always-sound prefix strategy (e.g. on a
            # spurious counterexample caused by an already-known suffix).
            process_counterexample_prefixes(table, counterexample)

    def learn(self) -> LearningResult:
        """Run the learning loop until the equivalence oracle is satisfied."""
        try:
            return self._learn()
        finally:
            if self._owns_pool and self.pool is not None:
                self.pool.close()

    def _learn(self) -> LearningResult:
        start = time.perf_counter()
        table = ObservationTable(
            self.alphabet,
            self.membership_oracle,
            pool=self.pool,
            chunk_size=self.fill_chunk_size,
        )
        counterexamples: List[Word] = []

        table.make_closed_and_consistent()
        hypothesis = table.hypothesis()

        for round_number in range(1, self.max_rounds + 1):
            counterexample = self.equivalence_oracle.find_counterexample(hypothesis)
            if counterexample is None:
                elapsed = time.perf_counter() - start
                return LearningResult(
                    machine=hypothesis.relabel(),
                    rounds=round_number,
                    learning_seconds=elapsed,
                    statistics=self._collect_statistics(),
                    counterexamples=counterexamples,
                )
            counterexamples.append(tuple(counterexample))
            previous_size = hypothesis.size
            self._refine(table, hypothesis, tuple(counterexample))
            table.make_closed_and_consistent()
            hypothesis = table.hypothesis()
            if hypothesis.size == previous_size and hypothesis.run(counterexample) != tuple(
                self.membership_oracle.output_query(counterexample)
            ):
                # The refinement did not resolve the counterexample; escalate
                # to the prefix strategy to guarantee progress.
                process_counterexample_prefixes(table, tuple(counterexample))
                table.make_closed_and_consistent()
                hypothesis = table.hypothesis()

        raise BudgetExceeded(
            f"learning did not converge within {self.max_rounds} rounds",
            spent=self.max_rounds,
            budget=self.max_rounds,
        )

    def _collect_statistics(self) -> QueryStatistics:
        statistics = QueryStatistics()
        for candidate in (self.membership_oracle, self.equivalence_oracle):
            candidate_stats = getattr(candidate, "statistics", None)
            if isinstance(candidate_stats, QueryStatistics):
                statistics = statistics.merge(candidate_stats)
        return statistics


def learn_mealy_machine(
    alphabet: Sequence[Input],
    membership_oracle: MembershipOracle,
    equivalence_oracle: EquivalenceOracle,
    **kwargs,
) -> LearningResult:
    """Convenience wrapper: build a :class:`MealyLearner` and run it."""
    learner = MealyLearner(alphabet, membership_oracle, equivalence_oracle, **kwargs)
    return learner.learn()

"""The main learning loop (the student of Section 3.1).

Two learners implement the student side behind one interface:

* :class:`MealyLearner` — Angluin's L* with an observation table
  (:mod:`repro.learning.observation_table`), the paper's configuration;
* :class:`~repro.learning.kv.KVLearner` — the Kearns–Vazirani
  classification-tree learner (:mod:`repro.learning.kv`), which refines a
  discrimination tree per counterexample instead of refilling an
  O(|S×Σ|·|E|) table every round.

Both share :class:`ActiveLearner`: the query-engine wrapping, worker-pool
ownership, per-round executed-query accounting and statistics collection
live here once, so the learners differ only in *how* they turn answers
into hypotheses.  :func:`make_learner` builds either by name (the
``--learner {lstar,kv}`` knob of the pipeline and CLI).

The loop mirrors Section 3.4 of the paper: the membership oracle is Polca
(or any other output-query oracle), the equivalence oracle is the k-deep
Wp-method conformance test, and the result carries the completeness caveat
of Corollary 3.4 — the returned machine either equals the target policy or
the policy has more than ``|H| + k`` states.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.errors import BudgetExceeded, LearningError
from repro.learning.counterexample import (
    process_counterexample_prefixes,
    process_counterexample_rivest_schapire,
)
from repro.learning.equivalence import EquivalenceOracle
from repro.learning.observation_table import ObservationTable
from repro.learning.oracles import (
    CachedMembershipOracle,
    DictCachedMembershipOracle,
    MembershipOracle,
    QueryStatistics,
)
from repro.learning.parallel import OracleFactory, WorkerPool

Input = Hashable
Word = Tuple[Input, ...]

#: Cache backends selectable via ``ActiveLearner(cache_backend=...)``.
CACHE_BACKENDS = ("trie", "dict")

#: Learner names accepted by :func:`make_learner` (and the ``--learner`` knob).
LEARNER_NAMES = ("lstar", "kv", "ttt")


@dataclass
class LearningResult:
    """Outcome of a learning run."""

    machine: MealyMachine
    rounds: int
    learning_seconds: float
    statistics: QueryStatistics
    counterexamples: List[Word] = field(default_factory=list)
    #: Executed membership queries per equivalence round, in round order
    #: (the refinement that produced a round's hypothesis counts toward that
    #: round).  Sums to ``statistics.membership_queries`` for cached engines.
    per_round_queries: List[int] = field(default_factory=list)
    #: Name of the learner that produced this result (``"lstar"`` / ``"kv"``).
    learner: str = "lstar"
    #: Executed membership queries attributed to the learner's own probes —
    #: the engine total minus what the equivalence oracle executed through
    #: the shared engine.  This is the apples-to-apples cost of the learning
    #: algorithm itself: the conformance suite's vocabulary overlaps more
    #: with L*'s table words than with KV's sift probes, so engine totals
    #: mix the two cost centres.
    learner_queries: int = 0
    #: Executed membership *symbols* attributed to the learner's own probes
    #: (engine symbol total minus suite executions) — the companion of
    #: :attr:`learner_queries` that shows discriminator-length wins: two
    #: learners can execute the same number of probe words while one pays
    #: far fewer symbols per word (TTT's finalized discriminators vs KV's
    #: verbatim Rivest–Schapire suffixes).
    learner_symbols: int = 0

    @property
    def num_states(self) -> int:
        """Number of states of the learned machine."""
        return self.machine.size

    @property
    def tests_skipped(self) -> int:
        """Conformance-suite words skipped because of a ``max_tests`` cap."""
        return self.statistics.tests_skipped

    @property
    def completeness_guaranteed(self) -> bool:
        """False when suite truncation voided the Corollary 3.4 guarantee."""
        return self.statistics.tests_skipped == 0


class ActiveLearner:
    """Shared scaffolding of the active-learning loop.

    Membership queries flow through the batched query engine: unless
    ``cache_queries`` is off, the oracle is wrapped in a
    :class:`~repro.learning.oracles.CachedMembershipOracle` (trie backend)
    or, for baseline measurements, the legacy
    :class:`~repro.learning.oracles.DictCachedMembershipOracle`
    (``cache_backend="dict"``).  An oracle that is already one of the two
    cache types is used as-is, which lets callers share one engine between
    the learner and the equivalence oracle.

    With ``workers=N`` (N > 1) and a picklable ``oracle_factory`` — or an
    existing :class:`~repro.learning.parallel.WorkerPool` via ``pool=`` —
    the learner's per-round query batches (table fill for L*, sift rounds
    for KV) fan out across worker processes; answers merge back through the
    shared query engine in chunk-index order, so parallel runs learn
    machines bit-identical to serial ones.  An owned pool (built from
    ``workers=``) is shut down when :meth:`learn` returns; a shared pool
    stays up for its owner (typically the pipeline, which hands the same
    pool to the conformance tester so one flag parallelizes the whole run).
    """

    #: Registry name of the learner; subclasses override.
    name: str = ""
    #: Counterexample strategies the learner accepts.
    counterexample_strategies: Tuple[str, ...] = ("rivest-schapire", "prefixes")

    def __init__(
        self,
        alphabet: Sequence[Input],
        membership_oracle: MembershipOracle,
        equivalence_oracle: EquivalenceOracle,
        *,
        counterexample_strategy: str = "rivest-schapire",
        max_rounds: int = 10_000,
        cache_queries: bool = True,
        cache_backend: str = "trie",
        workers: Optional[int] = None,
        oracle_factory: Optional[OracleFactory] = None,
        pool: Optional[WorkerPool] = None,
        fill_chunk_size: int = 64,
    ) -> None:
        if counterexample_strategy not in self.counterexample_strategies:
            raise LearningError(
                f"learner {self.name!r} does not support counterexample strategy "
                f"{counterexample_strategy!r}; expected one of "
                f"{self.counterexample_strategies}"
            )
        if cache_backend not in CACHE_BACKENDS:
            raise LearningError(
                f"unknown cache backend {cache_backend!r}; expected one of {CACHE_BACKENDS}"
            )
        if pool is not None and (workers is not None or oracle_factory is not None):
            raise LearningError(
                "pass either a shared pool or workers/oracle_factory, not both"
            )
        self.alphabet = tuple(alphabet)
        if not cache_queries or isinstance(
            membership_oracle, (CachedMembershipOracle, DictCachedMembershipOracle)
        ):
            self.membership_oracle: MembershipOracle = membership_oracle
        elif cache_backend == "dict":
            self.membership_oracle = DictCachedMembershipOracle(membership_oracle)
        else:
            self.membership_oracle = CachedMembershipOracle(membership_oracle)
        self.equivalence_oracle = equivalence_oracle
        self.counterexample_strategy = counterexample_strategy
        self.max_rounds = max_rounds
        self.fill_chunk_size = fill_chunk_size
        self._owns_pool = False
        self.pool = pool
        if pool is None and workers is not None and workers > 1:
            # WorkerPool validates workers >= 1 and the factory requirement.
            self.pool = WorkerPool(oracle_factory, workers)
            self._owns_pool = True
        elif workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._suite_queries = 0
        self._suite_symbols = 0

    def learn(self) -> LearningResult:
        """Run the learning loop until the equivalence oracle is satisfied."""
        try:
            return self._learn()
        finally:
            if self._owns_pool and self.pool is not None:
                self.pool.close()

    def _learn(self) -> LearningResult:
        raise NotImplementedError  # pragma: no cover - subclasses implement

    # ------------------------------------------------------------- accounting

    @property
    def states_discovered(self) -> int:
        """States the learner has discovered so far (readable mid-run, e.g.
        after a :class:`~repro.errors.BudgetExceeded` interrupted learning)."""
        return 0  # pragma: no cover - subclasses override

    def _executed_queries(self) -> int:
        """Executed membership queries of the engine so far (0 if untracked)."""
        statistics = getattr(self.membership_oracle, "statistics", None)
        if isinstance(statistics, QueryStatistics):
            return statistics.membership_queries
        return 0

    def _executed_symbols(self) -> int:
        """Executed membership symbols of the engine so far (0 if untracked)."""
        statistics = getattr(self.membership_oracle, "statistics", None)
        if isinstance(statistics, QueryStatistics):
            return statistics.membership_symbols
        return 0

    def _find_counterexample(self, hypothesis: MealyMachine):
        """One equivalence query, attributing its executions to the suite.

        The equivalence oracle usually shares the learner's query engine, so
        its executed words land in the same counter as the learner's own
        probes; snapshotting around the call splits the two cost centres and
        feeds :attr:`LearningResult.learner_queries` /
        :attr:`LearningResult.learner_symbols`.
        """
        before = self._executed_queries()
        before_symbols = self._executed_symbols()
        try:
            return self.equivalence_oracle.find_counterexample(hypothesis)
        finally:
            self._suite_queries += self._executed_queries() - before
            self._suite_symbols += self._executed_symbols() - before_symbols

    def _collect_statistics(self) -> QueryStatistics:
        statistics = QueryStatistics()
        for candidate in (self.membership_oracle, self.equivalence_oracle):
            candidate_stats = getattr(candidate, "statistics", None)
            if isinstance(candidate_stats, QueryStatistics):
                statistics = statistics.merge(candidate_stats)
        return statistics


class MealyLearner(ActiveLearner):
    """Observation-table L* learner for Mealy machines.

    See :class:`ActiveLearner` for the engine/pool behaviour.  With a
    parallel pool the observation-table fill answers each stabilisation
    round's batch across worker processes.
    """

    name = "lstar"
    counterexample_strategies = ("rivest-schapire", "prefixes")

    #: The observation table of the current/most recent run (None before
    #: :meth:`learn`); exposed so budget-interrupted runs stay inspectable.
    table: Optional[ObservationTable] = None

    @property
    def states_discovered(self) -> int:
        """Access words added as short rows so far (distinct rows ≈ states)."""
        return len(self.table.short_prefixes) if self.table is not None else 0

    def _refine(self, table: ObservationTable, hypothesis: MealyMachine, counterexample: Word) -> None:
        if self.counterexample_strategy == "prefixes":
            process_counterexample_prefixes(table, counterexample)
            return
        try:
            process_counterexample_rivest_schapire(
                table, hypothesis, self.membership_oracle, counterexample
            )
        except LearningError:
            # Fall back to the always-sound prefix strategy (e.g. on a
            # spurious counterexample caused by an already-known suffix).
            process_counterexample_prefixes(table, counterexample)

    def _learn(self) -> LearningResult:
        start = time.perf_counter()
        self._suite_queries = 0
        self._suite_symbols = 0
        origin = self._executed_queries()
        symbol_origin = self._executed_symbols()
        round_mark = origin
        per_round_queries: List[int] = []
        table = ObservationTable(
            self.alphabet,
            self.membership_oracle,
            pool=self.pool,
            chunk_size=self.fill_chunk_size,
        )
        self.table = table
        counterexamples: List[Word] = []

        table.make_closed_and_consistent()
        hypothesis = table.hypothesis()

        for round_number in range(1, self.max_rounds + 1):
            counterexample = self._find_counterexample(hypothesis)
            if counterexample is None:
                per_round_queries.append(self._executed_queries() - round_mark)
                elapsed = time.perf_counter() - start
                return LearningResult(
                    machine=hypothesis.relabel(),
                    rounds=round_number,
                    learning_seconds=elapsed,
                    statistics=self._collect_statistics(),
                    counterexamples=counterexamples,
                    per_round_queries=per_round_queries,
                    learner=self.name,
                    learner_queries=self._executed_queries()
                    - origin
                    - self._suite_queries,
                    learner_symbols=self._executed_symbols()
                    - symbol_origin
                    - self._suite_symbols,
                )
            counterexamples.append(tuple(counterexample))
            previous_size = hypothesis.size
            self._refine(table, hypothesis, tuple(counterexample))
            table.make_closed_and_consistent()
            hypothesis = table.hypothesis()
            if hypothesis.size == previous_size and hypothesis.run(counterexample) != tuple(
                self.membership_oracle.output_query(counterexample)
            ):
                # The refinement did not resolve the counterexample; escalate
                # to the prefix strategy to guarantee progress.
                process_counterexample_prefixes(table, tuple(counterexample))
                table.make_closed_and_consistent()
                hypothesis = table.hypothesis()
            per_round_queries.append(self._executed_queries() - round_mark)
            round_mark = self._executed_queries()

        raise BudgetExceeded(
            f"learning did not converge within {self.max_rounds} rounds",
            spent=self.max_rounds,
            budget=self.max_rounds,
        )


def make_learner(
    name: str,
    alphabet: Sequence[Input],
    membership_oracle: MembershipOracle,
    equivalence_oracle: EquivalenceOracle,
    **kwargs,
) -> ActiveLearner:
    """Build a learner by registry name (``"lstar"``, ``"kv"`` or ``"ttt"``).

    This is the single construction point behind the ``--learner`` knob of
    the pipeline, the experiment tables and the CLI; unknown names raise
    :class:`~repro.errors.LearningError` listing the valid names
    (:data:`LEARNER_NAMES`) so a typo fails loudly instead of silently
    learning with the default algorithm.
    """
    cls = _learner_class(name)
    if cls is None:
        raise LearningError(
            f"unknown learner {name!r}; expected one of {LEARNER_NAMES}"
        )
    return cls(alphabet, membership_oracle, equivalence_oracle, **kwargs)


def _learner_class(name: str):
    """Resolve a registry name to its learner class (None when unknown).

    The tree learners import lazily so ``repro.learning.learner`` stays
    import-cycle-free (:mod:`repro.learning.kv` imports this module for the
    :class:`ActiveLearner` base).
    """
    normalized = name.lower()
    if normalized == "lstar":
        return MealyLearner
    if normalized == "kv":
        from repro.learning.kv import KVLearner

        return KVLearner
    if normalized == "ttt":
        from repro.learning.ttt import TTTLearner

        return TTTLearner
    return None


def learn_mealy_machine(
    alphabet: Sequence[Input],
    membership_oracle: MembershipOracle,
    equivalence_oracle: EquivalenceOracle,
    *,
    learner: str = "lstar",
    **kwargs,
) -> LearningResult:
    """Convenience wrapper: build a learner (L* by default) and run it."""
    instance = make_learner(
        learner, alphabet, membership_oracle, equivalence_oracle, **kwargs
    )
    return instance.learn()

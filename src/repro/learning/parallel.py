"""Process-parallel query execution: oracle factories, pool workers, and the
shared :class:`WorkerPool`.

Membership queries dominate every learning run the paper reports: the
observation-table fill stages one batch of ``(prefix, suffix)`` words per
stabilisation round, and conformance testing executes a Wp-suite that grows
with ``|H|`` and exponentially with the test depth ``k``.  Both sides'
words are independent of each other — the classic embarrassingly parallel
shape.  The missing piece for a
:class:`concurrent.futures.ProcessPoolExecutor` is that worker processes
cannot share the live system under learning: a simulator oracle holds
mutable state and (for the hardware path) a whole simulated CPU.

This module closes that gap with *oracle factories*: small picklable
descriptions of how to rebuild a fresh membership oracle inside a worker
process.  The pool is created with the factory as its initializer argument,
so every worker builds its system under test exactly once and then answers
word chunks against it; answers travel back to the parent where they merge
into the shared :class:`~repro.learning.query_engine.ResponseTrie` —
parallel answers still feed the shared cache and still trip the
non-determinism detection of Section 7.1.

:class:`WorkerPool` bundles the executor, the factory and the per-worker
accounting so **one** pool serves both oracle sides of a learning run: the
observation table ships its round batches through
:meth:`WorkerPool.answer_batch`, and
:class:`~repro.learning.equivalence.ConformanceEquivalenceOracle` streams
suite chunks through :meth:`WorkerPool.submit` / :meth:`WorkerPool.collect`
with a bounded in-flight window.

Because every factory rebuilds a *deterministic* system from the same
description, a parallel run answers every word identically to a serial
run; chunk results are always merged in chunk-index order, so the learned
machines are bit-identical — the property
``tests/test_differential_learning.py`` and ``tests/test_property_fuzz.py``
check across the policy registry and generated instances.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, fields, is_dataclass
from typing import Callable, Dict, Hashable, List, Optional, Protocol, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.errors import LearningError, OutputLengthMismatchError
from repro.learning.query_engine import (
    ResponseTrie,
    partition_batch,
    serve_from_trie,
)

Input = Hashable
Output = Hashable
Word = Tuple[Input, ...]
OutputWord = Tuple[Output, ...]


class OracleFactory(Protocol):
    """A picklable recipe for building a membership oracle in a worker.

    Implementations must be picklable (the factory is shipped to every pool
    worker once, as the pool initializer argument) and calling them must
    return a *fresh* oracle whose answers are identical to the parent
    process' system under learning.
    """

    def __call__(self):
        """Build and return a fresh membership oracle."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SimulatedPolicyOracleFactory:
    """Rebuild Polca over a software-simulated cache from a registry name.

    This is the factory behind every Table 2 style run: the worker looks
    ``policy_name`` up in the policy registry, instantiates it at
    ``associativity`` and wraps it in the same
    ``SimulatedCacheInterface`` → ``PolcaMembershipOracle`` stack the
    parent uses, so worker answers are bit-identical to serial ones.
    """

    policy_name: str
    associativity: int
    extra_blocks: int = 2
    #: Execution kernel for the worker's Polca oracle.  ``"auto"`` means
    #: each worker compiles the policy into a transition table once, at
    #: pool init, and steps its chunks through the tabulated kernel.
    kernel: Optional[str] = "auto"

    def __call__(self):
        from repro.polca.algorithm import PolcaMembershipOracle
        from repro.polca.interfaces import SimulatedCacheInterface
        from repro.policies.registry import make_policy

        policy = make_policy(self.policy_name, self.associativity)
        interface = SimulatedCacheInterface(policy, extra_blocks=self.extra_blocks)
        return PolcaMembershipOracle(interface, kernel=self.kernel)


@dataclass(frozen=True)
class CacheInterfaceOracleFactory:
    """Rebuild Polca over a pickled copy of an arbitrary cache interface.

    The generic fallback for cache interfaces that are not registry-backed
    simulated caches — e.g. the CacheQuery-on-simulated-hardware path of
    Table 4.  Polca's probes always replay from the reset state, so a
    pickled snapshot of the interface behaves identically to the original
    no matter what state it was captured in.
    """

    cache: object
    #: Execution kernel for the worker's Polca oracle; interfaces without
    #: policy-exact semantics (no ``kernel_policy`` hook — e.g. CacheQuery)
    #: silently keep the scalar path under ``"auto"``.
    kernel: Optional[str] = "auto"

    def __call__(self):
        from repro.polca.algorithm import PolcaMembershipOracle

        return PolcaMembershipOracle(self.cache, kernel=self.kernel)


@dataclass(frozen=True)
class MealyMachineOracleFactory:
    """Rebuild a :class:`~repro.learning.oracles.MealyMachineOracle` from its machine."""

    machine: MealyMachine

    def __call__(self):
        from repro.learning.oracles import MealyMachineOracle

        return MealyMachineOracle(self.machine)


@dataclass(frozen=True)
class FunctionOracleFactory:
    """Rebuild a :class:`~repro.learning.oracles.FunctionOracle` from a picklable callable.

    ``function`` must be importable from the worker (a module-level
    function, not a lambda or closure) — the usual pickling rule.
    """

    function: Callable[[Word], OutputWord]

    def __call__(self):
        from repro.learning.oracles import FunctionOracle

        return FunctionOracle(self.function)


def _is_registry_default(policy) -> bool:
    """True when ``policy`` equals what the registry builds for its name.

    Matching on the name alone is not enough: e.g. ``SRRIPPolicy(2,
    variant="HP", bits=3)`` carries the registry name ``SRRIP-HP`` but a
    non-default ``bits`` — a worker rebuilding it from the name would
    simulate a *different* policy and the divergence would surface as a
    spurious non-determinism error.  Policies are pure (all mutable state
    lives outside them), so comparing type and configured attributes
    against a freshly built registry instance decides it.
    """
    from repro.policies.registry import available_policies, make_policy

    name = getattr(policy, "name", "")
    if not name or name.upper() not in available_policies():
        return False
    try:
        default = make_policy(name, policy.associativity)
    except Exception:
        return False
    return type(default) is type(policy) and default.__dict__ == policy.__dict__


def oracle_factory_for_cache(cache, *, kernel: Optional[str] = "auto") -> OracleFactory:
    """Derive an :class:`OracleFactory` for a Polca cache interface.

    Simulated caches whose policy *is* the registry default for its name
    are described by (policy name, associativity) so workers rebuild them
    from scratch; any other interface — including registry policies with
    non-default parameters — is shipped as a pickled snapshot.  Raises
    :class:`~repro.errors.LearningError` when neither works.  ``kernel``
    is forwarded to each worker's Polca oracle so serial and parallel runs
    answer through the same execution strategy.
    """
    from repro.polca.interfaces import SimulatedCacheInterface

    if isinstance(cache, SimulatedCacheInterface) and _is_registry_default(cache.policy):
        extra = len(cache.block_universe()) - cache.associativity
        return SimulatedPolicyOracleFactory(
            cache.policy.name.upper(), cache.associativity, extra, kernel
        )
    try:
        pickle.dumps(cache)
    except Exception as exc:
        raise LearningError(
            f"cache interface {cache!r} cannot be shipped to worker processes; "
            "pass an explicit oracle_factory"
        ) from exc
    return CacheInterfaceOracleFactory(cache, kernel)


# ------------------------------------------------------------- worker side

#: The per-process oracle, built once by :func:`initialize_worker`.
_WORKER_ORACLE = None


def initialize_worker(factory: OracleFactory) -> None:
    """Pool initializer: build this worker's oracle from the factory."""
    global _WORKER_ORACLE
    _WORKER_ORACLE = factory()


def statistics_snapshot(oracle) -> Dict[str, float]:
    """Numeric counters describing everything ``oracle`` has executed so far.

    Collects every numeric field of the oracle's ``statistics`` dataclass
    (:class:`~repro.learning.oracles.QueryStatistics` for machine-backed
    oracles, ``PolcaStatistics`` for Polca) plus, when the oracle wraps a
    cache interface, the interface-level probe/access counters and — for
    the CacheQuery hardware path — the frontend response-cache hit/miss and
    backend execution counters.  Two snapshots bracket a chunk execution
    and their difference (:func:`statistics_delta`) travels back to the
    parent, so reports can merge the *full* worker-side cost — probes,
    block accesses, frontend cache hits — not just query/symbol counts.
    """
    snapshot: Dict[str, float] = {}
    statistics = getattr(oracle, "statistics", None)
    if statistics is not None and is_dataclass(statistics):
        for field in fields(statistics):
            value = getattr(statistics, field.name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                snapshot[field.name] = value
    cache = getattr(oracle, "cache", None)
    if cache is not None:
        for name in ("probe_count", "access_count", "sessions_opened", "session_accesses"):
            value = getattr(cache, name, None)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                snapshot[f"interface_{name}"] = value
        frontend = getattr(cache, "frontend", None)
        if frontend is not None:
            response_cache = getattr(frontend, "cache", None)
            if response_cache is not None:
                snapshot["frontend_cache_hits"] = response_cache.hits
                snapshot["frontend_cache_misses"] = response_cache.misses
            backend = getattr(frontend, "backend", None)
            if backend is not None:
                snapshot["backend_executed_queries"] = backend.executed_queries
                snapshot["backend_executed_loads"] = backend.executed_loads
    return snapshot


def statistics_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Per-counter difference of two snapshots (zero entries dropped)."""
    return {
        name: after[name] - before.get(name, 0)
        for name in after
        if after[name] != before.get(name, 0)
    }


def _delta_queries_symbols(delta: Dict[str, float]) -> Tuple[int, int]:
    """Executed (queries, symbols) of a chunk delta, whatever the oracle type."""
    if "membership_queries" in delta or "membership_symbols" in delta:
        return (
            int(delta.get("membership_queries", 0)),
            int(delta.get("membership_symbols", 0)),
        )
    # Polca counts policy-level queries instead.
    return int(delta.get("policy_queries", 0)), int(delta.get("policy_symbols", 0))


def answer_words_in_worker(
    words: Sequence[Word],
) -> Tuple[int, List[OutputWord], Dict[str, float]]:
    """Answer a suite chunk against this worker's oracle.

    Returns ``(worker_id, answers, statistics_delta)`` where the delta
    covers only this chunk (per-worker totals are kept by the parent).  The
    chunk goes through
    :func:`~repro.learning.query_engine.output_query_batch`, so worker-side
    deduplication and prefix subsumption apply exactly as in a serial run.
    """
    from repro.learning.query_engine import output_query_batch

    oracle = _WORKER_ORACLE
    if oracle is None:  # pragma: no cover - initializer always runs first
        raise LearningError("pool worker was not initialized with an oracle factory")
    before = statistics_snapshot(oracle)
    answers = output_query_batch(oracle, words)
    delta = statistics_delta(before, statistics_snapshot(oracle))
    return (os.getpid(), [tuple(outputs) for outputs in answers], delta)


# ------------------------------------------------------------- the shared pool


class WorkerPool:
    """A process pool shared by the membership and equivalence oracle sides.

    The pool owns the :class:`~concurrent.futures.ProcessPoolExecutor`
    (created lazily on first submit, with :func:`initialize_worker` building
    each worker's oracle from ``oracle_factory``) and the per-worker
    executed-query accounting, so one ``--workers N`` flag parallelizes a
    whole learning run: the observation table answers its round batches via
    :meth:`answer_batch`, the conformance tester streams suite chunks via
    :meth:`submit`/:meth:`collect`, and both sides' counts land in the same
    ``worker_query_counts`` / ``worker_symbol_counts`` dictionaries.

    ``workers=1`` is a valid serial configuration: :attr:`parallel` is
    False, no executor is ever created, and callers fall back to in-process
    execution.  Call :meth:`close` (or use the pool as a context manager)
    to shut the executor down.
    """

    def __init__(
        self,
        oracle_factory: Optional[OracleFactory],
        workers: int,
        *,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and oracle_factory is None:
            raise LearningError(
                "workers > 1 needs an oracle_factory so pool workers can "
                "rebuild the system under test (see repro.learning.parallel)"
            )
        self.oracle_factory = oracle_factory
        self.workers = workers
        self.start_method = start_method
        #: Executed queries per pool worker, keyed by worker PID.
        self.worker_query_counts: Dict[int, int] = {}
        #: Executed symbols per pool worker, keyed by worker PID.
        self.worker_symbol_counts: Dict[int, int] = {}
        #: Full cumulative statistics delta per pool worker, keyed by PID —
        #: every counter of :func:`statistics_snapshot` (Polca probes/block
        #: accesses, frontend cache hits, backend loads, ...).
        self.worker_statistics: Dict[int, Dict[str, float]] = {}
        #: Dataclass statistics objects worker deltas merge into on collect
        #: (matched by field name).  The pipeline registers the parent's
        #: ``PolcaStatistics`` here so Table 2/4 probe columns stay
        #: worker-count-invariant instead of reading 0 under ``--workers``.
        self.merge_targets: List[object] = []
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------- lifecycle

    @property
    def parallel(self) -> bool:
        """True when this pool actually fans out (more than one worker)."""
        return self.workers > 1

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method is not None
                else None
            )
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=initialize_worker,
                initargs=(self.oracle_factory,),
            )
        return self._executor

    def close(self) -> None:
        """Shut down the executor (idempotent; a no-op when never used)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----------------------------------------------------------- chunk API

    def submit(self, words: Sequence[Word]) -> Future:
        """Ship one chunk of words to a pool worker; returns its future."""
        return self._ensure_executor().submit(
            answer_words_in_worker, [tuple(word) for word in words]
        )

    def collect(
        self, future: Future, words: Sequence[Word], *, statistics=None
    ) -> List[OutputWord]:
        """Wait for a submitted chunk, record accounting, return its answers.

        Callers collect futures **in submission order** so merges into the
        shared trie stay deterministic regardless of which worker finished
        first.  When ``statistics`` (a
        :class:`~repro.learning.oracles.QueryStatistics`) is given, the
        chunk's worker-side executed queries and symbols are folded into its
        ``membership_queries`` / ``membership_symbols``, and the chunk's
        *full* statistics delta is folded field-by-field into every
        registered :attr:`merge_targets` dataclass (the pipeline registers
        the parent's ``PolcaStatistics``) — worker executions are real
        measurements against the system under learning, so reports (Table
        2/4 query *and probe* columns) stay comparable across worker
        counts.
        """
        worker_id, worker_answers, delta = future.result()
        queries, symbols = _delta_queries_symbols(delta)
        self.worker_query_counts[worker_id] = (
            self.worker_query_counts.get(worker_id, 0) + queries
        )
        self.worker_symbol_counts[worker_id] = (
            self.worker_symbol_counts.get(worker_id, 0) + symbols
        )
        accumulated = self.worker_statistics.setdefault(worker_id, {})
        for name, value in delta.items():
            accumulated[name] = accumulated.get(name, 0) + value
        if statistics is not None:
            statistics.membership_queries += queries
            statistics.membership_symbols += symbols
        for target in self.merge_targets:
            if not is_dataclass(target):  # pragma: no cover - defensive
                continue
            for field in fields(target):
                if field.name in delta:
                    setattr(
                        target, field.name, getattr(target, field.name) + delta[field.name]
                    )
        answers: List[OutputWord] = []
        for word, outputs in zip(words, worker_answers):
            outputs = tuple(outputs)
            if len(outputs) != len(word):
                raise OutputLengthMismatchError(word, outputs)
            answers.append(outputs)
        return answers

    # ----------------------------------------------------------- batch API

    def answer_batch(
        self,
        oracle,
        words: Sequence[Word],
        *,
        chunk_size: int = 64,
    ) -> List[OutputWord]:
        """Answer one whole batch across the pool (the table-fill hot path).

        The batch is deduplicated and prefix-subsumed exactly like the
        serial engine, words the shared cache already knows are never
        shipped, and the remaining maximal words are split into
        ``chunk_size`` chunks answered by the workers.  Results are merged
        **in chunk-index order** — through ``oracle.record_external`` when
        the oracle is a shared :class:`~repro.learning.oracles.\
CachedMembershipOracle`, so worker answers feed the learner's cache and
        still trip non-determinism detection — and every requested word
        (duplicate, prefix or miss) is served back in input order, making a
        parallel fill bit-identical to a serial one.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        words = [tuple(word) for word in words]
        cached_answer = getattr(oracle, "cached_answer", None)
        record_external = getattr(oracle, "record_external", None)
        statistics = getattr(oracle, "statistics", None)
        lookup = cached_answer if cached_answer is not None else lambda word: None
        already_cached, cached, missing = partition_batch(words, lookup)
        local = ResponseTrie()
        for word, outputs in cached:
            local.insert(word, outputs)
        if statistics is not None:
            # The same accounting a serial batch records, through the same
            # partition — reports stay comparable across worker counts.
            statistics.record_batch(len(words), already_cached, len(missing))
        pending: List[Tuple[List[Word], Future]] = []
        for start in range(0, len(missing), chunk_size):
            chunk = missing[start : start + chunk_size]
            pending.append((chunk, self.submit(chunk)))
        for chunk, future in pending:  # chunk-index order: deterministic merges
            chunk_answers = self.collect(future, chunk, statistics=statistics)
            for word, outputs in zip(chunk, chunk_answers):
                if record_external is not None:
                    record_external(word, outputs)
                local.insert(word, outputs)
            if statistics is not None:
                statistics.parallel_chunks += 1
                statistics.parallel_words += len(chunk)
        return serve_from_trie(words, local)

"""Process-parallel conformance testing: oracle factories and pool workers.

Conformance testing dominates every simulator-backed learning run (the
Wp-suite of Section 3.3 grows with ``|H|`` and exponentially with the test
depth ``k``), and its test words are independent of each other — the
classic embarrassingly parallel shape.  The missing piece for a
:class:`concurrent.futures.ProcessPoolExecutor` is that worker processes
cannot share the live system under learning: a simulator oracle holds
mutable state and (for the hardware path) a whole simulated CPU.

This module closes that gap with *oracle factories*: small picklable
descriptions of how to rebuild a fresh membership oracle inside a worker
process.  The pool is created with the factory as its initializer argument,
so every worker builds its system under test exactly once and then answers
suite chunks against it; answers travel back to the parent where
:class:`~repro.learning.equivalence.ConformanceEquivalenceOracle` merges
them into the shared :class:`~repro.learning.query_engine.ResponseTrie` —
parallel answers still feed the shared cache and still trip the
non-determinism detection of Section 7.1.

Because every factory rebuilds a *deterministic* system from the same
description, a parallel run answers every suite word identically to a
serial run, and the counterexamples (hence the learned machines) are
bit-identical — the property ``tests/test_differential_learning.py``
checks across the whole policy registry.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Callable, Hashable, List, Protocol, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.errors import LearningError

Input = Hashable
Output = Hashable
Word = Tuple[Input, ...]
OutputWord = Tuple[Output, ...]


class OracleFactory(Protocol):
    """A picklable recipe for building a membership oracle in a worker.

    Implementations must be picklable (the factory is shipped to every pool
    worker once, as the pool initializer argument) and calling them must
    return a *fresh* oracle whose answers are identical to the parent
    process' system under learning.
    """

    def __call__(self):
        """Build and return a fresh membership oracle."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SimulatedPolicyOracleFactory:
    """Rebuild Polca over a software-simulated cache from a registry name.

    This is the factory behind every Table 2 style run: the worker looks
    ``policy_name`` up in the policy registry, instantiates it at
    ``associativity`` and wraps it in the same
    ``SimulatedCacheInterface`` → ``PolcaMembershipOracle`` stack the
    parent uses, so worker answers are bit-identical to serial ones.
    """

    policy_name: str
    associativity: int
    extra_blocks: int = 2

    def __call__(self):
        from repro.polca.algorithm import PolcaMembershipOracle
        from repro.polca.interfaces import SimulatedCacheInterface
        from repro.policies.registry import make_policy

        policy = make_policy(self.policy_name, self.associativity)
        interface = SimulatedCacheInterface(policy, extra_blocks=self.extra_blocks)
        return PolcaMembershipOracle(interface)


@dataclass(frozen=True)
class CacheInterfaceOracleFactory:
    """Rebuild Polca over a pickled copy of an arbitrary cache interface.

    The generic fallback for cache interfaces that are not registry-backed
    simulated caches — e.g. the CacheQuery-on-simulated-hardware path of
    Table 4.  Polca's probes always replay from the reset state, so a
    pickled snapshot of the interface behaves identically to the original
    no matter what state it was captured in.
    """

    cache: object

    def __call__(self):
        from repro.polca.algorithm import PolcaMembershipOracle

        return PolcaMembershipOracle(self.cache)


@dataclass(frozen=True)
class MealyMachineOracleFactory:
    """Rebuild a :class:`~repro.learning.oracles.MealyMachineOracle` from its machine."""

    machine: MealyMachine

    def __call__(self):
        from repro.learning.oracles import MealyMachineOracle

        return MealyMachineOracle(self.machine)


@dataclass(frozen=True)
class FunctionOracleFactory:
    """Rebuild a :class:`~repro.learning.oracles.FunctionOracle` from a picklable callable.

    ``function`` must be importable from the worker (a module-level
    function, not a lambda or closure) — the usual pickling rule.
    """

    function: Callable[[Word], OutputWord]

    def __call__(self):
        from repro.learning.oracles import FunctionOracle

        return FunctionOracle(self.function)


def _is_registry_default(policy) -> bool:
    """True when ``policy`` equals what the registry builds for its name.

    Matching on the name alone is not enough: e.g. ``SRRIPPolicy(2,
    variant="HP", bits=3)`` carries the registry name ``SRRIP-HP`` but a
    non-default ``bits`` — a worker rebuilding it from the name would
    simulate a *different* policy and the divergence would surface as a
    spurious non-determinism error.  Policies are pure (all mutable state
    lives outside them), so comparing type and configured attributes
    against a freshly built registry instance decides it.
    """
    from repro.policies.registry import available_policies, make_policy

    name = getattr(policy, "name", "")
    if not name or name.upper() not in available_policies():
        return False
    try:
        default = make_policy(name, policy.associativity)
    except Exception:
        return False
    return type(default) is type(policy) and default.__dict__ == policy.__dict__


def oracle_factory_for_cache(cache) -> OracleFactory:
    """Derive an :class:`OracleFactory` for a Polca cache interface.

    Simulated caches whose policy *is* the registry default for its name
    are described by (policy name, associativity) so workers rebuild them
    from scratch; any other interface — including registry policies with
    non-default parameters — is shipped as a pickled snapshot.  Raises
    :class:`~repro.errors.LearningError` when neither works.
    """
    from repro.polca.interfaces import SimulatedCacheInterface

    if isinstance(cache, SimulatedCacheInterface) and _is_registry_default(cache.policy):
        extra = len(cache.block_universe()) - cache.associativity
        return SimulatedPolicyOracleFactory(
            cache.policy.name.upper(), cache.associativity, extra
        )
    try:
        pickle.dumps(cache)
    except Exception as exc:
        raise LearningError(
            f"cache interface {cache!r} cannot be shipped to worker processes; "
            "pass an explicit oracle_factory"
        ) from exc
    return CacheInterfaceOracleFactory(cache)


# ------------------------------------------------------------- worker side

#: The per-process oracle, built once by :func:`initialize_worker`.
_WORKER_ORACLE = None


def initialize_worker(factory: OracleFactory) -> None:
    """Pool initializer: build this worker's oracle from the factory."""
    global _WORKER_ORACLE
    _WORKER_ORACLE = factory()


def _executed_counters(oracle) -> Tuple[int, int]:
    """Read (queries, symbols) counters off any oracle's statistics object."""
    statistics = getattr(oracle, "statistics", None)
    if statistics is None:
        return 0, 0
    queries = getattr(statistics, "membership_queries", None)
    symbols = getattr(statistics, "membership_symbols", None)
    if queries is None:  # Polca counts policy-level queries instead
        queries = getattr(statistics, "policy_queries", 0)
        symbols = getattr(statistics, "policy_symbols", 0)
    return int(queries), int(symbols or 0)


def answer_words_in_worker(words: Sequence[Word]) -> Tuple[int, List[OutputWord], int, int]:
    """Answer a suite chunk against this worker's oracle.

    Returns ``(worker_id, answers, executed_queries, executed_symbols)``
    where the counts cover only this chunk (per-worker totals are kept by
    the parent).  The chunk goes through
    :func:`~repro.learning.query_engine.output_query_batch`, so worker-side
    deduplication and prefix subsumption apply exactly as in a serial run.
    """
    from repro.learning.query_engine import output_query_batch

    oracle = _WORKER_ORACLE
    if oracle is None:  # pragma: no cover - initializer always runs first
        raise LearningError("pool worker was not initialized with an oracle factory")
    queries_before, symbols_before = _executed_counters(oracle)
    answers = output_query_batch(oracle, words)
    queries_after, symbols_after = _executed_counters(oracle)
    return (
        os.getpid(),
        [tuple(outputs) for outputs in answers],
        queries_after - queries_before,
        symbols_after - symbols_before,
    )

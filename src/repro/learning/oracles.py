"""Membership oracles: the "teacher" side of the learning loop.

A membership oracle answers *output queries*: given an input word, it
returns the word of outputs the system under learning produces when reading
it from its initial state.  (For Mealy machines this is the natural
formulation of Angluin's membership queries.)

The module provides:

* :class:`MembershipOracle` — the protocol every oracle implements;
* :class:`FunctionOracle` / :class:`MealyMachineOracle` — adapters for plain
  callables and for known machines (used in tests and for conformance
  checks against reference policies);
* :class:`CachedMembershipOracle` — a prefix-sharing cache around any oracle,
  mirroring the LevelDB response cache of CacheQuery's frontend; it also
  detects non-determinism (two executions of the same prefix giving
  different outputs), which the paper uses to reject bad reset sequences;
* :class:`QueryStatistics` — counters reported by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Protocol, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.errors import NonDeterminismError

Input = Hashable
Output = Hashable
Word = Tuple[Input, ...]
OutputWord = Tuple[Output, ...]


@dataclass
class QueryStatistics:
    """Counters describing the cost of a learning run."""

    membership_queries: int = 0
    membership_symbols: int = 0
    equivalence_queries: int = 0
    test_words: int = 0
    cache_hits: int = 0

    def record_query(self, length: int) -> None:
        """Record one membership query of ``length`` symbols."""
        self.membership_queries += 1
        self.membership_symbols += length

    def merge(self, other: "QueryStatistics") -> "QueryStatistics":
        """Return a new statistics object summing both operands."""
        return QueryStatistics(
            self.membership_queries + other.membership_queries,
            self.membership_symbols + other.membership_symbols,
            self.equivalence_queries + other.equivalence_queries,
            self.test_words + other.test_words,
            self.cache_hits + other.cache_hits,
        )


class MembershipOracle(Protocol):
    """Protocol for output-query oracles."""

    def output_query(self, word: Sequence[Input]) -> OutputWord:
        """Return the output word produced by the SUL when reading ``word``."""
        ...  # pragma: no cover - protocol


class FunctionOracle:
    """Wrap a plain callable ``word -> outputs`` as a membership oracle."""

    def __init__(self, function: Callable[[Word], OutputWord]) -> None:
        self._function = function
        self.statistics = QueryStatistics()

    def output_query(self, word: Sequence[Input]) -> OutputWord:
        word = tuple(word)
        self.statistics.record_query(len(word))
        return tuple(self._function(word))


class MealyMachineOracle:
    """A membership oracle backed by a known Mealy machine.

    Used for learning from "white box" models in tests, and as the reference
    teacher in the scalability study where the software-simulated cache can
    be bypassed.
    """

    def __init__(self, machine: MealyMachine) -> None:
        self.machine = machine
        self.statistics = QueryStatistics()

    def output_query(self, word: Sequence[Input]) -> OutputWord:
        word = tuple(word)
        self.statistics.record_query(len(word))
        return self.machine.run(word)


class CachedMembershipOracle:
    """A prefix-sharing response cache around another membership oracle.

    Every answered query also answers all of its prefixes, so the cache
    stores outputs per word and serves prefixes directly.  When a cached
    prefix disagrees with a later answer for the same word the underlying
    system is not deterministic (or its reset is broken) and a
    :class:`~repro.errors.NonDeterminismError` is raised, mirroring how the
    paper detects incorrect reset sequences (Section 7.1).
    """

    def __init__(self, delegate: MembershipOracle) -> None:
        self._delegate = delegate
        self._cache: Dict[Word, OutputWord] = {}
        self.statistics = QueryStatistics()

    def output_query(self, word: Sequence[Input]) -> OutputWord:
        word = tuple(word)
        cached = self._cache.get(word)
        if cached is not None:
            self.statistics.cache_hits += 1
            return cached
        self.statistics.record_query(len(word))
        outputs = tuple(self._delegate.output_query(word))
        if len(outputs) != len(word):
            raise NonDeterminismError(word, outputs, word)
        self._check_consistency(word, outputs)
        # Store the word and all its prefixes.
        for length in range(1, len(word) + 1):
            self._cache.setdefault(word[:length], outputs[:length])
        return outputs

    def _check_consistency(self, word: Word, outputs: OutputWord) -> None:
        for length in range(1, len(word) + 1):
            cached = self._cache.get(word[:length])
            if cached is not None and cached != outputs[:length]:
                raise NonDeterminismError(word[:length], cached, outputs[:length])

    @property
    def size(self) -> int:
        """Number of cached words (including implied prefixes)."""
        return len(self._cache)

    def clear(self) -> None:
        """Drop all cached responses."""
        self._cache.clear()

"""Membership oracles: the "teacher" side of the learning loop.

A membership oracle answers *output queries*: given an input word, it
returns the word of outputs the system under learning produces when reading
it from its initial state.  (For Mealy machines this is the natural
formulation of Angluin's membership queries.)

The module provides:

* :class:`MembershipOracle` — the protocol every oracle implements; the
  optional batched/resumable extensions are documented in
  :mod:`repro.learning.query_engine`;
* :class:`FunctionOracle` / :class:`MealyMachineOracle` — adapters for plain
  callables and for known machines (used in tests and for conformance
  checks against reference policies); both implement ``output_query_batch``
  and the machine adapter additionally supports resume-from-state;
* :class:`CachedMembershipOracle` — the trie-backed response cache of the
  query engine, mirroring the LevelDB response cache of CacheQuery's
  frontend; it shares prefix storage structurally, reuses the longest
  cached prefix (executing only the un-cached suffix when the delegate
  supports resume), and detects non-determinism (two executions of the same
  prefix giving different outputs), which the paper uses to reject bad
  reset sequences;
* :class:`DictCachedMembershipOracle` — the pre-trie, per-word dictionary
  cache, retained as the baseline for ``benchmarks/bench_query_engine.py``;
* :class:`QueryStatistics` — counters reported by the experiment harness.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Dict, Hashable, List, Optional, Protocol, Sequence, Tuple

from repro.core.mealy import MealyMachine
from repro.errors import NonDeterminismError, OutputLengthMismatchError
from repro.learning.query_engine import (
    ResponseTrie,
    batch_via_single_queries,
    partition_batch,
    supports_batching,
    supports_resume,
)

Input = Hashable
Output = Hashable
Word = Tuple[Input, ...]
OutputWord = Tuple[Output, ...]


@dataclass
class QueryStatistics:
    """Counters describing the cost of a learning run."""

    membership_queries: int = 0
    membership_symbols: int = 0
    equivalence_queries: int = 0
    test_words: int = 0
    cache_hits: int = 0
    #: Number of batch calls that reached this oracle.
    batches: int = 0
    #: Batch words answered by intra-batch deduplication or prefix
    #: subsumption (slicing another batch member's answer) rather than by a
    #: pre-existing cache entry or an execution.
    subsumed_words: int = 0
    #: Symbols answered by resuming from a cached prefix instead of
    #: re-executing it (only oracles with resume support contribute).
    resumed_symbols: int = 0
    #: Conformance-suite words dropped by a ``max_tests`` truncation — when
    #: non-zero the (|H| + k)-completeness guarantee of Corollary 3.4 is void.
    tests_skipped: int = 0
    #: Suite chunks shipped to pool workers by the parallel conformance path.
    parallel_chunks: int = 0
    #: Suite words answered by pool workers (and merged back into the trie).
    parallel_words: int = 0

    def record_query(self, length: int) -> None:
        """Record one membership query of ``length`` symbols."""
        self.membership_queries += 1
        self.membership_symbols += length

    def record_batch(self, total: int, already_cached: int, missing: int) -> None:
        """Record one batch call partitioned by the cache (see
        :func:`~repro.learning.query_engine.partition_batch`): ``total``
        requested words, ``already_cached`` of them genuine cache hits, and
        ``missing`` maximal words left to execute — the remainder was served
        by intra-batch deduplication or prefix subsumption."""
        self.batches += 1
        self.cache_hits += already_cached
        self.subsumed_words += total - already_cached - missing

    def merge(self, other: "QueryStatistics") -> "QueryStatistics":
        """Return a new statistics object summing both operands."""
        return QueryStatistics(
            **{
                field.name: getattr(self, field.name) + getattr(other, field.name)
                for field in fields(QueryStatistics)
            }
        )


class MembershipOracle(Protocol):
    """Protocol for output-query oracles.

    ``output_query`` is mandatory.  Oracles may additionally implement the
    batched/resumable extensions described in
    :mod:`repro.learning.query_engine` (``output_query_batch``,
    ``output_query_resume`` + ``supports_resume``); consumers discover them
    through :func:`repro.learning.query_engine.supports_batching` /
    ``supports_resume`` and fall back to word-by-word queries otherwise.
    """

    def output_query(self, word: Sequence[Input]) -> OutputWord:
        """Return the output word produced by the SUL when reading ``word``."""
        ...  # pragma: no cover - protocol


class FunctionOracle:
    """Wrap a plain callable ``word -> outputs`` as a membership oracle.

    The batched form assumes the callable is deterministic and prefix-closed
    (the answer to a prefix is the prefix of the answer), which is exactly
    the Mealy output-query semantics every consumer in this library relies
    on.
    """

    def __init__(self, function: Callable[[Word], OutputWord]) -> None:
        self._function = function
        self.statistics = QueryStatistics()

    def output_query(self, word: Sequence[Input]) -> OutputWord:
        word = tuple(word)
        self.statistics.record_query(len(word))
        return tuple(self._function(word))

    def output_query_batch(self, words: Sequence[Sequence[Input]]) -> List[OutputWord]:
        """Answer a batch of words, executing only its maximal members."""
        self.statistics.batches += 1
        return batch_via_single_queries(self, words)


class MealyMachineOracle:
    """A membership oracle backed by a known Mealy machine.

    Used for learning from "white box" models in tests, and as the reference
    teacher in the scalability study where the software-simulated cache can
    be bypassed.  Because the machine's state after any executed word is
    known, the oracle supports *resume*: answering ``prefix + suffix`` by
    running only ``suffix`` from the state ``prefix`` reaches — the
    behaviour a session-keeping hardware backend would offer.
    """

    supports_resume = True

    def __init__(self, machine: MealyMachine) -> None:
        self.machine = machine
        self.statistics = QueryStatistics()

    def output_query(self, word: Sequence[Input]) -> OutputWord:
        word = tuple(word)
        self.statistics.record_query(len(word))
        return self.machine.run(word)

    def output_query_resume(
        self,
        prefix: Sequence[Input],
        suffix: Sequence[Input],
        prefix_outputs: Optional[Sequence[Output]] = None,
    ) -> OutputWord:
        """Return the outputs of ``suffix`` after ``prefix``, executing only ``suffix``.

        ``prefix_outputs`` (the cached answer of ``prefix``) is part of the
        resume protocol for oracles that rebuild their resume state from
        past observations (Polca); a machine-backed oracle knows its state
        directly and ignores it.
        """
        suffix = tuple(suffix)
        self.statistics.record_query(len(suffix))
        self.statistics.resumed_symbols += len(suffix)
        state = self.machine.state_after(tuple(prefix))
        return self.machine.run(suffix, state)

    def output_query_batch(self, words: Sequence[Sequence[Input]]) -> List[OutputWord]:
        """Answer a batch of words, executing only its maximal members."""
        self.statistics.batches += 1
        return batch_via_single_queries(self, words)


class CachedMembershipOracle:
    """The trie-backed response cache of the batched query engine.

    Every answered query also answers all of its prefixes; the
    :class:`~repro.learning.query_engine.ResponseTrie` stores them
    structurally, so the cache needs O(1) extra space per *new* symbol
    instead of one dictionary entry per prefix.  On a miss the longest
    cached prefix is reused: when the delegate supports resume only the
    un-cached suffix is executed, otherwise the full word is executed once.
    Conflicting observations for the same prefix raise a
    :class:`~repro.errors.NonDeterminismError`, mirroring how the paper
    detects incorrect reset sequences (Section 7.1).
    """

    def __init__(
        self,
        delegate: MembershipOracle,
        *,
        store=None,
        namespace: Sequence[Hashable] = None,
    ) -> None:
        """Wrap ``delegate`` with the trie-backed cache.

        ``store`` (a :class:`~repro.store.PrefixStore`) lets callers place
        the trie in a shared — possibly path-backed — store, e.g. the same
        store instance the CacheQuery frontend's ``QueryCache`` uses;
        ``namespace`` picks the trie's namespace key inside it (defaults to
        the learning namespace).
        """
        from repro.learning.query_engine import DEFAULT_LEARNING_NAMESPACE

        self._delegate = delegate
        self._trie = ResponseTrie(
            store=store,
            namespace=namespace if namespace is not None else DEFAULT_LEARNING_NAMESPACE,
        )
        self._resume = supports_resume(delegate)
        self.statistics = QueryStatistics()

    # ----------------------------------------------------------- single query

    def output_query(self, word: Sequence[Input]) -> OutputWord:
        word = tuple(word)
        cached = self._trie.lookup(word)
        if cached is not None:
            self.statistics.cache_hits += 1
            return cached
        return self._execute(word)

    def _execute(self, word: Word) -> OutputWord:
        """Answer an un-cached word, reusing the longest cached prefix."""
        prefix_length, prefix_outputs = self._trie.longest_cached_prefix(word)
        if self._resume and 0 < prefix_length < len(word):
            suffix = word[prefix_length:]
            self.statistics.record_query(len(suffix))
            self.statistics.resumed_symbols += len(suffix)
            suffix_outputs = tuple(
                self._delegate.output_query_resume(
                    word[:prefix_length], suffix, prefix_outputs=prefix_outputs
                )
            )
            if len(suffix_outputs) != len(suffix):
                raise OutputLengthMismatchError(suffix, suffix_outputs)
            outputs = prefix_outputs + suffix_outputs
        else:
            self.statistics.record_query(len(word))
            outputs = tuple(self._delegate.output_query(word))
            if len(outputs) != len(word):
                raise OutputLengthMismatchError(word, outputs)
        self._trie.insert(word, outputs)
        return outputs

    # ----------------------------------------------------------- batch query

    def output_query_batch(self, words: Sequence[Sequence[Input]]) -> List[OutputWord]:
        """Answer a batch: dedupe, prefix-subsume, then execute only misses.

        Cached words are served from the trie; the remaining maximal words
        are executed (through the delegate's own batch entry point when it
        has one) and inserted, after which every requested word — duplicate,
        prefix or miss — is answered from the trie.
        """
        words = [tuple(word) for word in words]
        already_cached, _, missing = partition_batch(words, self._trie.lookup)
        self.statistics.record_batch(len(words), already_cached, len(missing))
        if missing and supports_batching(self._delegate) and not self._resume:
            answered = self._delegate.output_query_batch(missing)
            for word, outputs in zip(missing, answered):
                outputs = tuple(outputs)
                if len(outputs) != len(word):
                    raise OutputLengthMismatchError(word, outputs)
                self.statistics.record_query(len(word))
                self._trie.insert(word, outputs)
        else:
            # Execute one by one so every answered word's prefixes are cached
            # before the next miss — later words in the batch then resume
            # from (or are fully served by) earlier answers.
            for word in missing:
                self._execute(word)
        results: List[OutputWord] = []
        for word in words:
            outputs = self._trie.lookup(word)
            if outputs is None:  # pragma: no cover - every word was inserted
                raise OutputLengthMismatchError(word, ())
            results.append(outputs)
        return results

    # --------------------------------------------------- external observations

    def cached_answer(self, word: Sequence[Input]) -> "OutputWord | None":
        """Peek at the cache: the stored output word, or ``None`` — no statistics,
        no delegate.  Used by the parallel conformance path to decide which
        suite words must be shipped to pool workers."""
        return self._trie.lookup(tuple(word))

    def record_external(self, word: Sequence[Input], outputs: Sequence[Output]) -> None:
        """Merge an answer obtained elsewhere (e.g. by a pool worker) into the trie.

        The insert performs the same consistency check as a locally executed
        query: an answer disagreeing with any cached prefix raises
        :class:`~repro.errors.NonDeterminismError`, so parallel execution
        keeps the broken-reset detection of Section 7.1 intact.
        """
        word = tuple(word)
        outputs = tuple(outputs)
        if len(outputs) != len(word):
            raise OutputLengthMismatchError(word, outputs)
        self._trie.insert(word, outputs)

    # ------------------------------------------------------------- inspection

    @property
    def size(self) -> int:
        """Number of cached prefixes (trie nodes below the root)."""
        return len(self._trie)

    def clear(self) -> None:
        """Drop all cached responses."""
        self._trie.clear()


class DictCachedMembershipOracle:
    """The pre-trie response cache: one dictionary entry per cached prefix.

    This is the seed implementation of :class:`CachedMembershipOracle`,
    retained verbatim (minus the length-mismatch bug) so
    ``benchmarks/bench_query_engine.py`` can measure the engine against the
    exact baseline it replaced.  New code should use the trie-backed cache.
    """

    def __init__(self, delegate: MembershipOracle) -> None:
        self._delegate = delegate
        self._cache: Dict[Word, OutputWord] = {}
        self.statistics = QueryStatistics()

    def output_query(self, word: Sequence[Input]) -> OutputWord:
        word = tuple(word)
        cached = self._cache.get(word)
        if cached is not None:
            self.statistics.cache_hits += 1
            return cached
        self.statistics.record_query(len(word))
        outputs = tuple(self._delegate.output_query(word))
        if len(outputs) != len(word):
            raise OutputLengthMismatchError(word, outputs)
        self._check_consistency(word, outputs)
        # Store the word and all its prefixes.
        for length in range(1, len(word) + 1):
            self._cache.setdefault(word[:length], outputs[:length])
        return outputs

    def output_query_batch(self, words: Sequence[Sequence[Input]]) -> List[OutputWord]:
        """Answer a batch word by word, in order — the seed's exact behaviour.

        No deduplication or prefix-subsumption happens here on purpose: this
        class is the measurement baseline, and the seed executed each word
        individually (relying only on the per-word dictionary for repeats).
        """
        self.statistics.batches += 1
        return [self.output_query(word) for word in words]

    def _check_consistency(self, word: Word, outputs: OutputWord) -> None:
        for length in range(1, len(word) + 1):
            cached = self._cache.get(word[:length])
            if cached is not None and cached != outputs[:length]:
                raise NonDeterminismError(word[:length], cached, outputs[:length])

    @property
    def size(self) -> int:
        """Number of cached words (including implied prefixes)."""
        return len(self._cache)

    def clear(self) -> None:
        """Drop all cached responses."""
        self._cache.clear()

"""Conformance-test suite generation: W-method and Wp-method.

The paper approximates equivalence queries by conformance testing
(Section 3.3): a test suite that is *m-complete* for the hypothesis ``H``
guarantees that any policy with fewer than ``m`` states that agrees with
``H`` on the suite is trace-equivalent to it (Theorem 3.3).  The classic
constructions are:

* the **W-method** (Chow): ``P · Σ^{≤k+1} · W`` where ``P`` is a transition
  cover of ``H``, ``W`` a characterization set, and ``k`` the *depth* — the
  number of extra states beyond ``|H|`` the suite can expose;
* the **Wp-method** (Fujiwara et al., the method named in the paper): the
  same first phase with the state cover, and a cheaper second phase that
  uses per-state identification sets instead of the full ``W``.

Both constructions are provided; the equivalence oracle defaults to the
Wp-method with depth ``k = 1`` as in the paper's experiments.

Streaming
---------

At depth ≥ 2 the suites grow into the hundreds of thousands of words
(PLRU-8: ~350k), and materialising them in the parent process used to take
noticeable time before the first test word could be executed or shipped to
a pool worker.  :func:`iter_w_method_suite` / :func:`iter_wp_method_suite`
generate the **same words in the same order** lazily: the covers and
characterization machinery are built eagerly (so a non-minimal machine
still fails fast with :class:`~repro.errors.LearningError`), but the
cross-product enumeration is a generator the conformance tester can drain
chunk by chunk.  The list-returning :func:`w_method_suite` /
:func:`wp_method_suite` are thin wrappers kept for callers that genuinely
need the whole suite (suite-size accounting, tests).

The only per-word state the generators keep is the deduplication set —
O(distinct words) keys, unavoidable for exact parity with the materialised
suites — but words are *yielded* one at a time, so execution overlaps
generation and the parent's queued-word footprint is bounded by the
consumer's in-flight window instead of the full suite.
"""

from __future__ import annotations

from collections import deque
from itertools import product
from typing import (
    Deque,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.mealy import MealyMachine
from repro.errors import LearningError

Input = Hashable
Word = Tuple[Input, ...]


# --------------------------------------------------------------------- covers

def state_cover(machine: MealyMachine) -> Dict[Hashable, Word]:
    """Return a shortest access word for every state (BFS from the initial state)."""
    cover: Dict[Hashable, Word] = {machine.initial_state: ()}
    frontier: List[Hashable] = [machine.initial_state]
    while frontier:
        next_frontier: List[Hashable] = []
        for state in frontier:
            for symbol in machine.inputs:
                successor, _ = machine.step(state, symbol)
                if successor not in cover:
                    cover[successor] = cover[state] + (symbol,)
                    next_frontier.append(successor)
        frontier = next_frontier
    return cover


def transition_cover(machine: MealyMachine) -> List[Word]:
    """Return the transition cover: every state's access word extended by every input."""
    cover = state_cover(machine)
    words: List[Word] = []
    for state in machine.states:
        access = cover.get(state)
        if access is None:
            continue
        for symbol in machine.inputs:
            words.append(access + (symbol,))
    return words


# --------------------------------------------------- characterization machinery

def _distinguishing_suffix(
    machine: MealyMachine,
    state_a: Hashable,
    state_b: Hashable,
    cache: Optional[Dict[frozenset, Word]] = None,
) -> Word:
    """Return a shortest input word on which ``state_a`` and ``state_b`` differ.

    The search is symmetric in its two states (swapping them swaps both
    roles everywhere in the BFS), so an optional ``cache`` keyed by the
    unordered pair lets one suite generation reuse the suffix the
    characterization pass already found when the identification pass asks
    about the same pair — same word either way, just computed once.
    """
    if state_a == state_b:
        raise LearningError("cannot distinguish a state from itself")
    if cache is not None:
        pair_key = frozenset((state_a, state_b))
        hit = cache.get(pair_key)
        if hit is not None:
            return hit
    transitions = machine.transitions
    outputs = machine.outputs
    inputs = machine.inputs
    visited: Set[Tuple[Hashable, Hashable]] = {(state_a, state_b)}
    queue: Deque[Tuple[Hashable, Hashable, Word]] = deque([(state_a, state_b, ())])
    while queue:
        current_a, current_b, word = queue.popleft()
        for symbol in inputs:
            key_a = (current_a, symbol)
            key_b = (current_b, symbol)
            extended = word + (symbol,)
            if outputs[key_a] != outputs[key_b]:
                if cache is not None:
                    cache[pair_key] = extended
                return extended
            pair = (transitions[key_a], transitions[key_b])
            if pair not in visited:
                visited.add(pair)
                queue.append((pair[0], pair[1], extended))
    raise LearningError(
        "states are equivalent; the machine is not minimal"
    )


def characterization_set(
    machine: MealyMachine, *, _suffix_cache: Optional[Dict[frozenset, Word]] = None
) -> List[Word]:
    """Return a characterization set ``W``: suffixes separating every state pair.

    The machine must be minimal (the learner's hypotheses are by
    construction).  The set is built greedily: for every pair of states not
    yet separated by the current ``W``, a shortest distinguishing suffix is
    added.

    Each ``(state, word)`` output tail is computed once and the signature
    lists extended lazily as ``W`` grows, so the greedy pair scan costs
    O(|S|·|W|) machine runs instead of the O(|S|²·|W|) the per-pair
    recomputation used to pay — the returned set is unchanged (same
    suffixes, same order), this is purely how often ``machine.run`` fires.
    """
    states = list(machine.states)
    if len(states) <= 1:
        # Any single-symbol word works as a placeholder so product sets are
        # non-empty.
        return [(machine.inputs[0],)]
    w_set: List[Word] = []
    signatures: Dict[Hashable, List] = {state: [] for state in states}

    def signature(state: Hashable) -> List:
        outputs = signatures[state]
        while len(outputs) < len(w_set):
            outputs.append(machine.run(w_set[len(outputs)], state))
        return outputs

    for i, state_a in enumerate(states):
        for state_b in states[i + 1:]:
            if signature(state_a) == signature(state_b):
                w_set.append(
                    _distinguishing_suffix(machine, state_a, state_b, _suffix_cache)
                )
    return w_set


def identification_sets(
    machine: MealyMachine, *, _suffix_cache: Optional[Dict[frozenset, Word]] = None
) -> Dict[Hashable, List[Word]]:
    """Return per-state identification sets ``W_s`` (for the Wp-method phase 2).

    ``W_s`` distinguishes ``s`` from every other state of the machine.

    Output tails are memoised per ``(state, suffix)`` across the whole
    construction — the same suffix separates many pairs, and without the
    cache the pair scan re-runs it O(|S|²) times.  The returned sets are
    unchanged.
    """
    states = list(machine.states)
    sets: Dict[Hashable, List[Word]] = {}
    tails: Dict[Tuple[Hashable, Word], Tuple] = {}

    def tail(word: Word, state: Hashable) -> Tuple:
        key = (state, word)
        answer = tails.get(key)
        if answer is None:
            answer = machine.run(word, state)
            tails[key] = answer
        return answer

    for state in states:
        suffixes: List[Word] = []

        def separated(other: Hashable) -> bool:
            return any(tail(word, state) != tail(word, other) for word in suffixes)

        for other in states:
            if other == state or separated(other):
                continue
            suffixes.append(
                _distinguishing_suffix(machine, state, other, _suffix_cache)
            )
        if not suffixes:
            suffixes.append((machine.inputs[0],))
        sets[state] = suffixes
    return sets


# ----------------------------------------------------------------- test suites

def _middle_words(alphabet: Sequence[Input], depth: int) -> Iterator[Word]:
    """Yield all words over ``alphabet`` of length 0..depth."""
    for length in range(depth + 1):
        for word in product(alphabet, repeat=length):
            yield word


def iter_w_method_suite(machine: MealyMachine, depth: int = 1) -> Iterator[Word]:
    """Yield the W-method suite ``P · Σ^{≤depth} · W`` lazily (deduplicated).

    Validation and the cover/characterization constructions run eagerly —
    a negative depth or a non-minimal machine raises before the first word
    — but the cross-product enumeration is lazy, in exactly the order the
    materialised :func:`w_method_suite` returns.
    """
    if depth < 0:
        raise LearningError(f"depth must be >= 0, got {depth}")
    prefixes = transition_cover(machine)
    w_set = characterization_set(machine, _suffix_cache={})

    def generate() -> Iterator[Word]:
        seen: Set[Word] = set()
        for prefix in prefixes:
            for middle in _middle_words(machine.inputs, depth):
                for suffix in w_set:
                    word = prefix + middle + suffix
                    if word and word not in seen:
                        seen.add(word)
                        yield word

    return generate()


def w_method_suite(machine: MealyMachine, depth: int = 1) -> List[Word]:
    """Return the W-method test suite ``P · Σ^{≤depth} · W`` (deduplicated)."""
    return list(iter_w_method_suite(machine, depth))


def iter_wp_method_suite(machine: MealyMachine, depth: int = 1) -> Iterator[Word]:
    """Yield the Wp-method suite lazily, in the materialised suite's order.

    Phase 1 checks every state of the hypothesis with the full
    characterization set; phase 2 checks every transition (extended by up to
    ``depth`` extra symbols) with the identification set of the state it is
    supposed to reach.  As with :func:`iter_w_method_suite`, validation and
    the characterization machinery run eagerly; enumeration is lazy.
    """
    if depth < 0:
        raise LearningError(f"depth must be >= 0, got {depth}")
    access = state_cover(machine)
    suffix_cache: Dict[frozenset, Word] = {}
    w_set = characterization_set(machine, _suffix_cache=suffix_cache)

    def generate() -> Iterator[Word]:
        seen: Set[Word] = set()

        # Phase 1: state cover x Sigma^{<=depth} x W.
        for base in access.values():
            for middle in _middle_words(machine.inputs, depth):
                for suffix in w_set:
                    word = base + middle + suffix
                    if word and word not in seen:
                        seen.add(word)
                        yield word

        # Phase 2: transition cover x Sigma^{<=depth} x W_{target state}.
        # The identification sets are built only when phase 2 actually
        # starts: a conformance round whose counterexample surfaces in
        # phase 1 never pays for them (the fail-fast minimality guarantee
        # is unchanged — ``characterization_set`` above already raises on a
        # non-minimal machine, and a machine it accepts cannot make
        # ``identification_sets`` fail).
        ident = identification_sets(machine, _suffix_cache=suffix_cache)
        for state in machine.states:
            base = access.get(state)
            if base is None:
                continue
            for symbol in machine.inputs:
                prefix = base + (symbol,)
                for middle in _middle_words(machine.inputs, depth):
                    stem = prefix + middle
                    target = machine.state_after(stem)
                    for suffix in ident[target]:
                        word = stem + suffix
                        if word and word not in seen:
                            seen.add(word)
                            yield word

    return generate()


def wp_method_suite(machine: MealyMachine, depth: int = 1) -> List[Word]:
    """Return the Wp-method test suite for ``machine`` with the given depth."""
    return list(iter_wp_method_suite(machine, depth))


def suite_total_symbols(suite: Iterable[Word]) -> int:
    """Return the total number of input symbols in a test suite (cost metric)."""
    return sum(len(word) for word in suite)

"""Kearns–Vazirani classification-tree learner for Mealy machines.

Where L* (:class:`~repro.learning.learner.MealyLearner`) refills an
O(|S×Σ|·|E|) observation table on every stabilisation round, the
Kearns–Vazirani learner maintains a *classification tree*: inner nodes
carry distinguishing suffixes, leaves carry access words — one leaf per
discovered state.  A word is classified by *sifting* it down the tree:
at each inner node the oracle answers ``word + suffix`` and the output
tail selects the child to descend into.  Sifting a word whose output
tail has no child discovers a new state on the spot, without a
counterexample.  Each equivalence counterexample is decomposed with the
same Rivest–Schapire binary search as PR 4's suffix machinery and adds
exactly one leaf (state) plus one discriminator, so every round does
only the work the new evidence demands.

The learner plugs in behind the :class:`~repro.learning.learner.ActiveLearner`
interface, so it transparently reuses

* the batched query engine — every sift level of a hypothesis rebuild is
  dispatched as one deduped / prefix-subsumed batch through
  :func:`~repro.learning.query_engine.output_query_batch`;
* the shared :class:`~repro.learning.parallel.WorkerPool` (sift batches
  fan out across processes exactly like table-fill batches);
* the simkernel ``--kernel`` path and ``--resume`` stores, which live
  below the membership oracle and never see which learner is asking.

Mealy-specific subtlety: intermediate KV hypotheses need not be minimal
(two leaves can be merged behaviourally until a discriminator separates
them *in the hypothesis*), but the Wp-method suite generator requires
minimal machines (see :func:`~repro.learning.wpmethod.characterization_set`).
:meth:`KVLearner._stable_hypothesis` therefore repairs minimality
internally: any equivalent state pair yields an internal counterexample
from the pair's lowest common ancestor suffix, which refines the tree
without spending an equivalence query.  This is the classification-tree
analogue of the PR 4 suffix-closure fix — every hypothesis handed to the
conformance tester is minimal, so the minimize-and-warn fallback never
fires.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.mealy import MealyMachine
from repro.errors import BudgetExceeded, LearningError
from repro.learning.learner import ActiveLearner, LearningResult
from repro.learning.oracles import MembershipOracle
from repro.learning.parallel import WorkerPool
from repro.learning.query_engine import output_query_batch

Input = Hashable
Word = Tuple[Input, ...]
OutputWord = Tuple[Hashable, ...]


class _Leaf:
    """A leaf of the classification tree: one discovered state.

    ``access`` is the state's access word; ``state`` its index in creation
    order (the hypothesis state id).  ``parent``/``key`` locate the leaf in
    its parent's child map so a split can replace it in O(1).
    """

    __slots__ = ("access", "state", "parent", "key")

    def __init__(
        self,
        access: Word,
        state: int,
        parent: Optional["_Inner"],
        key: Optional[OutputWord],
    ) -> None:
        self.access = access
        self.state = state
        self.parent = parent
        self.key = key


class _Inner:
    """An inner node: a distinguishing suffix with output-tail children.

    ``chain`` holds the single-symbol suffixes still to be laid out below
    this node: the tree is seeded with one discriminator per input symbol
    (the classification-tree analogue of L*'s initial columns), and the
    chain materialises lazily as sifted words reach each level.

    ``temporary`` marks a discriminator taken verbatim from a
    Rivest–Schapire decomposition (so its length tracks the counterexample,
    not the tree): plain KV never sets it, the TTT refinement
    (:mod:`repro.learning.ttt`) flags split nodes and later finalizes them
    to their shortest verified equivalent.
    """

    __slots__ = ("suffix", "children", "parent", "key", "chain", "temporary")

    def __init__(
        self,
        suffix: Word,
        parent: Optional["_Inner"],
        key: Optional[OutputWord],
        chain: Tuple[Word, ...] = (),
    ) -> None:
        self.suffix = suffix
        self.children: Dict[OutputWord, _Node] = {}
        self.parent = parent
        self.key = key
        self.chain = chain
        self.temporary = False


_Node = Union[_Leaf, _Inner]


class ClassificationTree:
    """The discrimination data structure of the Kearns–Vazirani learner.

    The tree starts as a single leaf for the empty access word (the initial
    state).  Two operations grow it:

    * :meth:`sift` (and the batched sifting inside :meth:`hypothesis`)
      creates a leaf whenever a word's output tail has no child yet —
      sift-based state discovery;
    * :meth:`split` replaces a leaf by an inner node with two children —
      the Rivest–Schapire decomposition of a counterexample.

    Access words are prefix-closed by construction (every new access word
    extends an existing one by a single symbol), which keeps the key
    invariant that the hypothesis agrees with the target on every access
    word — the foundation of the binary-search soundness argument in
    :meth:`refine`.
    """

    def __init__(
        self,
        alphabet: Sequence[Input],
        oracle: MembershipOracle,
        *,
        pool: Optional[WorkerPool] = None,
        chunk_size: int = 64,
    ) -> None:
        if not alphabet:
            raise LearningError("cannot learn over an empty input alphabet")
        self.alphabet = tuple(alphabet)
        self.oracle = oracle
        self.pool = pool
        self.chunk_size = chunk_size
        self._access: List[Word] = []
        self._leaves: Dict[Word, _Leaf] = {}
        #: Growth accounting, reported by the pipeline: how many states each
        #: discovery mechanism contributed and how many internal minimality
        #: repairs ran.
        self.leaves_from_sifting = 0
        self.leaves_from_splits = 0
        self.internal_refinements = 0
        # Seed the tree with one single-symbol discriminator per input (the
        # analogue of L*'s initial columns): the first hypothesis already
        # partitions states by output signature instead of starting from one
        # merged state and paying an equivalence round per output split.
        # The initial state's leaf is created lazily by the first
        # :meth:`hypothesis` call, where ε's chain probes batch together with
        # the speculative transition probes that prefix-subsume them.
        chain = tuple((symbol,) for symbol in self.alphabet)
        self.root: _Node = _Inner(chain[0], None, None, chain[1:])

    # ------------------------------------------------------------- inspection

    @property
    def num_states(self) -> int:
        return len(self._access)

    @property
    def num_discriminators(self) -> int:
        return len(self._access) - 1

    def access_words(self) -> Tuple[Word, ...]:
        """Access words in state order (state ``i`` → ``access_words()[i]``)."""
        return tuple(self._access)

    def access_word(self, state: int) -> Word:
        return self._access[state]

    def discriminators(self) -> Tuple[Word, ...]:
        """All distinguishing suffixes currently in the tree (preorder)."""
        suffixes: List[Word] = []
        stack: List[_Node] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                suffixes.append(node.suffix)
                stack.extend(node.children.values())
        return tuple(suffixes)

    def discriminator_lengths(self) -> Dict[int, int]:
        """Histogram ``{suffix length: count}`` over the tree's discriminators.

        Only discriminators with at least one leaf below them count — a
        chain node that never materialised children is not a discriminator
        the learner ever paid for.
        """
        histogram: Dict[int, int] = {}
        stack: List[_Node] = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner) and node.children:
                histogram[len(node.suffix)] = histogram.get(len(node.suffix), 0) + 1
                stack.extend(node.children.values())
        return histogram

    @property
    def max_discriminator_length(self) -> int:
        """Longest discriminator a sift can currently pay for (0 for a bare tree)."""
        histogram = self.discriminator_lengths()
        return max(histogram) if histogram else 0

    # -------------------------------------------------------------- internals

    def _answer_batch(self, words: Sequence[Word]) -> List[OutputWord]:
        if self.pool is not None and self.pool.parallel:
            return self.pool.answer_batch(self.oracle, words, chunk_size=self.chunk_size)
        return output_query_batch(self.oracle, words)

    def _create_leaf(
        self,
        access: Word,
        parent: Optional[_Inner],
        key: Optional[OutputWord],
        *,
        origin: str,
    ) -> _Leaf:
        leaf = _Leaf(access, len(self._access), parent, key)
        self._access.append(access)
        self._leaves[access] = leaf
        if parent is not None:
            parent.children[key] = leaf
        if origin == "sift":
            self.leaves_from_sifting += 1
        else:
            self.leaves_from_splits += 1
        return leaf

    def _create_child(self, word: Word, node: _Inner, key: OutputWord) -> _Node:
        """Materialise the child for a fresh output tail under ``node``.

        While the seeded single-symbol chain below ``node`` is not exhausted,
        the child is the next chain discriminator; at the chain's bottom the
        word has a genuinely new output signature and becomes a state.
        """
        if node.chain:
            child: _Node = _Inner(node.chain[0], node, key, node.chain[1:])
            node.children[key] = child
            return child
        return self._create_leaf(word, node, key, origin="sift")

    # ------------------------------------------------------------------- sift

    def sift(self, word: Word) -> _Leaf:
        """Classify ``word`` down the tree, one serial query per level.

        Used by tests and single-word callers; :meth:`hypothesis` uses the
        batched level-synchronous variant instead.  Creates a leaf (state)
        when the word's output tail reaches a child slot that is empty.
        """
        word = tuple(word)
        node = self.root
        while isinstance(node, _Inner):
            answer = tuple(self.oracle.output_query(word + node.suffix))
            key = answer[len(word):]
            child = node.children.get(key)
            if child is None:
                child = self._create_child(word, node, key)
            node = child
        return node

    # ------------------------------------------------------------- hypothesis

    def hypothesis(self) -> MealyMachine:
        """Build the hypothesis by sifting every one-symbol extension.

        The sifts run level-synchronously: each iteration gathers the
        ``word + suffix`` probes of *all* transitions still descending and
        answers them in one deduped / prefix-subsumed batch (fanned out
        across the worker pool when one is attached).  New states discovered
        mid-sift enqueue their own outgoing transitions, so the loop runs
        until the transition table closes over the discovered state set.
        Most probes repeat earlier sift levels and are served from the trie
        without re-execution, which is what keeps KV's executed-query count
        below L*'s table refills.
        """
        transitions: Dict[Tuple[int, Input], int] = {}
        # Entries are [state, symbol, word, node] and advance one tree level
        # per batch; an entry is resolved once ``node`` is a leaf.  The first
        # build bootstraps ε's sift (state is None: creates the initial
        # state's leaf, records no transition) alongside state 0's
        # speculative transition sifts, so ε's bare chain probes are
        # prefix-subsumed by the length-2 transition probes in the same batch
        # and never execute on their own.
        active: List[List] = []
        scheduled_states = 0
        if not self._access:
            active.append([None, None, (), self.root])
            for symbol in self.alphabet:
                active.append([0, symbol, (symbol,), self.root])
            scheduled_states = 1

        while True:
            while scheduled_states < len(self._access):
                source = scheduled_states
                base = self._access[source]
                for symbol in self.alphabet:
                    active.append([source, symbol, base + (symbol,), self.root])
                scheduled_states += 1

            still_sifting: List[List] = []
            for entry in active:
                node = entry[3]
                if isinstance(node, _Leaf):
                    if entry[0] is not None:  # ε's bootstrap entry: no edge
                        transitions[(entry[0], entry[1])] = node.state
                else:
                    still_sifting.append(entry)
            active = still_sifting
            if not active:
                if scheduled_states == len(self._access):
                    break
                continue

            probes = [entry[2] + entry[3].suffix for entry in active]
            answers = self._answer_batch(probes)
            for entry, answer in zip(active, answers):
                word, node = entry[2], entry[3]
                key = tuple(answer)[len(word):]
                child = node.children.get(key)
                if child is None:
                    child = self._create_child(word, node, key)
                entry[3] = child

        output_words = [
            self._access[state] + (symbol,)
            for state in range(len(self._access))
            for symbol in self.alphabet
        ]
        answers = self._answer_batch(output_words)
        outputs: Dict[Tuple[int, Input], Hashable] = {}
        index = 0
        for state in range(len(self._access)):
            for symbol in self.alphabet:
                outputs[(state, symbol)] = answers[index][-1]
                index += 1

        return MealyMachine(
            states=list(range(len(self._access))),
            initial_state=0,
            inputs=list(self.alphabet),
            transitions=transitions,
            outputs=outputs,
        )

    # ------------------------------------------------------------- refinement

    def refine(self, hypothesis: MealyMachine, counterexample: Word) -> None:
        """Rivest–Schapire decomposition of a counterexample into one split.

        Binary search over the patched words ``access(state(w[:i])) + w[i:]``
        for the index where agreement with the target flips (the same
        search as :func:`~repro.learning.counterexample
        .process_counterexample_rivest_schapire`, against the tree's access
        map instead of the table's row map).  The flip yields a
        distinguishing suffix and the pair of access words it separates;
        :meth:`split` then turns the confused leaf into an inner node.
        """
        word = tuple(counterexample)
        if not word:
            raise LearningError("counterexample must be a non-empty word")
        access = self._access
        oracle = self.oracle

        def disagrees(split: int) -> bool:
            prefix = word[:split]
            suffix = word[split:]
            patched = access[hypothesis.state_after(prefix)] + suffix
            if not patched:
                return False
            return tuple(oracle.output_query(patched)) != hypothesis.run(patched)

        if not disagrees(0):
            raise LearningError(
                f"spurious counterexample {list(word)}: hypothesis already "
                "agrees with the target"
            )
        low, high = 0, len(word)
        if disagrees(high):
            # Impossible while access words are prefix-closed: the hypothesis
            # agrees with the target on every access word by construction.
            raise LearningError(
                "classification tree is inconsistent: hypothesis disagrees "
                "with the target on an access word"
            )
        while high - low > 1:
            middle = (low + high) // 2
            if disagrees(middle):
                low = middle
            else:
                high = middle

        suffix = word[high:]
        source = hypothesis.state_after(word[:low])
        symbol = word[low]
        new_access = access[source] + (symbol,)
        confused_state = hypothesis.transitions[(source, symbol)]
        self.split(self._leaves[access[confused_state]], new_access, suffix)

    def split(self, leaf: _Leaf, new_access: Word, suffix: Word) -> _Leaf:
        """Replace ``leaf`` by an inner node distinguishing it from a new state.

        ``suffix`` must produce different output tails after ``leaf.access``
        and ``new_access``; the old leaf and a fresh leaf for ``new_access``
        become the inner node's two children, keyed by those tails.
        """
        suffix = tuple(suffix)
        new_access = tuple(new_access)
        if not suffix:
            raise LearningError("a Mealy split needs a non-empty distinguishing suffix")
        answers = self._answer_batch([leaf.access + suffix, new_access + suffix])
        old_tail = tuple(answers[0])[len(leaf.access):]
        new_tail = tuple(answers[1])[len(new_access):]
        if old_tail == new_tail:
            raise LearningError(
                f"suffix {list(suffix)} does not distinguish access words "
                f"{list(leaf.access)} and {list(new_access)}"
            )
        inner = _Inner(suffix, leaf.parent, leaf.key)
        if leaf.parent is None:
            self.root = inner
        else:
            leaf.parent.children[leaf.key] = inner
        leaf.parent = inner
        leaf.key = old_tail
        inner.children[old_tail] = leaf
        new_leaf = self._create_leaf(new_access, inner, new_tail, origin="split")
        self._on_split(inner, leaf, new_leaf)
        return new_leaf

    def _on_split(self, inner: _Inner, old_leaf: _Leaf, new_leaf: _Leaf) -> None:
        """Hook invoked after :meth:`split` wires a new inner node in.

        Plain KV does nothing; the TTT tree marks ``inner`` temporary,
        finalizes it to a shorter discriminator when it can, and re-enqueues
        only the transition words resident in the split subtree.
        """

    def lca_suffix(self, state_a: int, state_b: int) -> Word:
        """Distinguishing suffix at the lowest common ancestor of two leaves.

        By tree construction the target produces different output tails on
        ``access(a) + suffix`` and ``access(b) + suffix`` — that is why the
        two leaves sit in different subtrees of the LCA.
        """
        if state_a == state_b:
            raise LearningError("states are identical; no suffix separates them")
        path: set = set()
        node: Optional[_Node] = self._leaves[self._access[state_a]]
        while node is not None:
            path.add(node)
            node = node.parent
        node = self._leaves[self._access[state_b]].parent
        while node is not None:
            if node in path:
                return node.suffix
            node = node.parent
        raise LearningError("classification-tree leaves share no ancestor")


def equivalent_state_pair(machine: MealyMachine) -> Optional[Tuple[int, int]]:
    """First pair of behaviourally equivalent states, or None if minimal.

    Standard partition refinement (the same computation as
    :meth:`~repro.core.mealy.MealyMachine.minimize`, reachable or not),
    returning the two smallest state ids of the first non-singleton block
    for deterministic repair order.
    """
    states = list(machine.states)
    inputs = list(machine.inputs)
    # Block ids are assigned by first occurrence in state order, so a stable
    # partition keeps stable labels and the fixpoint test below terminates.
    index_of: Dict[tuple, int] = {}
    block_of = {}
    for state in states:
        signature = tuple(machine.outputs[(state, symbol)] for symbol in inputs)
        block_of[state] = index_of.setdefault(signature, len(index_of))

    while True:
        index_of = {}
        updated = {}
        for state in states:
            signature = (
                block_of[state],
                tuple(block_of[machine.transitions[(state, symbol)]] for symbol in inputs),
            )
            updated[state] = index_of.setdefault(signature, len(index_of))
        if updated == block_of:
            break
        block_of = updated

    blocks: Dict[int, List[int]] = {}
    for state in sorted(states):
        blocks.setdefault(block_of[state], []).append(state)
    for block in sorted(blocks.values()):
        if len(block) > 1:
            return block[0], block[1]
    return None


class KVLearner(ActiveLearner):
    """Classification-tree (Kearns–Vazirani) learner behind the
    :class:`~repro.learning.learner.ActiveLearner` interface.

    Constructor, engine wrapping, pool semantics and result shape match
    :class:`~repro.learning.learner.MealyLearner`; only the hypothesis
    data structure differs.  Rivest–Schapire is the only supported
    counterexample strategy — the global prefix strategy is meaningless
    for a tree that refines via single splits, so requesting
    ``counterexample_strategy="prefixes"`` raises
    :class:`~repro.errors.LearningError` at construction time.
    """

    name = "kv"
    counterexample_strategies = ("rivest-schapire",)

    #: Tree implementation the learner builds; the TTT learner swaps in its
    #: finalizing/incrementally-sifting subclass without re-stating the loop.
    tree_class = ClassificationTree

    #: The classification tree of the current/most recent run (None before
    #: :meth:`learn`); exposed so budget-interrupted runs stay inspectable.
    tree: Optional[ClassificationTree] = None

    @property
    def states_discovered(self) -> int:
        """Leaves created so far — exact state count, readable mid-run."""
        return self.tree.num_states if self.tree is not None else 0

    def _stable_hypothesis(self, tree: ClassificationTree) -> MealyMachine:
        """Build a hypothesis and repair it to minimality without
        spending equivalence queries.

        An intermediate KV hypothesis can merge two discovered states
        behaviourally even though the tree distinguishes their access words.
        For any equivalent pair, the LCA discriminator yields an internal
        counterexample (the target disagrees with the hypothesis on at least
        one of ``access(q) + suffix``), which :meth:`ClassificationTree.refine`
        turns into a split.  Each repair adds a state, so the loop is bounded
        by the target's state count.
        """
        hypothesis = tree.hypothesis()
        while True:
            pair = equivalent_state_pair(hypothesis)
            if pair is None:
                return hypothesis
            suffix = tree.lca_suffix(*pair)
            for state in pair:
                probe = tree.access_word(state) + suffix
                if tuple(self.membership_oracle.output_query(probe)) != hypothesis.run(probe):
                    tree.internal_refinements += 1
                    tree.refine(hypothesis, probe)
                    break
            else:
                # Unreachable: equivalent hypothesis states answer the suffix
                # identically, but the target separates the two access words.
                raise LearningError(
                    "classification tree separates states "
                    f"{pair[0]} and {pair[1]} but no internal counterexample "
                    "distinguishes them"
                )
            hypothesis = tree.hypothesis()

    def _learn(self) -> LearningResult:
        start = time.perf_counter()
        self._suite_queries = 0
        self._suite_symbols = 0
        origin = self._executed_queries()
        symbol_origin = self._executed_symbols()
        round_mark = origin
        per_round_queries: List[int] = []
        tree = self.tree_class(
            self.alphabet,
            self.membership_oracle,
            pool=self.pool,
            chunk_size=self.fill_chunk_size,
        )
        self.tree = tree
        counterexamples: List[Word] = []

        hypothesis = self._stable_hypothesis(tree)

        for round_number in range(1, self.max_rounds + 1):
            counterexample = self._find_counterexample(hypothesis)
            if counterexample is None:
                per_round_queries.append(self._executed_queries() - round_mark)
                elapsed = time.perf_counter() - start
                return LearningResult(
                    machine=hypothesis.relabel(),
                    rounds=round_number,
                    learning_seconds=elapsed,
                    statistics=self._collect_statistics(),
                    counterexamples=counterexamples,
                    per_round_queries=per_round_queries,
                    learner=self.name,
                    learner_queries=self._executed_queries()
                    - origin
                    - self._suite_queries,
                    learner_symbols=self._executed_symbols()
                    - symbol_origin
                    - self._suite_symbols,
                )
            word = tuple(counterexample)
            counterexamples.append(word)
            # Exhaust the counterexample: a single split often leaves the word
            # disagreeing with the refined hypothesis, and re-checking it is a
            # trie cache hit — so KV keeps splitting on the same evidence
            # instead of spending a fresh equivalence round (and its newly
            # executed suite words) per discovered state.
            while hypothesis.run(word) != tuple(self.membership_oracle.output_query(word)):
                previous_size = hypothesis.size
                tree.refine(hypothesis, word)
                hypothesis = self._stable_hypothesis(tree)
                if hypothesis.size <= previous_size:
                    # Every split adds a leaf and hypothesis states are
                    # leaves, so a non-growing hypothesis means the tree is
                    # corrupted.
                    raise LearningError(
                        "classification-tree refinement failed to add a state "
                        f"for counterexample {list(word)}"
                    )
            per_round_queries.append(self._executed_queries() - round_mark)
            round_mark = self._executed_queries()

        raise BudgetExceeded(
            f"learning did not converge within {self.max_rounds} rounds",
            spent=self.max_rounds,
            budget=self.max_rounds,
        )

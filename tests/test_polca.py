"""Tests for Polca (Algorithm 1), reset strategies and the learning pipeline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import EVICT, MISS_OUTPUT, Line, policy_input_alphabet
from repro.core.trace import Trace
from repro.errors import NonDeterminismError, PolicyError
from repro.polca import (
    FlushRefillReset,
    NoReset,
    PolcaMembershipOracle,
    SequenceReset,
    SimulatedCacheInterface,
    default_block_names,
    polca_check_trace,
)
from repro.polca.pipeline import identify_policy, learn_policy_from_cache, learn_simulated_policy
from repro.polca.reset import reset_for_table4
from repro.policies.registry import make_policy


class TestBlockNames:
    def test_letters_then_suffixes(self):
        names = default_block_names(30)
        assert names[:3] == ("A", "B", "C")
        assert names[26] == "A1"
        assert len(set(names)) == 30

    def test_zero_and_negative(self):
        assert default_block_names(0) == ()
        with pytest.raises(Exception):
            default_block_names(-1)


class TestSimulatedCacheInterface:
    def test_initial_blocks_hit_after_reset(self):
        interface = SimulatedCacheInterface(make_policy("LRU", 4))
        outcomes = interface.probe(interface.initial_blocks())
        assert all(outcome == "Hit" for outcome in outcomes)

    def test_fresh_block_misses(self):
        interface = SimulatedCacheInterface(make_policy("LRU", 4))
        fresh = interface.block_universe()[4]
        assert interface.probe((fresh,)) == ("Miss",)

    def test_universe_must_exceed_associativity(self):
        with pytest.raises(Exception):
            SimulatedCacheInterface(make_policy("LRU", 4), block_names=("A", "B"))

    def test_statistics(self):
        interface = SimulatedCacheInterface(make_policy("LRU", 2))
        interface.probe(("A",))
        assert interface.probe_count == 1 and interface.access_count == 1
        interface.reset_statistics()
        assert interface.probe_count == 0


class TestPolcaOracle:
    @pytest.mark.parametrize(
        "policy_name,associativity",
        [("FIFO", 4), ("LRU", 4), ("PLRU", 4), ("MRU", 4), ("SRRIP-HP", 2), ("NEW1", 4), ("NEW2", 4), ("LIP", 4)],
    )
    def test_output_queries_match_policy_semantics(self, policy_name, associativity):
        """Theorem 3.1, output-query form: Polca recovers exactly the policy outputs."""
        policy = make_policy(policy_name, associativity)
        oracle = PolcaMembershipOracle(SimulatedCacheInterface(policy))
        reference = policy.to_mealy()
        import random

        rng = random.Random(17)
        alphabet = policy_input_alphabet(associativity)
        for _ in range(15):
            word = tuple(rng.choice(alphabet) for _ in range(rng.randint(1, 10)))
            assert oracle.output_query(word) == reference.run(word)

    def test_check_trace_accepts_and_rejects(self):
        policy = make_policy("LRU", 2)
        oracle = PolcaMembershipOracle(SimulatedCacheInterface(policy))
        good = Trace([(Line(0), MISS_OUTPUT), (EVICT, 1)])
        assert oracle.check_trace(good) is True
        bad = Trace([(Line(0), MISS_OUTPUT), (EVICT, 0)])
        assert oracle.check_trace(bad) is False

    def test_polca_check_trace_wrapper(self):
        policy = make_policy("FIFO", 2)
        interface = SimulatedCacheInterface(policy)
        assert polca_check_trace(interface, Trace([(EVICT, 0), (EVICT, 1), (EVICT, 0)]))

    def test_statistics_accumulate(self):
        oracle = PolcaMembershipOracle(SimulatedCacheInterface(make_policy("LRU", 2)))
        oracle.output_query((EVICT, Line(0)))
        assert oracle.statistics.policy_queries == 1
        assert oracle.statistics.cache_probes > 0
        assert oracle.statistics.block_accesses >= oracle.statistics.cache_probes

    def test_rejects_interface_without_spare_blocks(self):
        class TinyInterface:
            associativity = 2

            def initial_blocks(self):
                return ("A", "B")

            def block_universe(self):
                return ("A", "B")

            def probe(self, blocks):
                return tuple("Hit" for _ in blocks)

        with pytest.raises(PolicyError):
            PolcaMembershipOracle(TinyInterface())

    def test_detects_nondeterministic_cache(self):
        class BrokenInterface:
            """Claims a block is cached but then reports a miss for it."""

            associativity = 2

            def initial_blocks(self):
                return ("A", "B")

            def block_universe(self):
                return ("A", "B", "C")

            def probe(self, blocks):
                return tuple("Miss" for _ in blocks)

        oracle = PolcaMembershipOracle(BrokenInterface())
        with pytest.raises(NonDeterminismError):
            oracle.output_query((Line(0),))

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        length=st.integers(min_value=1, max_value=12),
    )
    def test_polca_matches_new1_on_random_words(self, seed, length):
        """Property: Polca's answers always agree with the policy's Mealy semantics."""
        import random

        policy = make_policy("NEW1", 4)
        oracle = PolcaMembershipOracle(SimulatedCacheInterface(policy))
        reference = policy.to_mealy()
        rng = random.Random(seed)
        alphabet = policy_input_alphabet(4)
        word = tuple(rng.choice(alphabet) for _ in range(length))
        assert oracle.output_query(word) == reference.run(word)


class TestResetStrategies:
    def test_flush_refill_prefix_flushes_whole_pool(self):
        reset = FlushRefillReset()
        prefix = reset.mbl_prefix(2, ("A", "B", "C"))
        assert prefix == "A! B! C! @"
        assert reset.describe() == "F+R"

    def test_sequence_reset(self):
        reset = SequenceReset("D C B A @")
        assert reset.mbl_prefix(4, ("A",)) == "D C B A @"
        assert reset.describe() == "D C B A @"

    def test_empty_sequence_rejected(self):
        with pytest.raises(Exception):
            SequenceReset("  ")

    def test_no_reset(self):
        assert NoReset().mbl_prefix(4, ("A",)) == ""

    def test_table4_reset_mapping(self):
        assert reset_for_table4("Haswell i7-4790", "L1").describe() == "@ @"
        assert reset_for_table4("Skylake i5-6500", "L2").describe() == "D C B A @"
        assert reset_for_table4("Skylake i5-6500", "L3").describe() == "F+R"
        assert reset_for_table4("Kaby Lake", "L1").describe() == "F+R"


class TestPipeline:
    @pytest.mark.parametrize("policy_name,associativity", [("FIFO", 4), ("LRU", 2), ("PLRU", 4)])
    def test_learn_simulated_policy_end_to_end(self, policy_name, associativity):
        policy = make_policy(policy_name, associativity)
        report = learn_simulated_policy(policy)
        assert report.identified_policy == policy_name
        assert report.num_states == policy.state_count()
        assert report.polca_statistics.cache_probes > 0
        assert report.wall_clock_seconds > 0

    def test_learn_policy_from_cache_generic_interface(self):
        interface = SimulatedCacheInterface(make_policy("MRU", 4))
        report = learn_policy_from_cache(interface)
        assert report.identified_policy == "MRU"

    def test_identify_policy_returns_none_for_unknown(self):
        machine = make_policy("FIFO", 3).to_mealy().minimize()
        assert identify_policy(machine, 3, candidates=["LRU", "PLRU"]) is None

    def test_identify_policy_respects_candidates(self):
        machine = make_policy("LRU", 2).to_mealy().minimize()
        assert identify_policy(machine, 2, candidates=["LRU"]) == "LRU"

    def test_learn_simulated_policy_requires_policy_instance(self):
        with pytest.raises(Exception):
            learn_simulated_policy("LRU")

"""Property-based differential fuzzing of serial vs. fully parallel learning.

The PR 2 differential harness checks the fixed policy registry; this layer
generalises it to *generated* instances, fuzzing the whole parallel stack —
process-parallel observation-table fill **and** streamed parallel
conformance testing on one shared :class:`~repro.learning.parallel.\
WorkerPool` — against the serial reference:

* seeded random Mealy machines (random size, alphabet, outputs) learned
  serially and with ``workers=2`` must produce **field-by-field identical**
  results: the machine (states, transitions, outputs — ``==``, not mere
  equivalence), the round count and the counterexample sequence;
* seeded random policy configurations from the registry, learned through
  the full Polca pipeline both ways, must agree the same way; and
* replaying seeded random words against a fresh reference (the machine
  itself, or a fresh Polca-driven simulator) must match the learned
  machine, catching a bug that corrupted both runs identically.

The default budget is intentionally small (seconds); the wide sweeps are
``slow``-marked.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import asdict
from typing import List, Tuple

import pytest

from repro.core.mealy import MealyMachine
from repro.learning.equivalence import ConformanceEquivalenceOracle
from repro.learning.kv import KVLearner
from repro.learning.learner import LearningResult, MealyLearner
from repro.learning.ttt import TTTLearner
from repro.learning.oracles import CachedMembershipOracle, MealyMachineOracle
from repro.learning.parallel import MealyMachineOracleFactory, WorkerPool
from repro.polca.algorithm import PolcaMembershipOracle
from repro.polca.interfaces import SimulatedCacheInterface
from repro.polca.pipeline import learn_simulated_policy
from repro.policies.registry import available_policies, make_policy
from repro.simkernel import numpy_available

#: Seeds for the default (fast) machine budget; every seed learns exactly at
#: conformance depth 2 (verified — see the replay assertion below).
FAST_MACHINE_SEEDS = tuple(range(8))

#: The wide, slow-marked machine sweep.
SLOW_MACHINE_SEEDS = tuple(range(8, 40))

#: Conformance depth at which learning is exact at associativity 2, for the
#: policies whose depth-1 suites under-approximate (cf. the differential
#: harness); BRRIP runs take seconds and stay in the slow sweep.
EXACT_DEPTH = {"BIP": 3, "BRRIP-HP": 3, "BRRIP-FP": 2}
SLOW_POLICIES = ("BRRIP-HP", "BRRIP-FP")

ASSOCIATIVITY = 2
REPLAY_WORDS = 20
REPLAY_MAX_LENGTH = 12


def _random_mealy(seed: int) -> MealyMachine:
    """A seeded random Mealy machine: random size, alphabet and outputs."""
    rng = random.Random(f"fuzz-{seed}")
    num_states = rng.randint(4, 12)
    num_inputs = rng.randint(2, 3)
    num_outputs = rng.randint(2, 3)
    inputs = [f"i{k}" for k in range(num_inputs)]
    transitions = {}
    outputs = {}
    for state in range(num_states):
        for symbol in inputs:
            transitions[(state, symbol)] = rng.randrange(num_states)
            outputs[(state, symbol)] = f"o{rng.randrange(num_outputs)}"
    return MealyMachine(
        list(range(num_states)), 0, inputs, transitions, outputs
    ).minimize()


def _replay_words(tag: str, alphabet) -> List[Tuple]:
    rng = random.Random(f"fuzz-replay-{tag}")
    return [
        tuple(rng.choice(alphabet) for _ in range(rng.randint(1, REPLAY_MAX_LENGTH)))
        for _ in range(REPLAY_WORDS)
    ]


def _learn_machine(machine: MealyMachine, workers: int = 1) -> LearningResult:
    """Learn ``machine`` white-box; with workers > 1 both oracle sides run
    on one shared pool (parallel table fill + parallel streamed suite)."""
    engine = CachedMembershipOracle(MealyMachineOracle(machine))
    if workers > 1:
        with WorkerPool(MealyMachineOracleFactory(machine), workers) as pool:
            equivalence = ConformanceEquivalenceOracle(engine, depth=2, pool=pool)
            learner = MealyLearner(machine.inputs, engine, equivalence, pool=pool)
            result = learner.learn()
        # Table fill and suite execution ran on the pool; the only parent
        # executions allowed are Rivest–Schapire's binary-search probes,
        # which are inherently sequential and usually cache hits.
        assert result.statistics.parallel_words >= 1
        return result
    equivalence = ConformanceEquivalenceOracle(engine, depth=2)
    return MealyLearner(machine.inputs, engine, equivalence).learn()


def _assert_machine_differential(seed: int) -> None:
    reference = _random_mealy(seed)
    serial = _learn_machine(reference)
    parallel = _learn_machine(reference, workers=2)

    # Field-by-field identity, not mere equivalence.
    assert parallel.machine == serial.machine, f"seed {seed}: machines diverged"
    assert parallel.machine.size == serial.machine.size
    assert parallel.rounds == serial.rounds, f"seed {seed}: round counts diverged"
    assert parallel.counterexamples == serial.counterexamples, (
        f"seed {seed}: counterexample sequences diverged"
    )

    # Replay against the reference: learning was exact for these seeds, so
    # the learned machine must reproduce the system under learning.
    assert parallel.machine.size == reference.size
    for word in _replay_words(f"machine-{seed}", tuple(reference.inputs)):
        assert parallel.machine.run(word) == reference.run(word), (
            f"seed {seed}: learned machine disagrees with the reference on {word!r}"
        )


def _assert_policy_differential(policy_name: str) -> None:
    depth = EXACT_DEPTH.get(policy_name, 1)
    policy = make_policy(policy_name, ASSOCIATIVITY)
    serial = learn_simulated_policy(policy, depth=depth, identify=False)
    parallel = learn_simulated_policy(
        make_policy(policy_name, ASSOCIATIVITY), depth=depth, identify=False, workers=2
    )

    assert parallel.machine == serial.machine, f"{policy_name}: machines diverged"
    assert (
        parallel.learning_result.rounds == serial.learning_result.rounds
    ), f"{policy_name}: round counts diverged"
    assert (
        parallel.learning_result.counterexamples
        == serial.learning_result.counterexamples
    ), f"{policy_name}: counterexample sequences diverged"
    assert parallel.extra["workers"] == 2

    # Replay seeded random words through a fresh Polca-driven simulator.
    oracle = PolcaMembershipOracle(
        SimulatedCacheInterface(make_policy(policy_name, ASSOCIATIVITY))
    )
    alphabet = tuple(oracle.alphabet())
    for word in _replay_words(f"policy-{policy_name}", alphabet):
        assert parallel.machine.run(word) == tuple(oracle.output_query(word)), (
            f"{policy_name}: learned machine disagrees with the simulator on {word!r}"
        )


def _assert_kernel_differential(policy_name: str) -> None:
    """Every execution kernel learns field-for-field identical results.

    The legacy scalar stepper is the reference; the tabulated pure-Python
    and (when importable) numpy kernels must reproduce the machine, the
    learning trajectory (rounds, counterexamples), the engine statistics
    *and* Polca's probe accounting exactly — the kernel is an execution
    strategy, never an observable.
    """
    depth = EXACT_DEPTH.get(policy_name, 1)
    kernels = ["scalar", "python"] + (["numpy"] if numpy_available() else [])
    reports = {
        kernel: learn_simulated_policy(
            make_policy(policy_name, ASSOCIATIVITY),
            depth=depth,
            identify=False,
            kernel=kernel,
        )
        for kernel in kernels
    }
    reference = reports["scalar"]
    assert reference.extra["kernel"] == "scalar"
    for kernel in kernels[1:]:
        report = reports[kernel]
        assert report.extra["kernel"] == kernel
        assert report.machine == reference.machine, f"{policy_name}/{kernel}: machines diverged"
        assert report.learning_result.rounds == reference.learning_result.rounds
        assert (
            report.learning_result.counterexamples
            == reference.learning_result.counterexamples
        ), f"{policy_name}/{kernel}: counterexample sequences diverged"
        assert asdict(report.learning_result.statistics) == asdict(
            reference.learning_result.statistics
        ), f"{policy_name}/{kernel}: engine statistics diverged"
        assert asdict(report.polca_statistics) == asdict(
            reference.polca_statistics
        ), f"{policy_name}/{kernel}: Polca probe accounting diverged"


def _learn_machine_kv(machine: MealyMachine, workers: int = 1) -> LearningResult:
    """Learn ``machine`` white-box with the classification-tree learner."""
    engine = CachedMembershipOracle(MealyMachineOracle(machine))
    if workers > 1:
        with WorkerPool(MealyMachineOracleFactory(machine), workers) as pool:
            equivalence = ConformanceEquivalenceOracle(engine, depth=2, pool=pool)
            learner = KVLearner(machine.inputs, engine, equivalence, pool=pool)
            return learner.learn()
    equivalence = ConformanceEquivalenceOracle(engine, depth=2)
    return KVLearner(machine.inputs, engine, equivalence).learn()


def _assert_kv_machine_differential(seed: int) -> None:
    """KV with Rivest–Schapire on a seeded random machine: the learned
    machine must be bit-identical to L*'s and replay field-for-field
    against the reference; a 2-worker pool must not change it either."""
    reference = _random_mealy(seed)
    lstar = _learn_machine(reference)
    kv = _learn_machine_kv(reference)

    assert kv.machine == lstar.machine, f"seed {seed}: KV and L* machines diverged"
    assert kv.learner == "kv" and lstar.learner == "lstar"
    assert kv.machine.size == reference.size
    for word in _replay_words(f"machine-{seed}", tuple(reference.inputs)):
        assert kv.machine.run(word) == reference.run(word), (
            f"seed {seed}: KV-learned machine disagrees with the reference on {word!r}"
        )

    parallel = _learn_machine_kv(reference, workers=2)
    assert parallel.machine == kv.machine, f"seed {seed}: parallel KV diverged"
    assert parallel.rounds == kv.rounds
    assert parallel.counterexamples == kv.counterexamples


def _learn_machine_ttt(machine: MealyMachine, workers: int = 1) -> LearningResult:
    """Learn ``machine`` white-box with the TTT-refined tree learner."""
    engine = CachedMembershipOracle(MealyMachineOracle(machine))
    if workers > 1:
        with WorkerPool(MealyMachineOracleFactory(machine), workers) as pool:
            equivalence = ConformanceEquivalenceOracle(engine, depth=2, pool=pool)
            learner = TTTLearner(machine.inputs, engine, equivalence, pool=pool)
            return learner.learn()
    equivalence = ConformanceEquivalenceOracle(engine, depth=2)
    return TTTLearner(machine.inputs, engine, equivalence).learn()


def _assert_ttt_machine_differential(seed: int) -> None:
    """TTT on a seeded random machine: bit-identical to L*, replay-exact,
    and invariant under a 2-worker pool — the finalization and incremental
    sifting layers are refinement strategies, never observables."""
    reference = _random_mealy(seed)
    lstar = _learn_machine(reference)
    ttt = _learn_machine_ttt(reference)

    assert ttt.machine == lstar.machine, f"seed {seed}: TTT and L* machines diverged"
    assert ttt.learner == "ttt"
    assert ttt.machine.size == reference.size
    for word in _replay_words(f"machine-{seed}", tuple(reference.inputs)):
        assert ttt.machine.run(word) == reference.run(word), (
            f"seed {seed}: TTT-learned machine disagrees with the reference on {word!r}"
        )

    parallel = _learn_machine_ttt(reference, workers=2)
    assert parallel.machine == ttt.machine, f"seed {seed}: parallel TTT diverged"
    assert parallel.rounds == ttt.rounds
    assert parallel.counterexamples == ttt.counterexamples


def _regression_machine(num_states: int, seed: int) -> MealyMachine:
    """The generator of PR 4's non-minimal-hypothesis repro (string outputs,
    no reachability pruning) — kept bit-compatible with test_learning's."""
    rng = random.Random(seed)
    inputs = [f"i{k}" for k in range(2)]
    transitions = {}
    outputs = {}
    for state in range(num_states):
        for symbol in inputs:
            transitions[(state, symbol)] = rng.randrange(num_states)
            outputs[(state, symbol)] = f"o{rng.randrange(2)}"
    return MealyMachine(list(range(num_states)), 0, inputs, transitions, outputs)


def _seeded_policy_sample(count: int) -> List[str]:
    """A seeded random sample of registry policies (fast ones only)."""
    rng = random.Random("fuzz-policy-sample")
    candidates = [name for name in available_policies() if name not in SLOW_POLICIES]
    return rng.sample(candidates, count)


# ------------------------------------------------------------- default budget


@pytest.mark.parametrize("seed", FAST_MACHINE_SEEDS)
def test_random_machine_parallel_learning_is_identical(seed):
    _assert_machine_differential(seed)


@pytest.mark.parametrize("seed", FAST_MACHINE_SEEDS)
def test_random_machine_kv_learning_is_identical(seed):
    _assert_kv_machine_differential(seed)


@pytest.mark.parametrize("seed", FAST_MACHINE_SEEDS)
def test_random_machine_ttt_learning_is_identical(seed):
    _assert_ttt_machine_differential(seed)


def test_regression_seed_116_ttt_hypotheses_are_minimal():
    """TTT inherits ``_stable_hypothesis``'s minimality repair from KV, and
    the seed-116 machine must exercise it the same way: no hypothesis the
    conformance tester sees triggers its minimize-and-warn fallback."""
    reference = _regression_machine(8, seed=116).minimize()
    assert reference.size == 8
    engine = CachedMembershipOracle(MealyMachineOracle(reference))
    equivalence = ConformanceEquivalenceOracle(engine, depth=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        result = TTTLearner(reference.inputs, engine, equivalence).learn()
    assert result.machine.size == reference.size
    assert reference.equivalent(result.machine)


def test_regression_seed_116_kv_hypotheses_are_minimal(monkeypatch):
    """Port of PR 4's suffix-closure regression to the classification tree.

    The seed-116 machine made L* hand non-minimal hypotheses to the Wp
    suite before ``add_suffix`` learned to close the column set.  KV's
    analogue is ``_stable_hypothesis``'s internal minimality repair: every
    hypothesis that reaches the conformance tester must already be minimal,
    so the suite's minimize-and-warn fallback (a RuntimeWarning) never
    fires.
    """
    reference = _regression_machine(8, seed=116).minimize()
    assert reference.size == 8
    sizes = []
    original = KVLearner._stable_hypothesis

    def recording(self, tree):
        hypothesis = original(self, tree)
        sizes.append((hypothesis.size, hypothesis.minimize().size))
        return hypothesis

    monkeypatch.setattr(KVLearner, "_stable_hypothesis", recording)
    engine = CachedMembershipOracle(MealyMachineOracle(reference))
    equivalence = ConformanceEquivalenceOracle(engine, depth=2)
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        result = KVLearner(reference.inputs, engine, equivalence).learn()
    assert sizes, "instrumentation never saw a hypothesis"
    assert all(size == minimal for size, minimal in sizes), sizes
    assert result.machine.size == reference.size
    assert reference.equivalent(result.machine)


@pytest.mark.parametrize("policy_name", _seeded_policy_sample(3))
def test_random_policy_parallel_learning_is_identical(policy_name):
    _assert_policy_differential(policy_name)


@pytest.mark.parametrize("policy_name", _seeded_policy_sample(3))
def test_random_policy_kernels_are_identical(policy_name):
    _assert_kernel_differential(policy_name)


# ----------------------------------------------------------------- wide sweep


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_MACHINE_SEEDS)
def test_random_machine_parallel_learning_is_identical_wide(seed):
    _assert_machine_differential(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_MACHINE_SEEDS)
def test_random_machine_kv_learning_is_identical_wide(seed):
    _assert_kv_machine_differential(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_MACHINE_SEEDS)
def test_random_machine_ttt_learning_is_identical_wide(seed):
    _assert_ttt_machine_differential(seed)


@pytest.mark.slow
@pytest.mark.parametrize(
    "policy_name", [name for name in available_policies()]
)
def test_every_policy_parallel_learning_is_identical_exact(policy_name):
    """The full registry at its exact depths (BRRIP included: seconds/run)."""
    _assert_policy_differential(policy_name)


@pytest.mark.slow
@pytest.mark.parametrize(
    "policy_name", [name for name in available_policies()]
)
def test_every_policy_kernels_are_identical_exact(policy_name):
    """The full registry across every execution kernel."""
    _assert_kernel_differential(policy_name)


# --------------------------------------------------------------------------
# Store codec fuzz: random contents through v2 snapshot + append/compact
# interleavings (the persistence substrate every learner above sits on).


CODEC_SEEDS = tuple(range(10))
SLOW_CODEC_SEEDS = tuple(range(10, 40))

#: Symbol/payload pools mix every kind the codec supports: plain strings,
#: sentinel-colliding strings, ints, bools, and the learning stack's
#: registered symbol types.
def _codec_pools():
    from repro.policies.base import EVICT, Line

    symbols = ["A", "A!", "blk7", "\x01weird", 0, 7, True, False, Line(0), Line(3), EVICT]
    payloads = [None, "Hit", "Miss", 0, 1, 4, True, "x y z"]
    keys = ["mbl", "learning", "cpu", "L2", 0, 1, 21, True]
    return symbols, payloads, keys


def _random_store_ops(seed: int, budget: int = 60):
    """A seeded random mutation script: (key, word, payloads, terminal) records."""
    rng = random.Random(f"codec-{seed}")
    symbols, payloads, keys = _codec_pools()
    ops = []
    for _ in range(budget):
        key = tuple(rng.choice(keys) for _ in range(rng.randint(1, 3)))
        length = rng.randint(0, 5)
        word = tuple(rng.choice(symbols) for _ in range(length))
        ops.append(
            (
                key,
                word,
                tuple(rng.choice(payloads) for _ in range(length)),
                rng.random() < 0.7,
            )
        )
    return ops


def _apply_record(store, op) -> bool:
    """Replay one record op; returns False when it conflicts (skipped)."""
    from repro.errors import NonDeterminismError

    key, word, word_payloads, terminal = op
    try:
        store.namespace(key).record(word, word_payloads, terminal=terminal)
        return True
    except NonDeterminismError:
        return False


def _store_image(store):
    """Comparable image of a store: every namespace's replayable path set.

    Empty namespaces (a handle created by a conflicted record) are
    skipped: they hold no measurements and are not persisted.
    """
    image = {}
    for key in sorted(store.namespaces(), key=repr):
        namespace = store.namespace(key)
        entry = (
            namespace.node_count,
            namespace.entry_count,
            frozenset(namespace.iter_paths()),
        )
        if entry != (0, 0, frozenset()):
            image[key] = entry
    return image


def _assert_codec_round_trip(seed: int, tmp_path):
    from repro.store import PrefixStore

    reference = PrefixStore()
    applied = [op for op in _random_store_ops(seed) if _apply_record(reference, op)]
    assert applied, "degenerate fuzz case: every op conflicted"

    path = tmp_path / "fuzz.json"
    disk = PrefixStore(str(path))
    for op in applied:
        _apply_record(disk, op)
    disk.save()
    from_snapshot = PrefixStore(str(path))
    assert _store_image(from_snapshot) == _store_image(reference)


def _assert_codec_interleaving(seed: int, tmp_path):
    """Random append/compact/reopen interleavings converge on the reference."""
    from repro.store import PrefixStore

    rng = random.Random(f"codec-interleave-{seed}")
    path = tmp_path / "fuzz.json"
    reference = PrefixStore()
    disk = PrefixStore(str(path))
    for op in _random_store_ops(seed, budget=80):
        if _apply_record(reference, op):
            assert _apply_record(disk, op)
        else:
            _apply_record(disk, op)
        roll = rng.random()
        if roll < 0.30:
            disk.save()  # appends one delta line
        elif roll < 0.40:
            disk.compact()  # folds the log into a snapshot
        elif roll < 0.50:
            disk.save()
            disk = PrefixStore(str(path))  # a fresh process arrives
    disk.save()
    final = PrefixStore(str(path))
    assert _store_image(final) == _store_image(reference)


@pytest.mark.parametrize("seed", CODEC_SEEDS)
def test_codec_round_trip_random_store(seed, tmp_path):
    _assert_codec_round_trip(seed, tmp_path)


@pytest.mark.parametrize("seed", CODEC_SEEDS)
def test_codec_random_append_compact_interleavings(seed, tmp_path):
    _assert_codec_interleaving(seed, tmp_path)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_CODEC_SEEDS)
def test_codec_round_trip_random_store_wide(seed, tmp_path):
    _assert_codec_round_trip(seed, tmp_path)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_CODEC_SEEDS)
def test_codec_random_append_compact_interleavings_wide(seed, tmp_path):
    _assert_codec_interleaving(seed, tmp_path)


def test_v1_fixture_bytes_decode_forever(tmp_path):
    """The checked-in v1 file must decode (and migrate) in every future build.

    The fixture bytes are frozen: regenerating them with a newer codec
    would defeat the point of the test.
    """
    import shutil
    from pathlib import Path

    import repro.learning.query_engine  # noqa: F401 — registers Line/Evict codecs
    from repro.policies.base import EVICT, Line
    from repro.store import PrefixStore

    fixture = Path(__file__).parent / "fixtures" / "store_v1_small.json"
    path = tmp_path / "v1.json"
    shutil.copy(fixture, path)

    store = PrefixStore(str(path))
    assert store.load_report.migrated
    frontend = store.namespace(("mbl", "i5-6500", "L2", 0, 21))
    assert frontend.lookup(("A!", "B", "C")) == (None, "Hit", "Miss")
    assert frontend.lookup(("A!", "B")) == (None, "Hit")
    assert frontend.lookup(()) == ()
    learning = store.namespace(("learning", "sim", "LRU", 2))
    assert learning.lookup((Line(0), Line(1), EVICT)) == (4, 0, 1)
    assert learning.lookup((Line(0), EVICT)) == (4, 1)

    # On-open migration rewrote the file as a v2 log; the contents carry over.
    from repro.store.codec import read_header

    assert read_header(path) == (2, 1)
    reloaded = PrefixStore(str(path))
    assert _store_image(reloaded) == _store_image(store)

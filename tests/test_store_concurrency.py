"""Multi-writer stress tests for the sharded measurement store.

N real writer processes append into one corpus — disjoint namespaces
(each writer its own shard) and an overlapping namespace (every writer
the same shard, serialised by its advisory lock).  The promises under
test:

* **no lost records** — every record every writer saved is present
  afterwards, whether writers contended on one shard or not;
* **cross-writer conflict detection** — two writers measuring the same
  prefix differently produce :class:`~repro.errors.NonDeterminismError`
  in the later writer's save, exactly like a broken reset within one
  process (paper Section 7.1);
* **warm starts stay perfect** — a sweep over a corpus populated by
  concurrent writers re-executes 0 membership queries.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import NonDeterminismError
from repro.store import PrefixStore, ShardedStore

N_WRITERS = 4
RECORDS_PER_WRITER = 25

#: One writer process: appends its disjoint rows and the shared rows into
#: the corpus, saving after every record (the per-row save discipline of
#: run_table2/run_table4).  Modes: "clean" payloads agree across writers;
#: "conflict" makes this writer disagree on the shared words.
WRITER = """
import json, sys
from pathlib import Path
from repro.store import PrefixStore, ShardedStore
from repro.errors import NonDeterminismError

corpus, writer_id, records, mode, kind = sys.argv[1:6]
writer_id, records = int(writer_id), int(records)
store = ShardedStore(corpus) if kind == "sharded" else PrefixStore(corpus)
own = store.namespace(("mbl", "cpu", "L2", 0, writer_id))
shared = store.namespace(("mbl", "cpu", "L2", 0, 999))
try:
    for i in range(records):
        own.record((f"w{writer_id}", f"blk{i}"), (None, "Hit"))
        store.save()
        outcome = "Miss" if mode == "conflict" and writer_id % 2 else "Hit"
        shared.record((f"shared{i % 5}", f"s{i}"), (None, outcome))
        store.save()
except NonDeterminismError:
    print("NONDETERMINISM", flush=True)
    sys.exit(23)
sys.exit(0)
"""


def run_writers(corpus: Path, *, mode: str, kind: str) -> list:
    processes = [
        subprocess.Popen(
            [
                sys.executable,
                "-c",
                WRITER,
                str(corpus),
                str(writer_id),
                str(RECORDS_PER_WRITER),
                mode,
                kind,
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            stdout=subprocess.PIPE,
            text=True,
        )
        for writer_id in range(N_WRITERS)
    ]
    results = []
    for process in processes:
        stdout, _ = process.communicate(timeout=180)
        results.append((process.returncode, stdout))
    return results


def reopen(corpus: Path, kind: str):
    return ShardedStore(corpus) if kind == "sharded" else PrefixStore(str(corpus))


@pytest.mark.parametrize("kind", ["sharded", "single-file"])
class TestConcurrentWriters:
    def test_no_lost_records(self, tmp_path, kind):
        corpus = tmp_path / ("corpus.shards" if kind == "sharded" else "corpus.json")
        results = run_writers(corpus, mode="clean", kind=kind)
        assert [code for code, _ in results] == [0] * N_WRITERS

        merged = reopen(corpus, kind)
        for writer_id in range(N_WRITERS):
            own = merged.namespace(("mbl", "cpu", "L2", 0, writer_id))
            words = {word for word, _ in own.iter_entries()}
            assert words == {
                (f"w{writer_id}", f"blk{i}") for i in range(RECORDS_PER_WRITER)
            }, f"writer {writer_id} lost records"
        shared = merged.namespace(("mbl", "cpu", "L2", 0, 999))
        shared_words = {word for word, _ in shared.iter_entries()}
        assert shared_words == {
            (f"shared{i % 5}", f"s{i}") for i in range(RECORDS_PER_WRITER)
        }
        for word in shared_words:
            assert shared.lookup(word) == (None, "Hit")

    def test_conflicting_writers_raise_nondeterminism(self, tmp_path, kind):
        corpus = tmp_path / ("corpus.shards" if kind == "sharded" else "corpus.json")
        results = run_writers(corpus, mode="conflict", kind=kind)
        codes = sorted(code for code, _ in results)
        # Writers 1 and 3 record "Miss" where 0 and 2 record "Hit": whoever
        # appends second on a shared word sees the other's record during
        # catch-up and dies with the broken-reset signal.  At least one
        # process must survive the fight and at least one must lose it.
        assert 23 in codes, f"no writer detected the conflict: {results}"
        assert 0 in codes, f"every writer died: {results}"
        for code, stdout in results:
            assert code in (0, 23)
            if code == 23:
                assert "NONDETERMINISM" in stdout

        # The surviving corpus still loads and agrees with itself.
        merged = reopen(corpus, kind)
        assert merged.namespace(("mbl", "cpu", "L2", 0, 0)).entry_count > 0

    def test_stress_twenty_seeded_rounds(self, tmp_path, kind):
        """20 short two-writer rounds over one corpus: zero corrupted
        shards, zero lost records (the acceptance-criteria sweep)."""
        corpus = tmp_path / ("corpus.shards" if kind == "sharded" else "corpus.json")
        script = """
import sys
from repro.store import PrefixStore, ShardedStore
corpus, writer_id, round_id, kind = sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]
store = ShardedStore(corpus) if kind == "sharded" else PrefixStore(corpus)
ns = store.namespace(("stress", writer_id % 2))
for i in range(5):
    ns.record((f"r{round_id}", f"w{writer_id}", f"b{i}"), (None, None, "Hit"))
    store.save()
"""
        for round_id in range(20):
            processes = [
                subprocess.Popen(
                    [sys.executable, "-c", script, str(corpus), str(w), str(round_id), kind],
                    env={**os.environ, "PYTHONPATH": "src"},
                )
                for w in (0, 1)
            ]
            for process in processes:
                assert process.wait(timeout=180) == 0

        merged = reopen(corpus, kind)
        for shard_key in ((("stress", 0)), (("stress", 1))):
            ns = merged.namespace(shard_key)
            words = {word for word, _ in ns.iter_entries()}
            expected = {
                (f"r{r}", f"w{w}", f"b{i}")
                for r in range(20)
                for w in (0, 1)
                if w % 2 == shard_key[1]
                for i in range(5)
            }
            assert words == expected


class TestInProcessInterleaving:
    """The same protocol exercised deterministically with two handles."""

    def test_alternating_handles_merge(self, tmp_path):
        path = tmp_path / "store.json"
        a = PrefixStore(str(path))
        b = PrefixStore(str(path))
        for i in range(10):
            a.namespace(("n",)).record((f"a{i}",), ("Hit",))
            a.save()
            b.namespace(("n",)).record((f"b{i}",), ("Miss",))
            b.save()
        merged = PrefixStore(str(path))
        words = {word for word, _ in merged.namespace(("n",)).iter_entries()}
        assert words == {(f"a{i}",) for i in range(10)} | {(f"b{i}",) for i in range(10)}
        # Live handles converge through catch-up: a's last save pulled
        # every b-row durable at that point (b9 landed only afterwards).
        assert a.namespace(("n",)).lookup(("b8",)) == ("Miss",)
        a.save()
        assert a.namespace(("n",)).lookup(("b9",)) == ("Miss",)

    def test_catch_up_survives_interleaved_compaction(self, tmp_path):
        path = tmp_path / "store.json"
        a = PrefixStore(str(path))
        b = PrefixStore(str(path))
        a.namespace(("n",)).record(("a",), (1,))
        a.save()
        b.namespace(("n",)).record(("b",), (2,))
        b.compact()  # generation bump behind a's back
        a.namespace(("n",)).record(("c",), (3,))
        a.save()  # must detect the new generation and re-read wholesale
        merged = PrefixStore(str(path))
        ns = merged.namespace(("n",))
        assert ns.lookup(("a",)) == (1,)
        assert ns.lookup(("b",)) == (2,)
        assert ns.lookup(("c",)) == (3,)

    def test_conflict_between_handles(self, tmp_path):
        path = tmp_path / "store.json"
        a = PrefixStore(str(path))
        b = PrefixStore(str(path))
        a.namespace(("n",)).record(("x",), ("Hit",))
        a.save()
        b.namespace(("n",)).record(("x",), ("Miss",))
        with pytest.raises(NonDeterminismError):
            b.save()


class TestWarmStartAfterConcurrentPopulation:
    def test_sharded_warm_start_reexecutes_zero_queries(self, tmp_path):
        from repro.experiments.table2 import run_table2
        from repro.store import open_store

        corpus = tmp_path / "corpus.shards"
        configurations = [("LRU", 2), ("FIFO", 2)]
        # Populate the corpus concurrently: one writer process per policy.
        script = """
import sys
from repro.experiments.table2 import run_table2
from repro.store import open_store
corpus, policy = sys.argv[1], sys.argv[2]
store = open_store(corpus, sharded=True)
run_table2(configurations=[(policy, 2)], store=store)
"""
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(corpus), policy],
                env={**os.environ, "PYTHONPATH": "src"},
            )
            for policy, _ in configurations
        ]
        for process in processes:
            assert process.wait(timeout=300) == 0

        warm = open_store(str(corpus))
        assert warm.sharded
        rows = run_table2(configurations=configurations, store=warm)
        assert [row.membership_queries for row in rows] == [0, 0]
        assert all(row.identified for row in rows)

"""Tests for the MemBlockLang lexer, parser and expansion semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MBLExpansionError, MBLSyntaxError
from repro.mbl import expand, parse, query_to_text, tokenize
from repro.mbl.ast import AtMacro, BlockAtom, Concat, Extend, Operation, Power, Tagged
from repro.mbl.lexer import TokenType


def texts(queries):
    return [query_to_text(query) for query in queries]


class TestLexer:
    def test_tokenizes_all_token_kinds(self):
        tokens = tokenize("(A B2)3 _? @! {X, Y} [Z]")
        kinds = [token.type for token in tokens]
        assert TokenType.LPAREN in kinds
        assert TokenType.NUMBER in kinds
        assert TokenType.WILDCARD in kinds
        assert TokenType.TAG in kinds
        assert TokenType.LBRACE in kinds
        assert kinds[-1] is TokenType.END

    def test_block_names_with_digits(self):
        tokens = tokenize("A12 B")
        assert tokens[0].value == "A12"
        assert tokens[1].value == "B"

    def test_rejects_unknown_characters(self):
        with pytest.raises(MBLSyntaxError):
            tokenize("A $ B")


class TestParser:
    def test_example_4_1_structure(self):
        tree = parse("@ X _?")
        assert isinstance(tree, Concat)
        assert isinstance(tree.right, Tagged)

    def test_power_and_grouping(self):
        tree = parse("(A B C)3")
        assert isinstance(tree, Power) and tree.count == 3

    def test_extension_binds_to_the_left_sequence(self):
        tree = parse("(A B C D)[E F]")
        assert isinstance(tree, Extend)

    def test_block_level_tags(self):
        tree = parse("A? B!")
        assert isinstance(tree, Concat)
        assert isinstance(tree.left, BlockAtom) and tree.left.tag == "?"

    @pytest.mark.parametrize("text", ["", "(A", "A)", "[A B]", "{A,}", ")("])
    def test_syntax_errors(self, text):
        with pytest.raises(MBLSyntaxError):
            parse(text)

    def test_double_tag_rejected_at_expansion_time(self):
        # ``A ?? B`` parses (a tag postfix on an already tagged block) but the
        # expansion semantics forbid double tagging.
        with pytest.raises(MBLExpansionError):
            expand("A ?? B", 4)

    def test_at_macro_atom(self):
        assert isinstance(parse("@"), AtMacro)


class TestExpansion:
    def test_at_macro(self):
        assert texts(expand("@", 4)) == ["A B C D"]

    def test_wildcard_macro(self):
        assert texts(expand("_", 4)) == ["A", "B", "C", "D"]

    def test_example_4_1(self):
        """The paper's Example 4.1: ``@ X _?`` at associativity 4."""
        assert texts(expand("@ X _?", 4)) == [
            "A B C D X A?",
            "A B C D X B?",
            "A B C D X C?",
            "A B C D X D?",
        ]

    def test_extension_macro(self):
        assert texts(expand("(A B C D)[E F]", 4)) == ["A B C D E", "A B C D F"]

    def test_power_operator(self):
        assert texts(expand("(A B C)3", 4)) == ["A B C A B C A B C"]

    def test_group_tagging(self):
        assert texts(expand("(A B)?", 4)) == ["A? B?"]
        assert texts(expand("(A B)!", 4)) == ["A! B!"]

    def test_query_set(self):
        assert texts(expand("{A B, C}", 4)) == ["A B", "C"]

    def test_double_tagging_rejected(self):
        with pytest.raises(MBLExpansionError):
            expand("(A?)!", 4)

    def test_power_zero_gives_empty_query(self):
        assert expand("(A)0", 4) == [()]

    def test_custom_block_universe(self):
        queries = expand("@", 2, blocks=("X", "Y", "Z"))
        assert texts(queries) == ["X Y"]

    def test_universe_smaller_than_associativity_rejected(self):
        with pytest.raises(MBLExpansionError):
            expand("@", 4, blocks=("A", "B"))

    def test_operation_flags(self):
        (query,) = expand("A? B! C", 4)
        assert query[0].profiled and not query[0].flush
        assert query[1].flush and not query[1].profiled
        assert query[2].tag is None

    def test_operation_rejects_bad_tag(self):
        with pytest.raises(ValueError):
            Operation("A", "#")

    def test_flush_refill_reset_expression(self):
        """The reset expression used by the hardware experiments expands to one query."""
        queries = expand("A! B! C! D! E! @", 4, blocks=tuple("ABCDE"))
        assert len(queries) == 1
        assert query_to_text(queries[0]) == "A! B! C! D! E! A B C D"


@settings(max_examples=50, deadline=None)
@given(
    associativity=st.integers(min_value=1, max_value=8),
    repeat=st.integers(min_value=1, max_value=4),
)
def test_wildcard_times_at_expands_to_associativity_queries(associativity, repeat):
    """Property: ``_ (@)k`` yields exactly associativity queries of length 1 + k*assoc."""
    queries = expand(f"_ (@){repeat}", associativity)
    assert len(queries) == associativity
    for query in queries:
        assert len(query) == 1 + repeat * associativity


@settings(max_examples=50, deadline=None)
@given(blocks=st.lists(st.sampled_from("ABCDEF"), min_size=1, max_size=8))
def test_plain_sequences_round_trip(blocks):
    """Property: a plain block sequence expands to itself."""
    text = " ".join(blocks)
    queries = expand(text, 8)
    assert len(queries) == 1
    assert query_to_text(queries[0]) == text

"""Fault injection against the v2 append-log store.

The crash model the codec promises (see :mod:`repro.store.codec`):

* the header + snapshot pair is written atomically (tmp file +
  ``os.replace``), so damage there is genuine corruption and raises
  :class:`~repro.errors.StoreCorruptionError` — never a raw traceback;
* the delta tail is append-only, so a killed writer can only tear the
  *final* line; loading silently truncates to the valid prefix and
  reports what survived (``recovered_records``) and what was dropped
  (``discarded_bytes``);
* temporary files left by a killed compaction are ignored by readers and
  reaped by the next locked writer.

Every scenario here reopens the damaged file and asserts exactly one of
the two allowed outcomes: a clean load of every record up to the last
complete one, or ``StoreCorruptionError``.  The ``kill -9`` scenarios run
a real writer subprocess and terminate it without warning.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import StoreCorruptionError, StoreError
from repro.store import PrefixStore, ShardedStore, open_store, track_store_io

NS = ("mbl", "cpu", "L2", 0, 21)


def make_logged_store(path: Path, *, entries: int = 6, per_line: int = 2) -> PrefixStore:
    """A store file with a snapshot plus several delta lines."""
    store = PrefixStore(str(path))
    written = 0
    while written < entries:
        for _ in range(per_line):
            store.namespace(NS).record(
                (f"A{written}", "B"), (None, "Hit" if written % 2 else "Miss")
            )
            written += 1
        store.save()
    return store


def entry_words(store) -> set:
    return {word for word, _ in store.namespace(NS).iter_entries()}


class TestTornTails:
    def test_torn_final_line_truncates_to_valid_prefix(self, tmp_path):
        path = tmp_path / "store.json"
        make_logged_store(path)
        data = path.read_bytes()
        assert data.endswith(b"\n")
        path.write_bytes(data[:-9])  # tear the last append mid-line

        reopened = PrefixStore(str(path))
        report = reopened.load_report
        assert report.discarded_bytes > 0
        assert report.valid_end + report.discarded_bytes == len(data) - 9
        assert report.valid_end < len(data)
        # Every record up to the last complete line survived.
        assert entry_words(reopened) >= {("A0", "B"), ("A1", "B")}

    def test_reader_does_not_repair_but_writer_does(self, tmp_path):
        path = tmp_path / "store.json"
        make_logged_store(path)
        data = path.read_bytes()
        path.write_bytes(data[:-9])
        torn_size = path.stat().st_size

        reader = PrefixStore(str(path))
        # Lock-free readers leave the file alone (the tear may be a
        # concurrent append still in flight).
        assert path.stat().st_size == torn_size

        writer = PrefixStore(str(path))
        writer.namespace(NS).record(("Z",), ("Hit",))
        writer.save()  # holds the lock: truncates the tear, then appends
        healed = PrefixStore(str(path))
        assert healed.load_report.discarded_bytes == 0
        assert ("Z",) in entry_words(healed)
        assert reader is not None  # the reader stayed usable throughout

    def test_complete_but_invalid_final_line_dropped(self, tmp_path):
        path = tmp_path / "store.json"
        make_logged_store(path)
        with open(path, "ab") as handle:
            handle.write(b'{"delta": [["broken"\n')  # complete line, bad JSON

        reopened = PrefixStore(str(path))
        assert reopened.load_report.discarded_bytes > 0
        assert entry_words(reopened) >= {("A0", "B")}

    def test_invalid_line_followed_by_valid_data_is_corruption(self, tmp_path):
        path = tmp_path / "store.json"
        make_logged_store(path)
        header, snapshot, *deltas = path.read_bytes().split(b"\n")
        assert len(deltas) >= 3  # at least two delta lines + trailing empty
        damaged = b"\n".join([header, snapshot, b"garbage" + deltas[0]] + deltas[1:])
        path.write_bytes(damaged)
        with pytest.raises(StoreCorruptionError):
            PrefixStore(str(path))

    def test_empty_tail_after_truncated_everything(self, tmp_path):
        """Tearing away the whole tail leaves exactly the snapshot."""
        path = tmp_path / "store.json"
        store = make_logged_store(path)
        snapshot_end = store.load_report.snapshot_end if store.load_report else None
        reopened = PrefixStore(str(path))
        snapshot_end = reopened.load_report.snapshot_end
        path.write_bytes(path.read_bytes()[: snapshot_end + 3])  # 3 stray bytes
        again = PrefixStore(str(path))
        assert again.load_report.discarded_bytes == 3
        assert again.load_report.recovered_records == 0
        assert again.entry_count > 0  # the snapshot itself


class TestSnapshotDamage:
    def test_truncated_snapshot_line_is_corruption(self, tmp_path):
        path = tmp_path / "store.json"
        make_logged_store(path)
        header, snapshot, _rest = path.read_bytes().split(b"\n", 2)
        path.write_bytes(header + b"\n" + snapshot[: len(snapshot) // 2])
        with pytest.raises(StoreCorruptionError):
            PrefixStore(str(path))

    def test_header_only_file_is_corruption(self, tmp_path):
        path = tmp_path / "store.json"
        make_logged_store(path)
        header = path.read_bytes().split(b"\n", 1)[0]
        path.write_bytes(header)
        with pytest.raises(StoreCorruptionError):
            PrefixStore(str(path))

    def test_empty_file_is_corruption(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_bytes(b"")
        with pytest.raises(StoreCorruptionError):
            PrefixStore(str(path))

    def test_future_version_rejected_with_upgrade_hint(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text(
            '{"format":"repro-prefix-store","version":99,"generation":1}\n'
            '{"snapshot":[]}\n'
        )
        with pytest.raises(StoreCorruptionError, match="version 99"):
            PrefixStore(str(path))


class TestCompactionLeftovers:
    def test_stale_tmp_from_killed_compaction_is_ignored_and_reaped(self, tmp_path):
        path = tmp_path / "store.json"
        make_logged_store(path)
        stale = tmp_path / f".{path.name}.tmp.99999"
        stale.write_bytes(b"half a snapshot that never got replaced")

        # Readers ignore the leftover entirely.
        reopened = PrefixStore(str(path))
        assert reopened.entry_count > 0
        assert stale.exists()

        # The next locked compaction reaps it.
        reopened.namespace(NS).record(("Q",), ("Hit",))
        reopened.compact()
        assert not stale.exists()
        assert ("Q",) in entry_words(PrefixStore(str(path)))


WRITER_SCRIPT = """
import sys, time
from pathlib import Path
from repro.store import PrefixStore

path, marker = sys.argv[1], Path(sys.argv[2])
store = PrefixStore(path)
ns = store.namespace(("mbl", "cpu", "L2", 0, 21))
i = 0
while True:
    ns.record((f"W{i}", "B"), (None, "Hit"))
    store.save()
    i += 1
    if i == 3:
        marker.touch()  # tell the parent some appends are durable
"""


class TestKillNineWriter:
    def test_killed_appender_leaves_a_loadable_file(self, tmp_path):
        path = tmp_path / "store.json"
        make_logged_store(path)
        marker = tmp_path / "progress"
        process = subprocess.Popen(
            [sys.executable, "-c", WRITER_SCRIPT, str(path), str(marker)],
            env={**os.environ, "PYTHONPATH": "src"},
        )
        try:
            deadline = time.time() + 30
            while not marker.exists():
                assert process.poll() is None, "writer died before making progress"
                assert time.time() < deadline, "writer made no progress in 30s"
                time.sleep(0.005)
            process.send_signal(signal.SIGKILL)
        finally:
            process.wait(timeout=30)

        reopened = PrefixStore(str(path))
        words = entry_words(reopened)
        # Everything durable before the kill is still there...
        assert {("A0", "B"), ("W0", "B"), ("W1", "B"), ("W2", "B")} <= words
        # ...and the file accepts appends again.
        reopened.namespace(NS).record(("after",), ("Miss",))
        reopened.save()
        assert ("after",) in entry_words(PrefixStore(str(path)))

    def test_twenty_seeded_kills_never_raise_raw(self, tmp_path):
        """Randomly torn files either load (valid prefix) or raise
        StoreCorruptionError — never anything else."""
        import random

        path = tmp_path / "store.json"
        make_logged_store(path, entries=10)
        data = path.read_bytes()
        rng = random.Random(0xC0FFEE)
        for _ in range(20):
            cut = rng.randrange(1, len(data))
            victim = tmp_path / "cut.json"
            victim.write_bytes(data[:cut])
            try:
                store = PrefixStore(str(victim))
            except StoreCorruptionError:
                continue  # damage inside header/snapshot: the allowed error
            report = store.load_report
            assert report.valid_end <= cut
            assert report.discarded_bytes == cut - report.valid_end


class TestShardFaults:
    def test_damaged_shard_header_is_corruption(self, tmp_path):
        corpus = ShardedStore(tmp_path / "corpus.shards")
        corpus.namespace(NS).record(("A",), ("Hit",))
        corpus.save()
        shard = corpus.shard_path(NS)
        shard.write_bytes(b"not json\n" + shard.read_bytes())
        fresh = ShardedStore(tmp_path / "corpus.shards")
        with pytest.raises(StoreCorruptionError):
            fresh.namespaces()

    def test_renamed_shard_detected_as_mismatch(self, tmp_path):
        corpus = ShardedStore(tmp_path / "corpus.shards")
        corpus.namespace(NS).record(("A",), ("Hit",))
        corpus.save()
        other_key = ("mbl", "cpu", "L2", 0, 22)
        os.replace(corpus.shard_path(NS), corpus.shard_path(other_key))
        fresh = ShardedStore(tmp_path / "corpus.shards")
        with pytest.raises(StoreCorruptionError, match="stamped"):
            fresh.namespace(other_key)

    def test_torn_shard_tail_recovers_like_single_file(self, tmp_path):
        corpus = ShardedStore(tmp_path / "corpus.shards")
        corpus.namespace(NS).record(("A",), ("Hit",))
        corpus.save()
        corpus.namespace(NS).record(("B",), ("Miss",))
        corpus.save()
        shard = corpus.shard_path(NS)
        shard.write_bytes(shard.read_bytes()[:-5])
        fresh = ShardedStore(tmp_path / "corpus.shards")
        assert fresh.namespace(NS).lookup(("A",)) == ("Hit",)
        assert fresh.namespace(NS).lookup(("B",)) is None

    def test_file_where_directory_expected_is_store_error(self, tmp_path):
        target = tmp_path / "corpus.shards"
        target.write_text("plain file")
        with pytest.raises(StoreError):
            open_store(str(target), sharded=True)


class TestDeltaSaveCost:
    """The O(delta) fix for the O(store) save pinned in
    benchmarks/bench_store_persistence.py, asserted by byte counting."""

    def test_one_row_save_is_o_delta_not_o_store(self, tmp_path):
        path = tmp_path / "store.json"
        store = PrefixStore(str(path))
        ns = store.namespace(NS)
        for i in range(400):
            ns.record((f"blk{i}", "B", "C"), (None, "Hit", "Miss"))
        store.save()
        snapshot_size = path.stat().st_size

        ns.record(("one", "more", "row"), (None, "Hit", "Miss"))
        with track_store_io() as io:
            store.save()
        # One delta line: far below the snapshot in both directions.  The
        # catch-up header peek reads one line; the append writes one line.
        assert io.bytes_written < snapshot_size / 20
        assert io.bytes_read < snapshot_size / 20
        assert path.stat().st_size > snapshot_size  # appended, not rewritten

    def test_no_change_save_writes_nothing(self, tmp_path):
        path = tmp_path / "store.json"
        store = make_logged_store(path)
        with track_store_io() as io:
            store.save()
        assert io.bytes_written == 0

    def test_recording_known_data_journals_nothing(self, tmp_path):
        path = tmp_path / "store.json"
        store = PrefixStore(str(path))
        ns = store.namespace(NS)
        ns.record(("A", "B"), (None, "Hit"))
        store.save()
        ns.record(("A", "B"), (None, "Hit"))  # bit-identical re-measurement
        assert store.pending_records == 0
        with track_store_io() as io:
            store.save()
        assert io.bytes_written == 0

    def test_sharded_save_touches_only_dirty_shards(self, tmp_path):
        corpus = ShardedStore(tmp_path / "corpus.shards")
        other = ("mbl", "cpu", "L2", 0, 22)
        for i in range(50):
            corpus.namespace(NS).record((f"a{i}",), ("Hit",))
            corpus.namespace(other).record((f"b{i}",), ("Miss",))
        corpus.save()
        clean_mtime = corpus.shard_path(other).stat().st_mtime_ns

        corpus.namespace(NS).record(("fresh",), ("Hit",))
        with track_store_io() as io:
            corpus.save()
        assert corpus.shard_path(other).stat().st_mtime_ns == clean_mtime
        assert io.bytes_written < 200  # one delta line on one shard


class TestLoadReportSurface:
    def test_load_report_counts_recovered_records(self, tmp_path):
        path = tmp_path / "store.json"
        make_logged_store(path, entries=6, per_line=2)
        reopened = PrefixStore(str(path))
        report = reopened.load_report
        assert report.version == 2
        # entries beyond the first snapshot arrive as replayed delta records
        assert report.recovered_records > 0
        assert report.discarded_bytes == 0
        assert json.loads(path.read_bytes().split(b"\n")[0])["generation"] == report.generation


class TestWriterLockHygiene:
    """PR 9 regressions: a failed save must release (and close) the lock."""

    def lock_is_free(self, lock_path: Path) -> bool:
        import fcntl

        fd = os.open(lock_path, os.O_RDWR)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except BlockingIOError:
            return False
        else:
            fcntl.flock(fd, fcntl.LOCK_UN)
            return True
        finally:
            os.close(fd)

    def test_failed_save_releases_the_writer_lock(self, tmp_path):
        from repro.errors import NonDeterminismError

        path = tmp_path / "store.json"
        first = PrefixStore(str(path))
        second = PrefixStore(str(path))  # opened before first's record lands
        first.namespace(NS).record(("w",), ("Hit",))
        first.save()
        second.namespace(NS).record(("w",), ("Miss",))
        with pytest.raises(NonDeterminismError):
            second.save()  # catch-up replays first's record and conflicts
        # The lock must not stay held by the failed save...
        assert self.lock_is_free(tmp_path / "store.json.lock")
        # ...and other writers must still get through.
        first.namespace(NS).record(("after",), ("Hit",))
        first.save()

    def test_repeated_failed_saves_leak_no_descriptors(self, tmp_path):
        from repro.errors import NonDeterminismError

        path = tmp_path / "store.json"
        first = PrefixStore(str(path))
        second = PrefixStore(str(path))  # opened before first's record lands
        first.namespace(NS).record(("w",), ("Hit",))
        first.save()
        second.namespace(NS).record(("w",), ("Miss",))
        fd_dir = Path("/proc/self/fd")
        if not fd_dir.exists():  # pragma: no cover - non-Linux
            pytest.skip("needs /proc to count open descriptors")
        with pytest.raises(NonDeterminismError):
            second.save()
        before = len(list(fd_dir.iterdir()))
        for _ in range(20):
            with pytest.raises(NonDeterminismError):
                second.save()
        assert len(list(fd_dir.iterdir())) <= before


class TestFcntlUnavailable:
    """PR 9 regressions: without fcntl, warn once and refuse second writers."""

    @pytest.fixture
    def no_fcntl(self, monkeypatch):
        import repro.store.prefix_store as prefix_store_module

        monkeypatch.setattr(prefix_store_module, "fcntl", None)
        monkeypatch.setattr(prefix_store_module, "_warned_fcntl_missing", False)
        return prefix_store_module

    def test_warns_once_on_first_locked_operation(self, tmp_path, no_fcntl):
        import warnings

        path = tmp_path / "store.json"
        store = PrefixStore(str(path))
        store.namespace(NS).record(("a",), ("Hit",))
        with pytest.warns(RuntimeWarning, match="fcntl is unavailable"):
            store.save()
        # Only the first locked operation warns.
        store.namespace(NS).record(("b",), ("Hit",))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            store.save()

    def test_second_writer_detected_and_refused(self, tmp_path, no_fcntl):
        import warnings

        path = tmp_path / "store.json"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ours = PrefixStore(str(path))
            ours.namespace(NS).record(("ours",), ("Hit",))
            ours.save()
            # Another writer appends underneath (its own handle, same file).
            theirs = PrefixStore(str(path))
            theirs.namespace(NS).record(("theirs",), ("Hit",))
            theirs.save()
            ours.namespace(NS).record(("late",), ("Hit",))
            with pytest.raises(StoreError, match="changed underneath"):
                ours.save()

    def test_single_writer_still_works_without_fcntl(self, tmp_path, no_fcntl):
        import warnings

        path = tmp_path / "store.json"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            store = PrefixStore(str(path))
            for i in range(5):
                store.namespace(NS).record((f"x{i}",), ("Hit",))
                store.save()
            reopened = PrefixStore(str(path))
            assert entry_words(reopened) == {(f"x{i}",) for i in range(5)}

"""Unit tests for the process-parallel conformance-testing machinery.

Covers the picklable oracle factories of :mod:`repro.learning.parallel`,
the ``workers=N`` path of
:class:`~repro.learning.equivalence.ConformanceEquivalenceOracle` (chunk
shipping, trie merge-back, cached-word skipping, deterministic
counterexamples, pool lifecycle) and the external-observation entry points
of :class:`~repro.learning.oracles.CachedMembershipOracle`.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import LearningError, NonDeterminismError, OutputLengthMismatchError
from repro.learning.equivalence import (
    ConformanceEquivalenceOracle,
    RandomWalkEquivalenceOracle,
)
from repro.learning.oracles import CachedMembershipOracle, MealyMachineOracle
from repro.learning.parallel import (
    CacheInterfaceOracleFactory,
    FunctionOracleFactory,
    MealyMachineOracleFactory,
    SimulatedPolicyOracleFactory,
    oracle_factory_for_cache,
)
from repro.learning.wpmethod import wp_method_suite
from repro.polca.algorithm import PolcaMembershipOracle
from repro.polca.interfaces import SimulatedCacheInterface
from repro.policies.lru import LRUPolicy
from repro.policies.registry import make_policy


def _machine(name: str, associativity: int = 4):
    return make_policy(name, associativity).to_mealy(max_states=200_000).minimize()


def _constant_outputs(word):
    """Module-level (hence picklable) toy output function: every symbol maps to 'x'."""
    return tuple("x" for _ in word)


class _UnregisteredLRU(LRUPolicy):
    """A policy whose name is not in the registry (forces the pickle fallback)."""

    name = "LRU-UNREGISTERED"


# ----------------------------------------------------------------- factories


class TestOracleFactories:
    def test_simulated_policy_factory_round_trips_and_answers(self):
        factory = SimulatedPolicyOracleFactory("PLRU", 4)
        clone = pickle.loads(pickle.dumps(factory))
        oracle = clone()
        reference = PolcaMembershipOracle(SimulatedCacheInterface(make_policy("PLRU", 4)))
        word = tuple(reference.alphabet())  # one of each input symbol
        assert oracle.output_query(word) == reference.output_query(word)

    def test_mealy_machine_factory(self):
        machine = _machine("LRU", 2)
        factory = pickle.loads(pickle.dumps(MealyMachineOracleFactory(machine)))
        oracle = factory()
        word = tuple(machine.inputs)
        assert oracle.output_query(word) == machine.run(word)

    def test_function_factory(self):
        factory = pickle.loads(pickle.dumps(FunctionOracleFactory(_constant_outputs)))
        assert factory().output_query(("a", "b")) == ("x", "x")

    def test_factory_for_registered_simulated_cache(self):
        cache = SimulatedCacheInterface(make_policy("SRRIP-HP", 4))
        factory = oracle_factory_for_cache(cache)
        assert isinstance(factory, SimulatedPolicyOracleFactory)
        assert factory.policy_name == "SRRIP-HP"
        assert factory.associativity == 4
        rebuilt = factory()
        reference = PolcaMembershipOracle(cache)
        word = tuple(reference.alphabet())[:3]
        assert rebuilt.output_query(word) == reference.output_query(word)

    def test_factory_for_unregistered_cache_pickles_the_interface(self):
        cache = SimulatedCacheInterface(_UnregisteredLRU(2))
        factory = oracle_factory_for_cache(cache)
        assert isinstance(factory, CacheInterfaceOracleFactory)
        clone = pickle.loads(pickle.dumps(factory))
        reference = PolcaMembershipOracle(SimulatedCacheInterface(make_policy("LRU", 2)))
        word = tuple(reference.alphabet())
        assert clone().output_query(word) == reference.output_query(word)

    def test_non_default_registry_policy_uses_the_pickle_fallback(self):
        # SRRIPPolicy(2, bits=3) carries the registry name "SRRIP-HP" but a
        # non-default parameter; rebuilding it from the name would hand the
        # workers a different policy (and a spurious NonDeterminismError).
        from repro.policies.srrip import SRRIPPolicy

        cache = SimulatedCacheInterface(SRRIPPolicy(2, variant="HP", bits=3))
        factory = oracle_factory_for_cache(cache)
        assert isinstance(factory, CacheInterfaceOracleFactory)
        reference = PolcaMembershipOracle(
            SimulatedCacheInterface(SRRIPPolicy(2, variant="HP", bits=3))
        )
        word = tuple(reference.alphabet()) * 2
        assert factory().output_query(word) == reference.output_query(word)

    def test_unpicklable_cache_is_rejected_with_learning_error(self):
        class LocalCache:  # local classes cannot be pickled
            associativity = 2

        with pytest.raises(LearningError, match="oracle_factory"):
            oracle_factory_for_cache(LocalCache())


# ------------------------------------------------- external observations API


class TestExternalObservations:
    def test_record_external_feeds_the_cache(self):
        machine = _machine("LRU", 2)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        word = tuple(machine.inputs)
        engine.record_external(word, machine.run(word))
        assert engine.cached_answer(word) == machine.run(word)
        # Serving the word is now a pure cache hit: no delegate execution.
        assert engine.output_query(word) == machine.run(word)
        assert engine.statistics.membership_queries == 0
        assert engine.statistics.cache_hits == 1

    def test_cached_answer_is_a_pure_peek(self):
        machine = _machine("LRU", 2)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        assert engine.cached_answer(tuple(machine.inputs)) is None
        assert engine.statistics.membership_queries == 0
        assert engine.statistics.cache_hits == 0

    def test_record_external_detects_non_determinism(self):
        machine = _machine("LRU", 2)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        word = tuple(machine.inputs)
        outputs = machine.run(word)
        engine.record_external(word, outputs)
        conflicting = ("WRONG",) + outputs[1:]
        with pytest.raises(NonDeterminismError):
            engine.record_external(word, conflicting)

    def test_record_external_rejects_wrong_length(self):
        engine = CachedMembershipOracle(MealyMachineOracle(_machine("LRU", 2)))
        with pytest.raises(OutputLengthMismatchError):
            engine.record_external(("a", "b"), ("x",))


# ------------------------------------------------------- the parallel oracle


def _parallel_oracle(reference, engine=None, **kwargs):
    engine = engine or CachedMembershipOracle(MealyMachineOracle(reference))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("oracle_factory", MealyMachineOracleFactory(reference))
    return ConformanceEquivalenceOracle(engine, **kwargs)


class TestParallelConformance:
    def test_workers_require_a_factory(self):
        engine = CachedMembershipOracle(MealyMachineOracle(_machine("LRU", 2)))
        with pytest.raises(LearningError, match="oracle_factory"):
            ConformanceEquivalenceOracle(engine, workers=2)

    def test_workers_and_executor_are_mutually_exclusive(self):
        reference = _machine("LRU", 2)
        engine = CachedMembershipOracle(MealyMachineOracle(reference))
        with pytest.raises(LearningError, match="not both"):
            ConformanceEquivalenceOracle(
                engine,
                workers=2,
                oracle_factory=MealyMachineOracleFactory(reference),
                executor=object(),
            )

    def test_invalid_worker_count_rejected(self):
        engine = CachedMembershipOracle(MealyMachineOracle(_machine("LRU", 2)))
        with pytest.raises(ValueError):
            ConformanceEquivalenceOracle(engine, workers=0)

    def test_single_worker_stays_serial(self):
        reference = _machine("LRU", 2)
        equivalence = _parallel_oracle(reference, workers=1, oracle_factory=None)
        assert equivalence.find_counterexample(reference) is None
        assert equivalence._pool is None
        assert equivalence.statistics.parallel_chunks == 0

    def test_parallel_pass_on_correct_hypothesis(self):
        reference = _machine("PLRU", 4)
        engine = CachedMembershipOracle(MealyMachineOracle(reference))
        with _parallel_oracle(reference, engine=engine, batch_size=16) as equivalence:
            assert equivalence.find_counterexample(reference) is None
            assert equivalence.statistics.parallel_chunks >= 2
            assert equivalence.statistics.parallel_words >= 1
            assert sum(equivalence.worker_query_counts.values()) >= 1
            assert sum(equivalence.worker_symbol_counts.values()) >= 1
        # The context manager shut the pool's executor down, but kept the
        # pool object so the per-worker accounting above stays readable.
        assert equivalence._pool._executor is None
        assert sum(equivalence.worker_query_counts.values()) >= 1

    def test_parallel_counterexample_matches_serial(self):
        reference = _machine("LRU", 4)
        wrong = _machine("FIFO", 4)
        serial = ConformanceEquivalenceOracle(
            CachedMembershipOracle(MealyMachineOracle(reference)), batch_size=16
        )
        expected = serial.find_counterexample(wrong)
        assert expected is not None
        with _parallel_oracle(reference, batch_size=16) as equivalence:
            found = equivalence.find_counterexample(wrong)
        assert found == expected
        assert reference.run(found) != wrong.run(found)

    def test_parallel_answers_merge_into_shared_trie(self):
        reference = _machine("MRU", 4)
        engine = CachedMembershipOracle(MealyMachineOracle(reference))
        with _parallel_oracle(reference, engine=engine) as equivalence:
            assert equivalence.find_counterexample(reference) is None
        suite = wp_method_suite(reference, 1)
        assert all(engine.cached_answer(word) is not None for word in suite)
        # The suite was answered by workers, not by the parent's delegate —
        # but the workers' executions still count as membership queries on
        # the shared engine, keeping reports comparable to a serial run.
        assert engine._delegate.statistics.membership_queries == 0
        assert engine.statistics.membership_queries == sum(
            equivalence.worker_query_counts.values()
        )
        assert equivalence.statistics.parallel_words >= 1

    def test_cached_words_are_not_shipped(self):
        reference = _machine("LRU", 4)
        engine = CachedMembershipOracle(MealyMachineOracle(reference))
        suite = wp_method_suite(reference, 1)
        engine.output_query_batch(suite)  # pre-answer everything serially
        with _parallel_oracle(reference, engine=engine) as equivalence:
            assert equivalence.find_counterexample(reference) is None
        assert equivalence.statistics.parallel_words == 0
        assert equivalence.worker_query_counts == {}

    def test_parallel_path_detects_non_determinism(self):
        reference = _machine("LRU", 2)
        engine = CachedMembershipOracle(MealyMachineOracle(reference))
        suite = wp_method_suite(reference, 1)
        # Poison the shared cache with a wrong answer for a proper prefix of
        # some suite word: the worker's (correct) answer must conflict.
        target = next(word for word in suite if len(word) >= 2)
        prefix = target[:1]
        true_first = reference.run(prefix)[0]
        engine.record_external(prefix, ("poisoned" if true_first != "poisoned" else "other",))
        with _parallel_oracle(reference, engine=engine) as equivalence:
            with pytest.raises(NonDeterminismError):
                equivalence.find_counterexample(reference)

    def test_parallel_truncation_accounting_matches_serial(self):
        reference = _machine("MRU", 4)
        suite_size = len(wp_method_suite(reference, 1))
        cap = 5
        assert suite_size > cap
        with _parallel_oracle(reference, max_tests=cap) as equivalence:
            assert equivalence.find_counterexample(reference) is None
        assert equivalence.statistics.tests_skipped == suite_size - cap
        assert equivalence.statistics.test_words == cap


# --------------------------------------------------- random walk batching


class TestRandomWalkBatching:
    def test_random_walk_uses_the_batched_engine(self):
        reference = _machine("LRU", 4)
        engine = CachedMembershipOracle(MealyMachineOracle(reference))
        oracle = RandomWalkEquivalenceOracle(
            engine, reference.inputs, num_words=40, seed=7, batch_size=16
        )
        assert oracle.find_counterexample(reference) is None
        assert engine.statistics.batches >= 3  # ceil(40 / 16)
        assert oracle.statistics.test_words == 40

    def test_random_walk_finds_counterexample_within_first_batch(self):
        reference = _machine("LRU", 4)
        wrong = _machine("FIFO", 4)
        engine = CachedMembershipOracle(MealyMachineOracle(reference))
        oracle = RandomWalkEquivalenceOracle(
            engine, reference.inputs, num_words=200, seed=3, batch_size=32
        )
        counterexample = oracle.find_counterexample(wrong)
        assert counterexample is not None
        assert reference.run(counterexample) != wrong.run(counterexample)
        # Stopped at the first mismatching batch, not after all 200 words.
        assert oracle.statistics.test_words <= 200

    def test_random_walk_counterexample_stable_for_seed(self):
        reference = _machine("LRU", 4)
        wrong = _machine("FIFO", 4)

        def run_once(batch_size):
            engine = CachedMembershipOracle(MealyMachineOracle(reference))
            oracle = RandomWalkEquivalenceOracle(
                engine, reference.inputs, num_words=200, seed=11, batch_size=batch_size
            )
            return oracle.find_counterexample(wrong)

        # The first mismatching word in generation order does not depend on
        # how the words are chunked into batches.
        assert run_once(1) == run_once(64) == run_once(200)

    def test_random_walk_rejects_bad_batch_size(self):
        engine = CachedMembershipOracle(MealyMachineOracle(_machine("LRU", 2)))
        with pytest.raises(ValueError):
            RandomWalkEquivalenceOracle(engine, ("a",), batch_size=0)

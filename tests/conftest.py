"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hardware.cpu import SimulatedCPU
from repro.hardware.profiles import SKYLAKE_I5_6500
from repro.hardware.timing import NoiseModel
from repro.policies.registry import available_policies, make_policy

#: Policies exercised by the generic policy tests, with a representative
#: associativity each (kept small so the whole suite stays fast).
POLICY_CASES = [
    ("FIFO", 4),
    ("LRU", 4),
    ("LIP", 4),
    ("BIP", 4),
    ("PLRU", 4),
    ("PLRU", 8),
    ("MRU", 4),
    ("NRU", 4),
    ("CLOCK", 4),
    ("SRRIP-HP", 4),
    ("SRRIP-FP", 4),
    ("BRRIP-HP", 4),
    ("NEW1", 4),
    ("NEW2", 4),
]


@pytest.fixture(params=POLICY_CASES, ids=[f"{n}-{a}" for n, a in POLICY_CASES])
def policy(request):
    """Every registered policy at a representative associativity."""
    name, associativity = request.param
    return make_policy(name, associativity)


@pytest.fixture(scope="session")
def skylake_cpu():
    """A noise-free simulated Skylake CPU shared by read-mostly tests."""
    return SimulatedCPU(SKYLAKE_I5_6500, noise=NoiseModel(std=0.0))


@pytest.fixture()
def fresh_skylake_cpu():
    """A fresh noise-free Skylake CPU for tests that mutate cache state."""
    return SimulatedCPU(SKYLAKE_I5_6500, noise=NoiseModel(std=0.0))


def all_policy_names():
    """Names of every registered policy (helper for parametrized tests)."""
    return available_policies()

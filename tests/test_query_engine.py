"""Tests for the batched, trie-backed query engine and its satellite fixes."""

import pytest

from repro.cachequery.backend import CacheQueryBackend
from repro.errors import NonDeterminismError, OutputLengthMismatchError
from repro.hardware.cpu import SimulatedCPU
from repro.hardware.profiles import SKYLAKE_I5_6500
from repro.hardware.timing import NoiseModel
from repro.learning import (
    CachedMembershipOracle,
    ConformanceEquivalenceOracle,
    DictCachedMembershipOracle,
    FunctionOracle,
    MealyLearner,
    MealyMachineOracle,
    ObservationTable,
    PerfectEquivalenceOracle,
    ResponseTrie,
    dedupe_and_subsume,
    output_query_batch,
    supports_batching,
    supports_resume,
    wp_method_suite,
)
from repro.learning.learner import learn_mealy_machine
from repro.mbl.expansion import expand
from repro.polca.algorithm import PolcaMembershipOracle
from repro.polca.interfaces import SimulatedCacheInterface
from repro.policies.registry import available_policies, make_policy


def _echo(word):
    """A deterministic, prefix-closed oracle function: position numbers."""
    return tuple(range(1, len(word) + 1))


class TestResponseTrie:
    def test_lookup_and_prefix_sharing(self):
        trie = ResponseTrie()
        trie.insert(("a", "b", "c"), (1, 2, 3))
        assert trie.lookup(("a", "b", "c")) == (1, 2, 3)
        assert trie.lookup(("a", "b")) == (1, 2)
        assert trie.lookup(("a",)) == (1,)
        assert trie.lookup(("b",)) is None
        assert trie.lookup(()) == ()
        # Three nodes store the word and both proper prefixes.
        assert len(trie) == 3

    def test_longest_cached_prefix(self):
        trie = ResponseTrie()
        trie.insert(("a", "b"), (1, 2))
        length, outputs = trie.longest_cached_prefix(("a", "b", "c", "d"))
        assert (length, outputs) == (2, (1, 2))
        assert trie.longest_cached_prefix(("x",)) == (0, ())

    def test_structural_sharing_of_common_prefixes(self):
        trie = ResponseTrie()
        trie.insert(("a", "b", "c"), (1, 2, 3))
        trie.insert(("a", "b", "d"), (1, 2, 4))
        # The shared prefix a·b is stored once: 3 + 1 nodes, not 6.
        assert len(trie) == 4

    def test_nondeterminism_on_conflicting_prefix(self):
        trie = ResponseTrie()
        trie.insert(("a", "b"), (1, 2))
        with pytest.raises(NonDeterminismError) as info:
            trie.insert(("a", "b", "c"), (1, 9, 3))
        assert info.value.query == ("a", "b")
        assert info.value.first == (1, 2)
        assert info.value.second == (1, 9)

    def test_insert_rejects_length_mismatch(self):
        trie = ResponseTrie()
        with pytest.raises(ValueError):
            trie.insert(("a", "b"), (1,))

    def test_clear(self):
        trie = ResponseTrie()
        trie.insert(("a",), (1,))
        trie.clear()
        assert len(trie) == 0
        assert trie.lookup(("a",)) is None


class TestDedupeAndSubsume:
    def test_duplicates_collapse(self):
        assert dedupe_and_subsume([("a",), ("a",), ("b",)]) == [("a",), ("b",)]

    def test_prefixes_are_subsumed(self):
        words = [("a",), ("a", "b"), ("a", "b", "c"), ("x", "y"), ("x",)]
        assert dedupe_and_subsume(words) == [("a", "b", "c"), ("x", "y")]

    def test_empty_word_dropped(self):
        assert dedupe_and_subsume([(), ("a",)]) == [("a",)]

    def test_order_of_maximal_words_preserved(self):
        words = [("b", "b"), ("a",), ("a", "c")]
        assert dedupe_and_subsume(words) == [("b", "b"), ("a", "c")]


class TestBatchedOracles:
    def test_function_oracle_batch_executes_only_maximal_words(self):
        oracle = FunctionOracle(_echo)
        words = [("a",), ("a", "b"), ("a", "b"), ("a", "b", "c")]
        answers = oracle.output_query_batch(words)
        assert answers == [(1,), (1, 2), (1, 2), (1, 2, 3)]
        # Only the maximal word was executed.
        assert oracle.statistics.membership_queries == 1
        assert oracle.statistics.membership_symbols == 3
        assert oracle.statistics.batches == 1

    def test_batch_helper_falls_back_to_serial_queries(self):
        class Plain:
            def __init__(self):
                self.calls = []

            def output_query(self, word):
                self.calls.append(tuple(word))
                return _echo(word)

        plain = Plain()
        assert not supports_batching(plain)
        answers = output_query_batch(plain, [("a", "b"), ("a",)])
        assert answers == [(1, 2), (1,)]
        assert plain.calls == [("a", "b")]  # the prefix was subsumed

    def test_mealy_oracle_supports_resume(self):
        machine = make_policy("LRU", 2).to_mealy().minimize()
        oracle = MealyMachineOracle(machine)
        assert supports_resume(oracle)
        word = tuple(machine.inputs[:2])
        full = oracle.output_query(word)
        resumed = oracle.output_query_resume(word[:1], word[1:])
        assert full[1:] == resumed
        assert oracle.statistics.resumed_symbols == 1


class TestCachedMembershipOracle:
    def test_serves_prefixes_without_reexecution(self):
        delegate = FunctionOracle(_echo)
        cached = CachedMembershipOracle(delegate)
        cached.output_query(("a", "b", "c"))
        assert cached.output_query(("a", "b")) == (1, 2)
        assert delegate.statistics.membership_queries == 1
        assert cached.statistics.cache_hits == 1
        assert cached.size == 3

    def test_resume_executes_only_the_uncached_suffix(self):
        machine = make_policy("PLRU", 4).to_mealy().minimize()
        oracle = MealyMachineOracle(machine)
        cached = CachedMembershipOracle(oracle)
        word = tuple(machine.inputs)[:3]
        cached.output_query(word[:2])
        executed_before = oracle.statistics.membership_symbols
        cached.output_query(word)
        # Only the one-symbol suffix was executed, not the whole word.
        assert oracle.statistics.membership_symbols == executed_before + 1
        assert cached.statistics.resumed_symbols == 1

    def test_batch_dedups_and_serves_from_cache(self):
        delegate = FunctionOracle(_echo)
        cached = CachedMembershipOracle(delegate)
        cached.output_query(("a",))
        executed_before = delegate.statistics.membership_queries
        answers = cached.output_query_batch(
            [("a",), ("a", "b"), ("a", "b"), ("c",), ()]
        )
        assert answers == [(1,), (1, 2), (1, 2), (1,), ()]
        assert cached.statistics.batches == 1
        # ("a",) came from the cache; only ("a","b") and ("c",) were executed.
        assert delegate.statistics.membership_queries == executed_before + 2

    def test_detects_nondeterminism_on_conflicting_prefixes(self):
        answers = iter([("x",), ("y", "z")])
        cached = CachedMembershipOracle(FunctionOracle(lambda word: next(answers)))
        cached.output_query(("a",))
        with pytest.raises(NonDeterminismError):
            cached.output_query(("a", "b"))

    def test_truncated_answer_raises_dedicated_error(self):
        cached = CachedMembershipOracle(FunctionOracle(lambda word: ("x",)))
        with pytest.raises(OutputLengthMismatchError) as info:
            cached.output_query(("a", "b"))
        # Regression: the old code raised NonDeterminismError(word, outputs,
        # word), printing the *input* word as a conflicting output.
        assert info.value.word == ("a", "b")
        assert info.value.outputs == ("x",)
        assert isinstance(info.value, NonDeterminismError)
        assert "2-symbol" in str(info.value)
        assert str(["a", "b"]) not in str(info.value).split(":")[-1]

    def test_dict_cache_also_raises_dedicated_error(self):
        cached = DictCachedMembershipOracle(FunctionOracle(lambda word: ("x",)))
        with pytest.raises(OutputLengthMismatchError):
            cached.output_query(("a", "b"))


class TestObservationTableBatching:
    def test_fill_issues_one_batch_per_round(self):
        machine = make_policy("LRU", 2).to_mealy().minimize()
        oracle = MealyMachineOracle(machine)
        ObservationTable(machine.inputs, oracle)
        # The constructor's fill is a single batch.
        assert oracle.statistics.batches == 1

    def test_row_memoisation_and_invalidation_on_add_suffix(self):
        machine = make_policy("LRU", 2).to_mealy().minimize()
        table = ObservationTable(machine.inputs, MealyMachineOracle(machine))
        row_before = table.row(())
        assert table.row(()) is row_before  # memoised: same object
        new_suffix = tuple(machine.inputs[:2])
        assert table.add_suffix(new_suffix)
        row_after = table.row(())
        assert row_after is not row_before
        assert len(row_after) == len(row_before) + 1
        assert row_after[: len(row_before)] == row_before

    def test_missing_cells_empty_after_fill(self):
        machine = make_policy("FIFO", 2).to_mealy().minimize()
        table = ObservationTable(machine.inputs, MealyMachineOracle(machine))
        assert table.missing_cells() == []
        table.add_short_prefix((machine.inputs[0],))
        assert table.missing_cells() == []


class TestConformanceBatchingAndTruncation:
    def test_truncation_is_recorded_not_silent(self):
        reference = make_policy("MRU", 4).to_mealy().minimize()
        oracle = MealyMachineOracle(reference)
        equivalence = ConformanceEquivalenceOracle(oracle, depth=1, max_tests=5)
        assert equivalence.find_counterexample(reference) is None
        assert equivalence.statistics.tests_skipped > 0
        assert equivalence.statistics.test_words == 5

    def test_truncation_accounting_is_exact_and_accumulates(self):
        reference = make_policy("MRU", 4).to_mealy().minimize()
        suite_size = len(wp_method_suite(reference, 1))
        cap = 7
        assert suite_size > cap
        oracle = MealyMachineOracle(reference)
        equivalence = ConformanceEquivalenceOracle(oracle, depth=1, max_tests=cap)
        assert equivalence.find_counterexample(reference) is None
        assert equivalence.statistics.tests_skipped == suite_size - cap
        assert equivalence.statistics.test_words == cap
        # A second equivalence query accumulates instead of resetting.
        assert equivalence.find_counterexample(reference) is None
        assert equivalence.statistics.tests_skipped == 2 * (suite_size - cap)
        assert equivalence.statistics.test_words == 2 * cap
        assert oracle.statistics.membership_queries > 0

    def test_no_truncation_when_cap_exceeds_suite(self):
        reference = make_policy("LRU", 2).to_mealy().minimize()
        suite_size = len(wp_method_suite(reference, 1))
        equivalence = ConformanceEquivalenceOracle(
            MealyMachineOracle(reference), depth=1, max_tests=suite_size
        )
        assert equivalence.find_counterexample(reference) is None
        assert equivalence.statistics.tests_skipped == 0
        assert equivalence.statistics.test_words == suite_size

    def test_learning_result_surfaces_truncation(self):
        reference = make_policy("LRU", 2).to_mealy().minimize()
        oracle = MealyMachineOracle(reference)
        equivalence = ConformanceEquivalenceOracle(oracle, depth=1, max_tests=3)
        result = learn_mealy_machine(reference.inputs, oracle, equivalence)
        assert result.tests_skipped == equivalence.statistics.tests_skipped
        assert result.tests_skipped > 0
        assert not result.completeness_guaranteed

    def test_untruncated_suite_keeps_guarantee(self):
        reference = make_policy("LRU", 2).to_mealy().minimize()
        oracle = MealyMachineOracle(reference)
        equivalence = ConformanceEquivalenceOracle(oracle, depth=1)
        result = learn_mealy_machine(reference.inputs, oracle, equivalence)
        assert result.tests_skipped == 0
        assert result.completeness_guaranteed

    def test_batched_suite_finds_same_counterexample_region(self):
        reference = make_policy("LRU", 4).to_mealy().minimize()
        wrong = make_policy("FIFO", 4).to_mealy().minimize()
        oracle = MealyMachineOracle(reference)
        for batch_size in (1, 7, 512):
            equivalence = ConformanceEquivalenceOracle(oracle, depth=1, batch_size=batch_size)
            counterexample = equivalence.find_counterexample(wrong)
            assert counterexample is not None
            assert reference.run(counterexample) != wrong.run(counterexample)

    def test_executor_path_matches_serial(self):
        from concurrent.futures import ThreadPoolExecutor

        reference = make_policy("PLRU", 4).to_mealy().minimize()
        oracle = MealyMachineOracle(reference)
        with ThreadPoolExecutor(max_workers=2) as executor:
            equivalence = ConformanceEquivalenceOracle(oracle, depth=1, executor=executor)
            assert equivalence.find_counterexample(reference) is None

    def test_invalid_batch_size_rejected(self):
        oracle = FunctionOracle(_echo)
        with pytest.raises(ValueError):
            ConformanceEquivalenceOracle(oracle, batch_size=0)


class TestPolcaBatch:
    def test_batch_matches_serial_answers_and_saves_probes(self):
        interface = SimulatedCacheInterface(make_policy("PLRU", 4))
        serial = PolcaMembershipOracle(SimulatedCacheInterface(make_policy("PLRU", 4)))
        batched = PolcaMembershipOracle(interface)
        alphabet = batched.alphabet()
        words = [
            (alphabet[0],),
            (alphabet[0], alphabet[-1]),
            (alphabet[0], alphabet[-1], alphabet[1]),
            (alphabet[0], alphabet[-1]),
        ]
        answers = batched.output_query_batch(words)
        assert answers == [serial.output_query(word) for word in words]
        # Only the maximal word was executed by the batched oracle.
        assert batched.statistics.policy_queries == 1
        assert serial.statistics.policy_queries == 4


class TestLearnerEngineEquivalence:
    @pytest.mark.parametrize("policy_name,associativity", [("PLRU", 4), ("MRU", 4)])
    def test_trie_and_dict_backends_learn_identical_machines(
        self, policy_name, associativity
    ):
        reference = make_policy(policy_name, associativity).to_mealy().minimize()
        machines = {}
        for backend in ("trie", "dict"):
            oracle = MealyMachineOracle(reference)
            learner = MealyLearner(
                reference.inputs,
                oracle,
                PerfectEquivalenceOracle(reference),
                cache_backend=backend,
            )
            machines[backend] = learner.learn().machine
        assert machines["trie"].equivalent(machines["dict"])
        assert machines["trie"].size == machines["dict"].size == reference.size

    def test_trie_engine_executes_fewer_symbols(self):
        reference = make_policy("PLRU", 4).to_mealy().minimize()
        executed = {}
        for backend in ("trie", "dict"):
            oracle = MealyMachineOracle(reference)
            cache_cls = (
                CachedMembershipOracle if backend == "trie" else DictCachedMembershipOracle
            )
            engine = cache_cls(oracle)
            equivalence = ConformanceEquivalenceOracle(engine, depth=1)
            result = learn_mealy_machine(reference.inputs, engine, equivalence)
            assert reference.equivalent(result.machine)
            executed[backend] = oracle.statistics.membership_symbols
        assert executed["trie"] < executed["dict"]

    def test_unknown_cache_backend_rejected(self):
        reference = make_policy("FIFO", 2).to_mealy()
        from repro.errors import LearningError

        with pytest.raises(LearningError):
            MealyLearner(
                reference.inputs,
                MealyMachineOracle(reference),
                PerfectEquivalenceOracle(reference),
                cache_backend="lru",
            )

    def test_already_wrapped_oracle_is_not_double_wrapped(self):
        reference = make_policy("FIFO", 2).to_mealy()
        engine = CachedMembershipOracle(MealyMachineOracle(reference))
        learner = MealyLearner(
            reference.inputs, engine, PerfectEquivalenceOracle(reference)
        )
        assert learner.membership_oracle is engine


class TestBackendCodegenRegression:
    def test_generated_code_initialises_mask_and_accumulates(self):
        cpu = SimulatedCPU(SKYLAKE_I5_6500, noise=NoiseModel(std=0.0))
        backend = CacheQueryBackend(cpu)
        backend.configure_target("L2", 0)
        (query,) = expand("A? B?", backend.associativity, backend.pool_blocks())
        code = backend.generate_code(query)
        # Regression: cmovb used r11 without initialising it and never
        # advanced the bit counter; each profiled access now sets its own
        # mask bit and ORs it into the r10 bitmask.
        assert "mov r11, 0x1" in code
        assert "mov r11, 0x2" in code
        assert code.count("or r10, r9") == 2
        assert code.index("mov r11, 0x1") < code.index("cmovb r9, r11")
        assert "xor r10, r10" in code


class TestCacheQueryBatchFrontend:
    def _frontend(self):
        from repro.cachequery.frontend import CacheQuery, CacheQueryConfig
        from repro.cachequery.backend import BackendConfig

        cpu = SimulatedCPU(SKYLAKE_I5_6500, noise=NoiseModel(std=0.0))
        return CacheQuery(
            cpu,
            CacheQueryConfig(level="L2", set_index=0, backend=BackendConfig(repetitions=1)),
        )

    def test_query_batch_dedups_concrete_queries(self):
        frontend = self._frontend()
        expression = "A B C?"
        results = frontend.query_batch([expression, expression, "A B?"])
        assert len(results) == 3
        assert results[0] == results[1]
        # Two distinct concrete queries executed, not three.
        assert frontend.backend.executed_queries == 2
        stats = frontend.cache_statistics()
        assert stats["entries"] == 2

    def test_probe_batch_matches_serial_probes(self):
        from repro.cachequery.frontend import CacheQuerySetInterface

        interface = CacheQuerySetInterface(self._frontend())
        blocks = interface.initial_blocks()
        sequences = [blocks[:2], (), blocks[:2], (blocks[0],)]
        batched = interface.probe_batch(sequences)
        serial_interface = CacheQuerySetInterface(self._frontend())
        serial = [serial_interface.probe(sequence) for sequence in sequences]
        assert batched == serial


@pytest.mark.slow
class TestFullRegistryEquivalenceSlow:
    def test_engine_learns_every_registered_policy_unchanged(self):
        """The trie engine learns the same machine as the dict baseline for
        the whole policy registry (associativity 2 keeps this tractable)."""
        for name in available_policies():
            try:
                reference = make_policy(name, 2).to_mealy().minimize()
            except Exception:
                continue
            for backend in ("trie", "dict"):
                oracle = MealyMachineOracle(reference)
                result = learn_mealy_machine(
                    reference.inputs,
                    oracle,
                    PerfectEquivalenceOracle(reference),
                    cache_backend=backend,
                )
                assert reference.equivalent(result.machine), name
                assert result.machine.size == reference.size, name

"""Tests for the automata-learning stack (oracles, table, Wp-method, learner)."""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alphabet import policy_input_alphabet
from repro.core.mealy import MealyMachine
from repro.errors import LearningError, NonDeterminismError
from repro.learning import (
    CachedMembershipOracle,
    ConformanceEquivalenceOracle,
    FunctionOracle,
    MealyLearner,
    MealyMachineOracle,
    ObservationTable,
    PerfectEquivalenceOracle,
    RandomWalkEquivalenceOracle,
    characterization_set,
    learn_mealy_machine,
    state_cover,
    transition_cover,
    w_method_suite,
    wp_method_suite,
)
from repro.learning.wpmethod import identification_sets, suite_total_symbols
from repro.policies.registry import make_policy


def _random_machine(num_states: int, seed: int, num_inputs: int = 2) -> MealyMachine:
    import random

    rng = random.Random(seed)
    inputs = [f"i{k}" for k in range(num_inputs)]
    states = list(range(num_states))
    transitions = {(s, i): rng.choice(states) for s in states for i in inputs}
    outputs = {(s, i): rng.randint(0, 2) for s in states for i in inputs}
    return MealyMachine(states, 0, inputs, transitions, outputs).reachable()


class TestOracles:
    def test_function_oracle_counts_queries(self):
        oracle = FunctionOracle(lambda word: tuple("x" for _ in word))
        assert oracle.output_query(("a", "b")) == ("x", "x")
        assert oracle.statistics.membership_queries == 1
        assert oracle.statistics.membership_symbols == 2

    def test_cached_oracle_serves_prefixes(self):
        calls = []

        def respond(word):
            calls.append(word)
            return tuple(len(word[: i + 1]) for i in range(len(word)))

        cached = CachedMembershipOracle(FunctionOracle(respond))
        cached.output_query(("a", "b", "c"))
        cached.output_query(("a", "b"))  # prefix: answered from the cache
        assert len(calls) == 1
        assert cached.statistics.cache_hits == 1
        assert cached.size >= 3

    def test_cached_oracle_detects_nondeterminism(self):
        answers = iter([("x",), ("y", "z")])

        def flaky(word):
            return next(answers)

        cached = CachedMembershipOracle(FunctionOracle(flaky))
        cached.output_query(("a",))
        # The longer word's prefix output ("y") contradicts the cached ("x").
        with pytest.raises(NonDeterminismError):
            cached.output_query(("a", "b"))

    def test_cached_oracle_rejects_truncated_answers(self):
        cached = CachedMembershipOracle(FunctionOracle(lambda word: ("x",)))
        with pytest.raises(NonDeterminismError):
            cached.output_query(("a", "b"))

    def test_statistics_merge(self):
        first = FunctionOracle(lambda w: tuple(w)).statistics
        first.record_query(3)
        merged = first.merge(first)
        assert merged.membership_queries == 2
        assert merged.membership_symbols == 6


class TestObservationTable:
    def test_initial_table_learns_single_state_machine(self):
        machine = _random_machine(1, seed=1)
        table = ObservationTable(machine.inputs, MealyMachineOracle(machine))
        table.make_closed_and_consistent()
        hypothesis = table.hypothesis()
        assert hypothesis.size == 1
        assert machine.equivalent(hypothesis)

    def test_add_suffix_rejects_empty(self):
        machine = _random_machine(2, seed=2)
        table = ObservationTable(machine.inputs, MealyMachineOracle(machine))
        with pytest.raises(LearningError):
            table.add_suffix(())

    def test_rows_and_counts(self):
        machine = _random_machine(3, seed=3)
        table = ObservationTable(machine.inputs, MealyMachineOracle(machine))
        table.make_closed_and_consistent()
        assert table.num_short_rows >= 1
        assert table.num_suffixes >= len(machine.inputs)
        assert "prefix" in table.to_text()

    def test_empty_alphabet_rejected(self):
        with pytest.raises(LearningError):
            ObservationTable([], FunctionOracle(lambda w: tuple(w)))


class TestWpMethod:
    def test_state_and_transition_cover(self):
        machine = make_policy("LRU", 2).to_mealy().minimize()
        cover = state_cover(machine)
        assert len(cover) == machine.size
        assert cover[machine.initial_state] == ()
        assert len(transition_cover(machine)) == machine.size * len(machine.inputs)

    def test_characterization_set_separates_all_states(self):
        machine = make_policy("MRU", 4).to_mealy().minimize()
        w_set = characterization_set(machine)
        signatures = {
            state: tuple(machine.run(word, state) for word in w_set)
            for state in machine.states
        }
        assert len(set(signatures.values())) == machine.size

    def test_identification_sets_distinguish_each_state(self):
        machine = make_policy("PLRU", 4).to_mealy().minimize()
        ident = identification_sets(machine)
        for state, suffixes in ident.items():
            for other in machine.states:
                if other == state:
                    continue
                assert any(
                    machine.run(word, state) != machine.run(word, other) for word in suffixes
                )

    def test_w_method_suite_detects_mutations(self):
        machine = make_policy("FIFO", 4).to_mealy().minimize()
        suite = w_method_suite(machine, depth=1)
        # Mutate one output; some word of the suite must expose it.
        mutated = MealyMachine(
            list(machine.states),
            machine.initial_state,
            list(machine.inputs),
            dict(machine.transitions),
            dict(machine.outputs),
        )
        key = next(iter(mutated.outputs))
        mutated.outputs[key] = 99
        assert any(machine.run(word) != mutated.run(word) for word in suite)

    def test_wp_suite_is_not_larger_than_w_suite(self):
        machine = make_policy("PLRU", 4).to_mealy().minimize()
        assert suite_total_symbols(wp_method_suite(machine, 1)) <= suite_total_symbols(
            w_method_suite(machine, 1)
        )

    def test_negative_depth_rejected(self):
        machine = make_policy("FIFO", 2).to_mealy()
        with pytest.raises(LearningError):
            wp_method_suite(machine, -1)


class TestLearner:
    @pytest.mark.parametrize(
        "policy_name,associativity",
        [("FIFO", 4), ("LRU", 2), ("LRU", 4), ("PLRU", 4), ("MRU", 4), ("SRRIP-HP", 2), ("CLOCK", 2)],
    )
    def test_learns_policies_from_their_machines(self, policy_name, associativity):
        reference = make_policy(policy_name, associativity).to_mealy().minimize()
        oracle = MealyMachineOracle(reference)
        equivalence = ConformanceEquivalenceOracle(oracle, depth=1)
        result = learn_mealy_machine(reference.inputs, oracle, equivalence)
        assert result.machine.size == reference.size
        assert reference.equivalent(result.machine)
        assert result.statistics.membership_queries > 0

    @settings(max_examples=15, deadline=None)
    @given(num_states=st.integers(min_value=1, max_value=8), seed=st.integers(0, 10_000))
    def test_learns_random_machines_exactly(self, num_states, seed):
        """Property: with a perfect equivalence oracle the learner is exact."""
        reference = _random_machine(num_states, seed).minimize()
        oracle = MealyMachineOracle(reference)
        learner = MealyLearner(
            reference.inputs, oracle, PerfectEquivalenceOracle(reference)
        )
        result = learner.learn()
        assert reference.equivalent(result.machine)
        assert result.machine.size == reference.size

    def test_prefix_strategy_also_converges(self):
        reference = make_policy("MRU", 4).to_mealy().minimize()
        oracle = MealyMachineOracle(reference)
        learner = MealyLearner(
            reference.inputs,
            oracle,
            PerfectEquivalenceOracle(reference),
            counterexample_strategy="prefixes",
        )
        assert reference.equivalent(learner.learn().machine)

    def test_unknown_counterexample_strategy_rejected(self):
        reference = make_policy("FIFO", 2).to_mealy()
        with pytest.raises(LearningError):
            MealyLearner(
                reference.inputs,
                MealyMachineOracle(reference),
                PerfectEquivalenceOracle(reference),
                counterexample_strategy="magic",
            )

    def test_random_walk_oracle_finds_shallow_differences(self):
        reference = make_policy("LRU", 4).to_mealy().minimize()
        oracle = MealyMachineOracle(reference)
        wrong = make_policy("FIFO", 4).to_mealy().minimize()
        walker = RandomWalkEquivalenceOracle(oracle, reference.inputs, num_words=200, seed=1)
        assert walker.find_counterexample(wrong) is not None

    def test_learning_result_reports_rounds_and_time(self):
        reference = make_policy("LRU", 2).to_mealy().minimize()
        oracle = MealyMachineOracle(reference)
        result = learn_mealy_machine(
            reference.inputs, oracle, ConformanceEquivalenceOracle(oracle, depth=1)
        )
        assert result.rounds >= 1
        assert result.learning_seconds >= 0
        assert result.num_states == reference.size

    def test_alphabet_matches_policy_alphabet(self):
        reference = make_policy("LRU", 2).to_mealy()
        assert set(reference.inputs) == set(policy_input_alphabet(2))


def _regression_machine(num_states: int, seed: int) -> MealyMachine:
    """The generator the non-minimal-hypothesis repro search used (distinct
    from ``_random_machine``: string outputs, no reachability pruning)."""
    import random

    rng = random.Random(seed)
    inputs = [f"i{k}" for k in range(2)]
    transitions = {}
    outputs = {}
    for state in range(num_states):
        for symbol in inputs:
            transitions[(state, symbol)] = rng.randrange(num_states)
            outputs[(state, symbol)] = f"o{rng.randrange(2)}"
    return MealyMachine(list(range(num_states)), 0, inputs, transitions, outputs)


class TestSuffixClosure:
    """Regression tests for the non-minimal-hypothesis bug (ROADMAP item).

    Rivest–Schapire counterexample processing adds one arbitrary
    distinguishing suffix as a column.  Before the fix, a lone suffix whose
    tails were missing broke the suffix-closedness of ``E`` that the
    table-to-hypothesis minimality argument relies on: "consistent" tables
    handed over hypotheses with equivalent states (observed on deep BRRIP
    runs, reproduced deterministically by the seed-116 machine below), and
    Wp-suite generation on them crashed into the minimize-and-retry
    workaround.  ``add_suffix`` now inserts every missing tail of a new
    suffix, which provably restores minimality.
    """

    def test_add_suffix_inserts_missing_tails(self):
        machine = make_policy("LRU", 2).to_mealy().minimize()
        table = ObservationTable(machine.inputs, MealyMachineOracle(machine))
        a, b = machine.inputs[0], machine.inputs[1]
        assert table.add_suffix((a, b, a))
        # Every tail is now a column: (a,b,a) itself, (b,a), and (a) which
        # was present from initialisation.
        assert (a, b, a) in table.suffixes
        assert (b, a) in table.suffixes
        assert (a,) in table.suffixes
        # Shorter tails are appended before longer ones.
        assert table.suffixes.index((b, a)) < table.suffixes.index((a, b, a))

    def test_add_suffix_returns_false_for_known_suffix(self):
        machine = make_policy("LRU", 2).to_mealy().minimize()
        table = ObservationTable(machine.inputs, MealyMachineOracle(machine))
        a, b = machine.inputs[0], machine.inputs[1]
        assert table.add_suffix((a, b))
        assert not table.add_suffix((a, b))
        # Re-adding a tail of a known suffix is also a no-op.
        assert not table.add_suffix((b,))

    @settings(max_examples=20, deadline=None)
    @given(num_states=st.integers(min_value=2, max_value=10), seed=st.integers(0, 10_000))
    def test_suffix_set_stays_suffix_closed(self, num_states, seed):
        """Property: after any full learning run the column set is closed."""
        import repro.learning.learner as learner_module

        reference = _random_machine(num_states, seed).minimize()
        oracle = MealyMachineOracle(reference)
        # Capture the table the learner builds internally so the closure
        # check runs against the columns add_suffix actually accumulated.
        tables = []

        class RecordingTable(ObservationTable):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                tables.append(self)

        original = learner_module.ObservationTable
        learner_module.ObservationTable = RecordingTable
        try:
            learner = MealyLearner(
                reference.inputs, oracle, PerfectEquivalenceOracle(reference)
            )
            learner.learn()
        finally:
            learner_module.ObservationTable = original
        assert tables, "the learner never built an observation table"
        (table,) = tables
        present = set(table.suffixes)
        for suffix in table.suffixes:
            for start in range(1, len(suffix)):
                assert suffix[start:] in present

    def test_regression_seed_116_machine_yields_minimal_hypotheses(self, monkeypatch):
        """The original failing shape: before the fix, learning this 8-state
        machine at conformance depth 2 produced an intermediate 6-state
        hypothesis that minimized to 5 states (and BRRIP-FP at assoc 2 depth
        2 a 17-state hypothesis minimizing to 16)."""
        reference = _regression_machine(8, seed=116).minimize()
        assert reference.size == 8
        sizes = []
        original = ObservationTable.hypothesis

        def recording(table_self):
            hypothesis = original(table_self)
            sizes.append((hypothesis.size, hypothesis.minimize().size))
            return hypothesis

        monkeypatch.setattr(ObservationTable, "hypothesis", recording)
        oracle = MealyMachineOracle(reference)
        equivalence = ConformanceEquivalenceOracle(oracle, depth=2)
        with warnings.catch_warnings():
            # The minimize-before-suite workaround is now a guarded
            # assertion: reaching it from the learner is a bug.
            warnings.simplefilter("error", RuntimeWarning)
            result = learn_mealy_machine(reference.inputs, oracle, equivalence)
        assert sizes, "instrumentation never saw a hypothesis"
        assert all(size == minimal for size, minimal in sizes), sizes
        assert result.machine.size == reference.size
        assert reference.equivalent(result.machine)

    def test_suite_fallback_for_hand_built_non_minimal_machine_warns(self):
        """The workaround survives for non-learner callers, but loudly."""
        minimal = make_policy("LRU", 2).to_mealy().minimize()
        # Duplicate the machine's states: trace-equivalent but non-minimal.
        doubled_states = [f"{state}/{copy}" for state in minimal.states for copy in (0, 1)]
        transitions = {}
        outputs = {}
        for state in minimal.states:
            for copy in (0, 1):
                for symbol in minimal.inputs:
                    successor, output = minimal.step(state, symbol)
                    transitions[(f"{state}/{copy}", symbol)] = f"{successor}/0"
                    outputs[(f"{state}/{copy}", symbol)] = output
        non_minimal = MealyMachine(
            doubled_states,
            f"{minimal.initial_state}/0",
            list(minimal.inputs),
            transitions,
            outputs,
        )
        assert non_minimal.minimize().size == minimal.size
        oracle = MealyMachineOracle(minimal)
        equivalence = ConformanceEquivalenceOracle(oracle, depth=1)
        with pytest.warns(RuntimeWarning, match="non-minimal"):
            assert equivalence.find_counterexample(non_minimal) is None

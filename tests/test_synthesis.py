"""Tests for the explanation template, grammars, references and the synthesizer."""

import pytest

from repro.errors import SynthesisError
from repro.policies.registry import make_policy
from repro.synthesis import (
    EvictionRule,
    ExplanationProgram,
    NormalizationRule,
    UpdateBranch,
    UpdateRule,
    reference_explanation,
    reference_explanations,
)
from repro.synthesis.expr import AGE_OTHER, AGE_SELF, AgeVar, Comparison, Constant, Sum, TrueExpr
from repro.synthesis.grammar import extended_grammar, simple_grammar
from repro.synthesis.synthesizer import SynthesisConfig, explain_policy, synthesize_explanation


class TestExpressions:
    def test_constant_saturates(self):
        assert Constant(7).evaluate({}, max_age=3) == 3

    def test_sum_saturates_both_ways(self):
        env = {AGE_SELF: 3}
        assert Sum(AgeVar(AGE_SELF), +2).evaluate(env, 3) == 3
        assert Sum(Constant(0), -1).evaluate(env, 3) == 0

    def test_comparison_operators(self):
        env = {AGE_SELF: 2, AGE_OTHER: 1}
        assert Comparison(AgeVar(AGE_OTHER), "<", AgeVar(AGE_SELF)).evaluate(env, 3)
        assert not Comparison(AgeVar(AGE_OTHER), ">", AgeVar(AGE_SELF)).evaluate(env, 3)
        with pytest.raises(ValueError):
            Comparison(Constant(0), "<>", Constant(1))

    def test_describe_is_readable(self):
        assert "age" in Sum(AgeVar(AGE_SELF), -1).describe()
        assert TrueExpr().describe() == "true"


class TestRules:
    def test_update_rule_first_matching_branch_wins(self):
        rule = UpdateRule(
            branches=(
                UpdateBranch(Comparison(AgeVar(AGE_SELF), "==", Constant(1)), Constant(0)),
                UpdateBranch(TrueExpr(), Constant(1)),
            )
        )
        assert rule.apply((1, 3, 3, 3), 0, 3)[0] == 0
        assert rule.apply((2, 3, 3, 3), 0, 3)[0] == 1

    def test_update_rule_others_loop_uses_original_ages(self):
        rule = UpdateRule(
            branches=(UpdateBranch(TrueExpr(), Constant(0)),),
            others_condition=Comparison(AgeVar(AGE_OTHER), "<", AgeVar(AGE_SELF)),
            others_value=Sum(AgeVar(AGE_OTHER), +1),
        )
        # LRU promotion: the touched line's original age is the pivot.
        assert rule.apply((2, 0, 1, 3), 0, 3) == (0, 1, 2, 3)

    def test_update_rule_requires_condition_and_value_together(self):
        with pytest.raises(SynthesisError):
            UpdateRule(others_condition=TrueExpr())

    def test_eviction_rules(self):
        assert EvictionRule("first_with_age", 3).select((0, 3, 3, 1)) == 1
        assert EvictionRule("leftmost_max").select((0, 2, 2, 1)) == 1
        assert EvictionRule("leftmost_min").select((2, 0, 0, 1)) == 1
        assert EvictionRule("first_with_age", 3).select((0, 0, 0, 0)) == 0  # total fallback

    def test_normalization_age_until_max(self):
        rule = NormalizationRule("age_until_max", target=3, skip_touched=True)
        assert rule.apply((1, 1, 1, 0), touched=2, max_age=3) == (3, 3, 1, 2)
        # Already normalized vectors are untouched.
        assert rule.apply((3, 0, 0, 0), touched=1, max_age=3) == (3, 0, 0, 0)

    def test_normalization_reset_when_all(self):
        rule = NormalizationRule("reset_when_all", target=1, reset_value=0)
        assert rule.apply((1, 1, 1, 1), touched=2, max_age=3) == (0, 0, 1, 0)
        assert rule.apply((1, 0, 1, 1), touched=2, max_age=3) == (1, 0, 1, 1)

    def test_identity_normalization(self):
        assert NormalizationRule().apply((2, 1), touched=None, max_age=3) == (2, 1)

    def test_describe_methods(self):
        assert "evict" in EvictionRule("leftmost_max").describe()
        assert "normalization" in NormalizationRule().describe()
        assert "age" in UpdateRule(branches=(UpdateBranch(TrueExpr(), Constant(0)),)).describe()


class TestTemplate:
    def test_program_validates_initial_ages(self):
        with pytest.raises(SynthesisError):
            ExplanationProgram(
                associativity=4,
                initial_ages=(0, 0),
                promotion=UpdateRule(),
                insertion=UpdateRule(),
                eviction=EvictionRule(),
            )
        with pytest.raises(SynthesisError):
            ExplanationProgram(
                associativity=2,
                initial_ages=(0, 9),
                promotion=UpdateRule(),
                insertion=UpdateRule(),
                eviction=EvictionRule(),
            )

    def test_simple_flag_and_pretty(self):
        program = reference_explanation("FIFO")
        assert program.is_simple
        text = program.pretty()
        assert "Promote" in text and "Evict" in text and "Insert" in text
        extended = reference_explanation("NEW2")
        assert not extended.is_simple
        assert "Normalize" in extended.pretty()

    def test_as_policy_round_trip(self):
        program = reference_explanation("NEW1")
        policy = program.as_policy()
        state = policy.initial_state()
        state, victim = policy.on_miss(state)
        assert victim == 0


class TestReferences:
    @pytest.mark.parametrize(
        "name", ["FIFO", "LRU", "LIP", "MRU", "SRRIP-HP", "SRRIP-FP", "NEW1", "NEW2"]
    )
    def test_reference_explanations_are_equivalent_to_the_policies(self, name):
        """Appendix C check: each explanation denotes exactly its policy."""
        program = reference_explanation(name, 4)
        policy = make_policy(name, 4)
        reference_machine = program.as_policy().to_mealy(max_states=5000).minimize()
        truth_machine = policy.to_mealy().minimize()
        assert reference_machine.equivalent(truth_machine)

    def test_unknown_reference_rejected(self):
        with pytest.raises(SynthesisError):
            reference_explanation("PLRU")

    def test_reference_catalog(self):
        catalog = reference_explanations(4)
        assert set(catalog) >= {"NEW1", "NEW2", "LRU", "FIFO"}


class TestGrammars:
    def test_simple_grammar_is_smaller_than_extended(self):
        simple = simple_grammar(4)
        extended = extended_grammar(4)
        assert simple.size < extended.size
        assert len(simple.post_normalizations) == 1
        assert len(extended.post_normalizations) > 1

    def test_initial_candidates_include_known_policies(self):
        initials = simple_grammar(4).initial_ages
        assert (3, 3, 3, 3) in initials       # SRRIP / New2
        assert (3, 3, 3, 0) in initials       # New1
        assert (0, 1, 2, 3) in initials       # LRU / LIP
        assert (3, 2, 1, 0) in initials       # FIFO
        assert (1, 0, 0, 0) in initials       # MRU


class TestSynthesizer:
    @pytest.mark.parametrize("name,expected_template", [("FIFO", "Simple"), ("LRU", "Simple")])
    def test_simple_policies_synthesize_with_simple_template(self, name, expected_template):
        policy = make_policy(name, 4)
        result = explain_policy(policy, config=SynthesisConfig(max_seconds=120))
        assert result.template == expected_template
        synthesized = result.program.as_policy().to_mealy(max_states=5000).minimize()
        assert synthesized.equivalent(policy.to_mealy().minimize())

    def test_mru_needs_extended_template(self):
        policy = make_policy("MRU", 4)
        result = explain_policy(policy, config=SynthesisConfig(max_seconds=180))
        assert result.template == "Extended"
        synthesized = result.program.as_policy().to_mealy(max_states=5000).minimize()
        assert synthesized.equivalent(policy.to_mealy().minimize())

    def test_new1_synthesis_matches_paper_description(self):
        policy = make_policy("NEW1", 4)
        result = explain_policy(policy, config=SynthesisConfig(max_seconds=300))
        assert result.template == "Extended"
        synthesized = result.program.as_policy().to_mealy(max_states=5000).minimize()
        assert synthesized.equivalent(policy.to_mealy().minimize())

    def test_plru_cannot_be_explained(self):
        policy = make_policy("PLRU", 4)
        with pytest.raises(SynthesisError):
            explain_policy(policy, config=SynthesisConfig(max_seconds=60))

    def test_explicit_template_selection(self):
        policy = make_policy("FIFO", 4)
        machine = policy.to_mealy().minimize()
        result = synthesize_explanation(machine, 4, template="simple")
        assert result.template == "Simple"
        with pytest.raises(SynthesisError):
            synthesize_explanation(machine, 4, template="nonsense")

    def test_budget_exhaustion_raises(self):
        policy = make_policy("NEW2", 4)
        with pytest.raises(SynthesisError):
            explain_policy(policy, config=SynthesisConfig(max_seconds=0.05))

"""Unit tests for the process-parallel observation-table fill.

Covers :class:`repro.learning.parallel.WorkerPool` (the pool shared by the
membership and equivalence oracle sides), the ``pool=`` path of
:class:`~repro.learning.observation_table.ObservationTable.fill`
(chunk-index-order merge into the shared trie, bit-identical cells) and the
``workers=`` wiring of :class:`~repro.learning.learner.MealyLearner`.
"""

from __future__ import annotations

import pytest

from repro.errors import LearningError, NonDeterminismError
from repro.learning.equivalence import ConformanceEquivalenceOracle
from repro.learning.learner import MealyLearner
from repro.learning.observation_table import ObservationTable
from repro.learning.oracles import CachedMembershipOracle, MealyMachineOracle
from repro.learning.parallel import MealyMachineOracleFactory, WorkerPool
from repro.learning.query_engine import output_query_batch
from repro.learning.wpmethod import wp_method_suite
from repro.policies.registry import make_policy


def _machine(name: str, associativity: int = 4):
    return make_policy(name, associativity).to_mealy(max_states=200_000).minimize()


def _pool_for(machine, workers: int = 2) -> WorkerPool:
    return WorkerPool(MealyMachineOracleFactory(machine), workers)


# ------------------------------------------------------------------ WorkerPool


class TestWorkerPool:
    def test_rejects_invalid_worker_count(self):
        with pytest.raises(ValueError):
            WorkerPool(None, 0)

    def test_parallel_requires_a_factory(self):
        with pytest.raises(LearningError, match="oracle_factory"):
            WorkerPool(None, 2)

    def test_single_worker_pool_is_serial_and_needs_no_factory(self):
        pool = WorkerPool(None, 1)
        assert not pool.parallel
        pool.close()  # idempotent no-op: no executor was ever created

    def test_answer_batch_matches_serial_engine(self):
        machine = _machine("MRU", 4)
        suite = wp_method_suite(machine, 1)
        # Include duplicates and proper prefixes: the batch contract returns
        # one answer per input word, in input order.
        words = suite[:40] + suite[:5] + [suite[0][:1]]
        serial_engine = CachedMembershipOracle(MealyMachineOracle(machine))
        expected = output_query_batch(serial_engine, words)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        with _pool_for(machine) as pool:
            assert pool.answer_batch(engine, words, chunk_size=8) == expected

    def test_answer_batch_merges_into_shared_trie(self):
        machine = _machine("LRU", 4)
        words = wp_method_suite(machine, 1)[:30]
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        with _pool_for(machine) as pool:
            pool.answer_batch(engine, words, chunk_size=8)
            assert all(engine.cached_answer(word) is not None for word in words)
            # Workers executed everything; the parent's delegate stayed idle,
            # and the worker executions count as the engine's membership
            # queries so reports stay comparable across worker counts.
            assert engine._delegate.statistics.membership_queries == 0
            assert engine.statistics.parallel_words >= 1
            assert engine.statistics.parallel_chunks >= 2
            assert sum(pool.worker_query_counts.values()) >= 1
            assert sum(pool.worker_symbol_counts.values()) >= 1
            assert engine.statistics.membership_queries == sum(
                pool.worker_query_counts.values()
            )
            assert engine.statistics.membership_symbols == sum(
                pool.worker_symbol_counts.values()
            )

    def test_answer_batch_skips_cached_words(self):
        machine = _machine("LRU", 4)
        words = wp_method_suite(machine, 1)[:20]
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        engine.output_query_batch(words)  # pre-answer serially
        hits_before = engine.statistics.cache_hits
        with _pool_for(machine) as pool:
            answers = pool.answer_batch(engine, words)
            assert answers == [machine.run(word) for word in words]
            assert engine.statistics.parallel_words == 0
            assert pool.worker_query_counts == {}
        assert engine.statistics.cache_hits == hits_before + len(words)

    def test_answer_batch_detects_non_determinism(self):
        machine = _machine("LRU", 2)
        words = [word for word in wp_method_suite(machine, 1) if len(word) >= 2][:10]
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        prefix = words[0][:1]
        true_first = machine.run(prefix)[0]
        engine.record_external(prefix, ("poisoned" if true_first != "poisoned" else "other",))
        with _pool_for(machine) as pool:
            with pytest.raises(NonDeterminismError):
                pool.answer_batch(engine, words)

    def test_answer_batch_works_without_a_cache(self):
        machine = _machine("FIFO", 2)
        words = wp_method_suite(machine, 1)[:12]
        oracle = MealyMachineOracle(machine)  # no cached_answer/record_external
        with _pool_for(machine) as pool:
            assert pool.answer_batch(oracle, words, chunk_size=4) == [
                machine.run(word) for word in words
            ]

    def test_answer_batch_rejects_bad_chunk_size(self):
        machine = _machine("LRU", 2)
        with _pool_for(machine) as pool:
            with pytest.raises(ValueError):
                pool.answer_batch(MealyMachineOracle(machine), [], chunk_size=0)

    def test_close_is_idempotent(self):
        machine = _machine("LRU", 2)
        pool = _pool_for(machine)
        pool.answer_batch(MealyMachineOracle(machine), [tuple(machine.inputs)])
        pool.close()
        pool.close()


# -------------------------------------------------------- parallel table fill


class TestParallelObservationTable:
    def test_parallel_fill_is_bit_identical_to_serial(self):
        machine = _machine("PLRU", 4)
        serial = ObservationTable(
            machine.inputs, CachedMembershipOracle(MealyMachineOracle(machine))
        )
        serial.make_closed_and_consistent()
        with _pool_for(machine) as pool:
            parallel = ObservationTable(
                machine.inputs,
                CachedMembershipOracle(MealyMachineOracle(machine)),
                pool=pool,
                chunk_size=8,
            )
            parallel.make_closed_and_consistent()
        assert parallel.short_prefixes == serial.short_prefixes
        assert parallel.suffixes == serial.suffixes
        assert parallel._cells == serial._cells
        assert parallel.hypothesis() == serial.hypothesis()

    def test_parallel_fill_feeds_the_shared_engine(self):
        machine = _machine("MRU", 4)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        with _pool_for(machine) as pool:
            table = ObservationTable(machine.inputs, engine, pool=pool, chunk_size=4)
            table.make_closed_and_consistent()
        # Every fill round went through the pool: the parent's delegate never
        # executed, and the engine's query counts reflect the workers' work.
        assert engine._delegate.statistics.membership_queries == 0
        assert engine.statistics.membership_queries == sum(
            pool.worker_query_counts.values()
        )
        assert engine.statistics.parallel_words >= 1
        assert engine.size >= 1

    def test_serial_pool_falls_back_to_the_batched_engine(self):
        machine = _machine("LRU", 2)
        oracle = MealyMachineOracle(machine)
        pool = WorkerPool(None, 1)
        table = ObservationTable(machine.inputs, oracle, pool=pool)
        assert table.missing_cells() == []
        # The serial pool never spun up workers; the oracle answered locally.
        assert oracle.statistics.batches == 1

    def test_bad_chunk_size_rejected(self):
        machine = _machine("LRU", 2)
        with pytest.raises(LearningError):
            ObservationTable(
                machine.inputs, MealyMachineOracle(machine), chunk_size=0
            )


# ------------------------------------------------------------ learner wiring


class TestLearnerWorkers:
    def _learn(self, machine, **kwargs):
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        equivalence = ConformanceEquivalenceOracle(engine, depth=1)
        learner = MealyLearner(machine.inputs, engine, equivalence, **kwargs)
        return learner.learn()

    def test_workers_require_a_factory(self):
        machine = _machine("LRU", 2)
        with pytest.raises(LearningError, match="oracle_factory"):
            self._learn(machine, workers=2)

    def test_workers_must_be_positive(self):
        machine = _machine("LRU", 2)
        with pytest.raises(ValueError):
            self._learn(machine, workers=0)

    def test_pool_and_workers_are_mutually_exclusive(self):
        machine = _machine("LRU", 2)
        pool = WorkerPool(MealyMachineOracleFactory(machine), 2)
        with pytest.raises(LearningError, match="not both"):
            self._learn(machine, pool=pool, workers=2)
        pool.close()

    def test_parallel_fill_learns_bit_identical_machine(self):
        machine = _machine("PLRU", 4)
        serial = self._learn(machine)
        parallel = self._learn(
            machine, workers=2, oracle_factory=MealyMachineOracleFactory(machine)
        )
        assert parallel.machine == serial.machine
        assert parallel.rounds == serial.rounds
        assert parallel.counterexamples == serial.counterexamples

    def test_owned_pool_is_closed_after_learning(self):
        machine = _machine("LRU", 2)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        equivalence = ConformanceEquivalenceOracle(engine, depth=1)
        learner = MealyLearner(
            machine.inputs,
            engine,
            equivalence,
            workers=2,
            oracle_factory=MealyMachineOracleFactory(machine),
        )
        learner.learn()
        assert learner._owns_pool
        assert learner.pool._executor is None  # shut down by learn()

    def test_shared_pool_is_left_running(self):
        machine = _machine("LRU", 2)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        equivalence = ConformanceEquivalenceOracle(engine, depth=1)
        with _pool_for(machine) as pool:
            learner = MealyLearner(machine.inputs, engine, equivalence, pool=pool)
            learner.learn()
            assert pool._executor is not None  # still usable by its owner
            assert sum(pool.worker_query_counts.values()) >= 1


# --------------------------------------------------- one pool, both sides


class TestSharedPoolBothSides:
    def test_fill_and_equivalence_share_one_pool(self):
        machine = _machine("PLRU", 4)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        with _pool_for(machine) as pool:
            equivalence = ConformanceEquivalenceOracle(engine, depth=1, pool=pool)
            learner = MealyLearner(machine.inputs, engine, equivalence, pool=pool)
            result = learner.learn()
            # Membership and conformance words both flowed through the pool:
            # the parent process never executed a single query itself, but
            # the worker executions still count as membership queries.
            assert engine._delegate.statistics.membership_queries == 0
            assert engine.statistics.membership_queries == sum(
                pool.worker_query_counts.values()
            )
            assert result.statistics.parallel_words >= 1
            assert sum(pool.worker_query_counts.values()) >= 1
            # The equivalence oracle reports the shared pool's accounting.
            assert equivalence.worker_query_counts is pool.worker_query_counts
        serial = TestLearnerWorkers()._learn(machine)
        assert result.machine == serial.machine

    def test_equivalence_pool_and_workers_are_mutually_exclusive(self):
        machine = _machine("LRU", 2)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        with _pool_for(machine) as pool:
            with pytest.raises(LearningError, match="not both"):
                ConformanceEquivalenceOracle(engine, pool=pool, workers=2)

    def test_equivalence_close_leaves_shared_pool_up(self):
        machine = _machine("LRU", 2)
        engine = CachedMembershipOracle(MealyMachineOracle(machine))
        with _pool_for(machine) as pool:
            equivalence = ConformanceEquivalenceOracle(engine, depth=1, pool=pool)
            assert equivalence.find_counterexample(machine) is None
            assert pool._executor is not None
            equivalence.close()
            assert pool._executor is not None  # owned by the caller, not us

"""Unit tests for the TTT-refined classification-tree learner.

Covers the two TTT mechanisms on their own terms — discriminator
finalization (temporary suffixes replaced by verified shortest
candidates, never longer) and incremental sifting (post-split re-sift
volume bounded by the split leaf's residents, not the whole transition
table) — plus the facade (``make_learner("ttt")``), store/resume
interaction, and the ``learner_symbols`` accounting the comparison
benchmarks read.  The registry-wide bit-identity matrix lives in
``tests/test_differential_learning.py``; random-machine fuzzing in
``tests/test_property_fuzz.py``.
"""

from __future__ import annotations

import pytest

from repro.core.mealy import MealyMachine
from repro.errors import LearningError
from repro.experiments.table2 import run_table2
from repro.learning.equivalence import PerfectEquivalenceOracle
from repro.learning.kv import KVLearner
from repro.learning.learner import LEARNER_NAMES, make_learner
from repro.learning.oracles import CachedMembershipOracle, MealyMachineOracle
from repro.learning.ttt import TTTLearner, TTTTree
from repro.polca.pipeline import learn_simulated_policy
from repro.policies.registry import available_policies, make_policy

#: The 3-state reference machine of ``tests/test_kv.py``: ``b`` walks
#: 0 -> 1 -> 2 -> 0 and every state has a distinct output signature.
REFERENCE = MealyMachine(
    states=[0, 1, 2],
    initial_state=0,
    inputs=["a", "b"],
    transitions={
        (0, "a"): 0,
        (0, "b"): 1,
        (1, "a"): 1,
        (1, "b"): 2,
        (2, "a"): 0,
        (2, "b"): 0,
    },
    outputs={
        (0, "a"): "x",
        (0, "b"): "y",
        (1, "a"): "z",
        (1, "b"): "y",
        (2, "a"): "x",
        (2, "b"): "z",
    },
)


def _learn_ttt(machine: MealyMachine = REFERENCE) -> TTTLearner:
    engine = CachedMembershipOracle(MealyMachineOracle(machine))
    learner = TTTLearner(machine.inputs, engine, PerfectEquivalenceOracle(machine))
    learner.learn()
    return learner


# ------------------------------------------------------------------ the tree


class TestTTTTree:
    def test_no_seeded_chain_root_is_a_single_symbol(self):
        tree = TTTTree(
            REFERENCE.inputs, CachedMembershipOracle(MealyMachineOracle(REFERENCE))
        )
        assert tree.root.suffix == (REFERENCE.inputs[0],)
        assert tree.root.children == {}
        # Every discriminator the finished tree holds was created by a split
        # (or is the root), unlike the base class's |A|-deep seeded chain.
        learner = _learn_ttt()
        assert all(len(s) >= 1 for s in learner.tree.discriminators())

    def test_learns_the_reference_bit_identically_to_kv(self):
        ttt = _learn_ttt()
        engine = CachedMembershipOracle(MealyMachineOracle(REFERENCE))
        kv = KVLearner(
            REFERENCE.inputs, engine, PerfectEquivalenceOracle(REFERENCE)
        )
        kv.learn()
        ttt_machine = ttt.tree.hypothesis().minimize()
        kv_machine = kv.tree.hypothesis().minimize()
        assert ttt_machine.size == kv_machine.size == REFERENCE.size
        assert ttt_machine.equivalent(kv_machine)

    def test_idle_hypothesis_rebuild_executes_nothing(self):
        """Incremental sifting: with nothing pending, a rebuild is pure
        table assembly — zero new executions, zero new engine queries."""
        learner = _learn_ttt()
        tree = learner.tree
        before = learner.membership_oracle.statistics.membership_queries
        machine = tree.hypothesis()
        assert learner.membership_oracle.statistics.membership_queries == before
        assert machine.size == REFERENCE.size

    def test_growth_accounting_sums_to_the_state_count(self):
        learner = _learn_ttt()
        tree = learner.tree
        assert tree.leaves_from_sifting + tree.leaves_from_splits == tree.num_states


# -------------------------------------------------------------- finalization


class TestFinalization:
    def test_finalized_discriminators_are_never_longer(self):
        """The core TTT pin: every finalization replaced a temporary suffix
        with one of at most the same length."""
        for policy_name in ("NEW2", "CLOCK", "SRRIP-HP"):
            report = learn_simulated_policy(
                make_policy(policy_name, 2), depth=1, identify=False, learner="ttt"
            )
            shrinkage = report.extra["ttt_finalization_shrinkage"]
            assert shrinkage, f"{policy_name}: no split was ever finalized"
            assert all(final <= temporary for temporary, final in shrinkage)

    def test_every_split_is_accounted_finalized_or_temporary(self):
        report = learn_simulated_policy(
            make_policy("SRRIP-HP", 2), depth=1, identify=False, learner="ttt"
        )
        assert (
            report.extra["ttt_finalized_discriminators"]
            + report.extra["ttt_temporary_discriminators"]
            == report.extra["kv_leaves_from_splits"]
        )

    def test_max_discriminator_length_at_most_kv(self):
        """Finalization keeps the tree at most as deep-worded as plain KV."""
        for policy_name in ("NEW2", "CLOCK", "SRRIP-HP"):
            kv = learn_simulated_policy(
                make_policy(policy_name, 2), depth=1, identify=False, learner="kv"
            )
            ttt = learn_simulated_policy(
                make_policy(policy_name, 2), depth=1, identify=False, learner="ttt"
            )
            assert ttt.machine == kv.machine
            assert (
                ttt.extra["max_discriminator_length"]
                <= kv.extra["max_discriminator_length"]
            )


# -------------------------------------------------------- incremental sifting


class TestIncrementalSifting:
    def test_post_split_resift_is_bounded_by_the_split_subtree(self):
        """Each split re-enqueues at most the words parked on the split leaf
        — always strictly below the full transition table plain KV re-sifts
        on every rebuild."""
        report = learn_simulated_policy(
            make_policy("SRRIP-HP", 2), depth=1, identify=False, learner="ttt"
        )
        resifted = report.extra["ttt_words_resifted_per_split"]
        assert len(resifted) == report.extra["kv_leaves_from_splits"]
        full_table = report.num_states * len(report.machine.inputs)
        assert all(0 <= count < full_table for count in resifted)

    def test_nru_pays_no_fanin_resift_overhead(self):
        """The ``KNOWN_SIFT_OVERHEAD`` pin of ``tests/test_kv.py``, with the
        allowance removed: NRU is the policy whose post-split fan-in re-sift
        made plain KV ask *more* executed learner queries than L*; TTT's
        residency map removes exactly that overhead."""
        lstar = learn_simulated_policy(
            make_policy("NRU", 2), depth=1, identify=False, learner="lstar"
        )
        ttt = learn_simulated_policy(
            make_policy("NRU", 2), depth=1, identify=False, learner="ttt"
        )
        assert ttt.machine == lstar.machine
        assert ttt.extra["learner_queries"] <= lstar.extra["learner_queries"]


# --------------------------------------------------------- registry-wide cost


@pytest.mark.parametrize("policy_name", available_policies())
def test_ttt_issues_at_most_lstar_learner_queries(policy_name):
    """TTT ≤ L* on executed learner-attributed queries — no allowance list,
    unlike plain KV's version of this test."""
    lstar = learn_simulated_policy(
        make_policy(policy_name, 2), depth=1, identify=False, learner="lstar"
    )
    ttt = learn_simulated_policy(
        make_policy(policy_name, 2), depth=1, identify=False, learner="ttt"
    )
    assert ttt.machine == lstar.machine
    assert ttt.extra["learner_queries"] <= lstar.extra["learner_queries"]


def test_learner_symbols_accounting():
    """``learner_symbols`` mirrors ``learner_queries``: positive, bounded by
    the engine's executed-symbol total, and the suite-attribution identity
    holds for every learner."""
    for learner_name in LEARNER_NAMES:
        report = learn_simulated_policy(
            make_policy("SRRIP-HP", 2), depth=1, identify=False, learner=learner_name
        )
        result = report.learning_result
        assert 0 < result.learner_symbols <= result.statistics.membership_symbols
        assert report.extra["learner_symbols"] == result.learner_symbols


# --------------------------------------------------------- store interaction


class TestStoreAndResume:
    def test_warm_store_answers_a_repeat_ttt_run_without_executing(self, tmp_path):
        path = str(tmp_path / "ttt-store.json")
        configurations = [("SRRIP-HP", 2)]
        cold = run_table2(
            configurations=configurations, cache_path=path, learner="ttt"
        )
        assert cold[0].membership_queries > 0
        warm = run_table2(
            configurations=configurations, cache_path=path, learner="ttt"
        )
        assert warm[0].membership_queries == 0
        assert warm[0].learner_queries == 0
        assert warm[0].learner_symbols == 0
        assert warm[0].learned_states == cold[0].learned_states
        assert warm[0].learner == "ttt"

    def test_ttt_resume_sessions_learn_the_identical_machine(self):
        serial = learn_simulated_policy(
            make_policy("SRRIP-HP", 2), depth=1, identify=False, learner="ttt"
        )
        resumed = learn_simulated_policy(
            make_policy("SRRIP-HP", 2),
            depth=1,
            identify=False,
            learner="ttt",
            resume=True,
        )
        assert resumed.machine == serial.machine
        assert resumed.extra["resume"] is True


# --------------------------------------------------------------- the facade


def test_make_learner_builds_a_ttt_learner():
    engine = CachedMembershipOracle(MealyMachineOracle(REFERENCE))
    learner = make_learner(
        "TTT", REFERENCE.inputs, engine, PerfectEquivalenceOracle(REFERENCE)
    )
    assert isinstance(learner, TTTLearner)
    assert isinstance(learner, KVLearner)  # a refinement layer, not a rewrite
    assert learner.name == "ttt"


def test_unknown_learner_error_lists_the_valid_names():
    engine = CachedMembershipOracle(MealyMachineOracle(REFERENCE))
    with pytest.raises(LearningError) as excinfo:
        make_learner(
            "observation-pack",
            REFERENCE.inputs,
            engine,
            PerfectEquivalenceOracle(REFERENCE),
        )
    message = str(excinfo.value)
    for name in LEARNER_NAMES:
        assert name in message
